"""Figure 13 (A–C): scheduling algorithm vs database size, window = 50.

Paper claim: "Regardless of how the data is clustered, average seek
distance is smallest for elevator scheduling" — with a window of 50 the
reference pool is deep enough for SCAN ordering to approach the ideal
schedule, while depth-first stays at its window-1 cost by construction.
"""

from repro.bench.figures import depth_first_window_invariance, figure_13


def test_figure_13(figure_runner):
    figure_runner(figure_13)


def test_depth_first_is_window_invariant(figure_runner):
    """Section 6.2: depth-first == object-at-a-time at any window."""
    figure_runner(depth_first_window_invariance)
