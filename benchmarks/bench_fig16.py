"""Figure 16: predicates and selectivities (selective assembly).

Paper claims: assembly aborts failing complex objects as early as
possible — "object fetches other than those needed to test the
predicate or completely assemble complex objects satisfying the
predicate are eliminated" (each rejected object costs exactly the
predicate path, two fetches in this template), so lower selectivity
means fewer reads for windows greater than 1.
"""

from repro.bench.figures import figure_16


def test_figure_16(figure_runner):
    figure_runner(figure_16)
