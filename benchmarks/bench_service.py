"""Benchmarks for the Section 7 assembly service.

* S-1/S-2/S-3 — a closed-loop load generator drives identical request
  schedules through naive per-client assembly (private elevator per
  client) and through the shared device server, reporting average seek
  distance, throughput, and p50/p95 request latency vs client count.
  The device server must win on seek at four or more clients.
* S-4 — the repeated-hot-roots workload: the result cache must cut
  repeat-round buffer page faults by at least 90%.
"""

from repro.bench.service import figure_service_cache, figure_service_scaling


def test_service_closed_loop(figure_runner):
    figure_runner(figure_service_scaling)


def test_service_cache(figure_runner):
    figure_runner(figure_service_cache)
