"""Figure 15: databases containing shared sub-objects (25% sharing).

Paper claims: with sharing statistics in the template, elevator
scheduling (windows 1 and 50) beats depth-first object-at-a-time
assembly on a 25%-shared database, and "not only does the use of
expected sharing statistics increase performance, it also reduces the
total number of reads" — checked against a statistics-off run under
the same restricted buffer.
"""

from repro.bench.figures import ablation_sharing_degree, figure_15


def test_figure_15(figure_runner):
    figure_runner(figure_15)


def test_sharing_degree_sweep(figure_runner):
    """Section 6.4: 25% is 'typical of the other benchmarks'."""
    figure_runner(ablation_sharing_degree)
