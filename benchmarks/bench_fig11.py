"""Figure 11 (A–C): scheduling algorithm vs database size, window = 1.

Paper claims reproduced here:

* 11A (inter-object): seek distance flat in database size (cluster
  extents exceed every database); breadth-first clearly worst because
  its fetch order fights the physical cluster order (Figure 12).
* 11B (intra-object): the three schedulers nearly coincide — per-tree
  locality dominates at window 1.
* 11C (unclustered): the elevator gains ~10% purely by reordering the
  few in-flight references by physical location.
"""

from repro.bench.figures import figure_11


def test_figure_11(figure_runner):
    figure_runner(figure_11)
