"""Ablation benchmarks for design choices DESIGN.md calls out.

* A-1 — footnote 5: set-oriented assembly's only CPU overhead is the
  scheduling structure; every scheduler costs O(1) operations per
  fetch, so comparing I/O alone is fair.
* A-2 — Section 7 future work: restricting the buffer forces re-reads;
  window size and buffer size need joint tuning.
"""

from repro.bench.figures import (
    ablation_buffer_capacity,
    ablation_scheduler_overhead,
)


def test_scheduler_overhead(figure_runner):
    figure_runner(ablation_scheduler_overhead)


def test_restricted_buffer(figure_runner):
    figure_runner(ablation_buffer_capacity)
