"""Shared configuration for the figure benchmarks.

Each benchmark regenerates one paper figure at the paper's full
parameters, prints the series (so the output can be compared with the
paper), asserts the qualitative shape checks, and reports its wall
time through pytest-benchmark.  One round per figure: the simulated
disk is deterministic, so repetition adds time, not information.
"""

from __future__ import annotations

import pytest

from repro.bench.report import FigureResult, render


def run_figure(benchmark, driver, *args, **kwargs):
    """Benchmark a figure driver once, print it, and assert its shape."""
    produced = benchmark.pedantic(
        lambda: driver(*args, **kwargs), rounds=1, iterations=1
    )
    figures = produced if isinstance(produced, list) else [produced]
    for figure in figures:
        print()
        print(render(figure))
        assert not figure.violations, (
            f"{figure.figure_id}: shape checks failed: {figure.violations}"
        )
    return figures


@pytest.fixture
def figure_runner(benchmark):
    """Fixture handing tests the :func:`run_figure` helper."""

    def runner(driver, *args, **kwargs):
        return run_figure(benchmark, driver, *args, **kwargs)

    return runner
