"""Related-work baseline (paper Section 2): the TID-scan spectrum.

Assembly with a single-component template is a windowed pointer
look-up: window 1 behaves like the naive unclustered index scan, and
growing windows approach the fully-sorted look-up's seek cost while
bounding "sort space" to W pointers — the design point the paper's
Section 2 describes as the operator's origin.
"""

from repro.bench.baselines import baseline_tid_scan


def test_tid_scan_spectrum(figure_runner):
    figure_runner(baseline_tid_scan)
