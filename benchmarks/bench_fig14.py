"""Figure 14: window-size sweep at database = 4000, elevator scheduling.

Paper claims: seek distance falls monotonically with window size, and
"the point of diminishing returns occurs prior to a window of 50" —
the 1 → 50 step captures the bulk of the win under every clustering.

The companion buffer benchmark checks Section 6.3.3's price of windows:
at most 6·(W−1) + 7 pages pinned for partially assembled objects
(301 pages at W = 50 in the paper's arithmetic).
"""

from repro.bench.figures import buffer_pin_bound, figure_14


def test_figure_14(figure_runner):
    figure_runner(figure_14)


def test_buffer_pin_bound(figure_runner):
    figure_runner(buffer_pin_bound)
