"""Benchmarks for the paper's Section 7 future-work extensions.

* A-4 — the integrated ("adaptive") scheduler: the elevator modified to
  account for predicates, sharing, and the buffer, vs the plain
  elevator on selective-assembly workloads.
* A-5 — the exclusive-device problem: K independent per-operator
  request queues degrade seek distance as K grows; the
  server-per-device architecture restores single-queue performance.
* A-6 — window/buffer tuning: for a fixed buffer, the best window is
  the largest one whose pin bound (Section 6.3.3) fits.
* A-7 — multi-device striping: per-device elevator queues (the
  server-per-device architecture) shrink the critical-path seek total
  as devices are added — the paper's closing "scalable performance"
  expectation.
"""

from repro.bench.figures import (
    ablation_adaptive_scheduler,
    ablation_cost_model,
    ablation_hypermodel_generality,
    ablation_multi_device,
    ablation_parallel_contention,
    ablation_window_tuning,
)


def test_adaptive_scheduler(figure_runner):
    figure_runner(ablation_adaptive_scheduler)


def test_parallel_contention(figure_runner):
    figure_runner(ablation_parallel_contention)


def test_window_tuning(figure_runner):
    figure_runner(ablation_window_tuning)


def test_multi_device_scaling(figure_runner):
    figure_runner(ablation_multi_device)


def test_hypermodel_generality(figure_runner):
    figure_runner(ablation_hypermodel_generality)


def test_cost_model_robustness(figure_runner):
    figure_runner(ablation_cost_model)
