"""Setup shim for legacy editable installs.

The metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works on environments whose setuptools lacks the
``wheel`` package needed for PEP 660 editable wheels.
"""

from setuptools import setup

setup()
