"""The event-driven I/O engine: clock, timelines, overlap accounting."""

import pytest

from repro.errors import DiskError
from repro.storage.costmodel import CostModel
from repro.storage.disk import SimulatedDisk
from repro.storage.events import AsyncIOEngine, EventClock
from repro.storage.multidisk import MultiDeviceDisk

#: distance + one ms per transferred page: easy arithmetic in tests.
LINEAR = CostModel(
    seek_per_page=1.0, settle=0.0, rotational_latency=0.0, transfer=1.0
)


class TestEventClock:
    def test_starts_at_zero_and_advances(self):
        clock = EventClock()
        assert clock.now == 0.0
        clock.advance_to(5.0)
        clock.advance_to(5.0)  # standing still is allowed
        assert clock.now == 5.0

    def test_backwards_is_an_error(self):
        clock = EventClock()
        clock.advance_to(3.0)
        with pytest.raises(DiskError):
            clock.advance_to(2.0)


class TestIssueAndComplete:
    def make(self, n_devices=2, pages=100):
        disk = MultiDeviceDisk(n_devices=n_devices, pages_per_device=pages)
        return disk, AsyncIOEngine(disk, LINEAR)

    def test_single_disk_is_one_device(self):
        disk = SimulatedDisk(n_pages=50)
        engine = AsyncIOEngine(disk, LINEAR)
        assert engine.n_devices == 1
        assert engine.device_of(42) == 0

    def test_bad_device_raises(self):
        _disk, engine = self.make()
        with pytest.raises(DiskError):
            engine.issue(7, None)

    def test_wait_with_nothing_in_flight_raises(self):
        _disk, engine = self.make()
        with pytest.raises(DiskError):
            engine.wait_next()

    def test_physical_read_priced_by_cost_model(self):
        disk, engine = self.make()
        io = engine.issue(0, lambda: disk.read(10))
        # head 0 -> 10: distance 10, one page: 10 + 1 = 11 ms.
        assert io.physical_reads == 1
        assert io.pages_read == 1
        assert io.complete_time == 11.0
        assert engine.wait_next() is io
        assert engine.elapsed == 11.0
        assert engine.busy_time(0) == 11.0

    def test_zero_read_issue_completes_immediately(self):
        disk, engine = self.make()
        engine.issue(0, lambda: disk.read(10))
        io = engine.issue(0, None, payload="cpu-only")
        assert io.physical_reads == 0
        assert io.complete_time == 0.0
        assert io.payload == "cpu-only"
        # The zero-read completion comes first; the device keeps busy.
        assert engine.wait_next() is io
        assert engine.elapsed == 0.0
        assert engine.zero_read_issues == 1

    def test_serialized_issues_queue_on_the_device(self):
        disk, engine = self.make()
        engine.issue(0, lambda: disk.read(10))  # 0 -> 10: 11 ms
        engine.issue(0, lambda: disk.read(20))  # 10 -> 20: 11 ms
        first = engine.wait_next()
        second = engine.wait_next()
        assert first.complete_time == 11.0
        assert second.start_time == 11.0
        assert second.complete_time == 22.0
        assert engine.elapsed == 22.0

    def test_devices_overlap_elapsed_is_max_not_sum(self):
        disk, engine = self.make()
        engine.issue(0, lambda: disk.read(10))    # 11 ms on device 0
        engine.issue(1, lambda: disk.read(130))   # 31 ms on device 1
        engine.wait_next()
        engine.wait_next()
        assert engine.busy_time() == 42.0
        assert engine.elapsed == 31.0  # max, not 42
        assert engine.utilization(0) == pytest.approx(11.0 / 31.0)
        assert engine.utilization(1) == pytest.approx(1.0)

    def test_in_flight_counts_per_device(self):
        disk, engine = self.make()
        engine.issue(0, lambda: disk.read(10))
        engine.issue(0, lambda: disk.read(20))
        engine.issue(1, lambda: disk.read(110))
        assert engine.in_flight(0) == 2
        assert engine.in_flight(1) == 1
        assert engine.in_flight() == 3
        assert not engine.idle()
        for _ in range(3):
            engine.wait_next()
        assert engine.idle()

    def test_run_read_priced_as_one_positioning(self):
        disk, engine = self.make()
        io = engine.issue(0, lambda: disk.read_run(10, 4))
        # distance 10 + 4 transferred pages = 14 ms, one physical read.
        assert io.physical_reads == 1
        assert io.pages_read == 4
        assert io.complete_time == 14.0

    def test_busy_ms_mirrored_into_disk_stats(self):
        disk, engine = self.make()
        engine.issue(0, lambda: disk.read(10))
        engine.issue(1, lambda: disk.read(130))
        assert disk.stats.busy_ms == 42.0
        assert disk.device_stats[0].busy_ms == 11.0
        assert disk.device_stats[1].busy_ms == 31.0

    def test_listener_restored_after_issue(self):
        disk, engine = self.make()
        seen = []
        disk.set_io_listener(lambda d, n: seen.append((d, n)))
        engine.issue(0, lambda: disk.read(10))
        disk.read(20)  # outside the engine: the outer listener fires
        assert seen == [(10, 1)]

    def test_listener_restored_when_io_fn_raises(self):
        disk, engine = self.make()
        with pytest.raises(DiskError):
            engine.issue(0, lambda: disk.read(10_000))
        # Nothing scheduled, and the disk listener is back to None.
        assert engine.idle()
        assert engine.issues == 0
        assert disk._io_listener is None

    def test_spend_cpu_overlaps_in_flight_io(self):
        disk, engine = self.make()
        engine.issue(0, lambda: disk.read(10))  # completes at 11 ms
        engine.spend_cpu(25.0)
        assert engine.elapsed == 25.0
        # The completion is in the past: delivered without rewinding.
        io = engine.wait_next()
        assert io.complete_time == 11.0
        assert engine.elapsed == 25.0
        assert engine.cpu_time == 25.0

    def test_negative_cpu_raises(self):
        _disk, engine = self.make()
        with pytest.raises(DiskError):
            engine.spend_cpu(-1.0)
