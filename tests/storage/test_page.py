"""Tests for the slotted page."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BadSlotError, PageError, PageFullError
from repro.storage.page import PAGE_SIZE, Page, records_per_page


class TestPageBasics:
    def test_new_page_is_empty(self):
        page = Page(3)
        assert page.page_id == 3
        assert page.slot_count == 0
        assert page.live_count() == 0

    def test_insert_and_read(self):
        page = Page(0)
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_slots_are_sequential(self):
        page = Page(0)
        assert [page.insert(b"x") for _ in range(5)] == list(range(5))

    def test_empty_record_rejected(self):
        with pytest.raises(PageError):
            Page(0).insert(b"")

    def test_read_bad_slot(self):
        page = Page(0)
        with pytest.raises(BadSlotError):
            page.read(0)
        page.insert(b"a")
        with pytest.raises(BadSlotError):
            page.read(1)

    def test_paper_packing_nine_objects_per_page(self):
        """Section 6: 96-byte objects (+10-byte stored OID) pack 9/page."""
        assert records_per_page(106) == 9
        page = Page(0)
        for _ in range(9):
            page.insert(b"\x01" * 106)
        with pytest.raises(PageFullError):
            page.insert(b"\x01" * 106)

    def test_free_space_decreases(self):
        page = Page(0)
        before = page.free_space
        page.insert(b"abcd")
        assert page.free_space == before - 4 - 4  # record + slot entry

    def test_fits(self):
        page = Page(0)
        assert page.fits(page.free_space - 4)
        assert not page.fits(page.free_space)


class TestDeleteUpdate:
    def test_delete_tombstones(self):
        page = Page(0)
        slot = page.insert(b"dead")
        page.delete(slot)
        with pytest.raises(BadSlotError):
            page.read(slot)
        assert page.live_count() == 0
        assert page.slot_count == 1  # tombstone remains

    def test_double_delete(self):
        page = Page(0)
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(BadSlotError):
            page.delete(slot)

    def test_delete_keeps_other_slots_valid(self):
        page = Page(0)
        a = page.insert(b"aaa")
        b = page.insert(b"bbb")
        page.delete(a)
        assert page.read(b) == b"bbb"

    def test_update_same_length(self):
        page = Page(0)
        slot = page.insert(b"old")
        page.update(slot, b"new")
        assert page.read(slot) == b"new"

    def test_update_wrong_length(self):
        page = Page(0)
        slot = page.insert(b"old")
        with pytest.raises(PageError):
            page.update(slot, b"longer")

    def test_update_deleted_slot(self):
        page = Page(0)
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(BadSlotError):
            page.update(slot, b"y")


class TestSerialization:
    def test_roundtrip(self):
        page = Page(9)
        page.insert(b"one")
        page.insert(b"two")
        page.delete(0)
        image = page.to_bytes()
        assert len(image) == PAGE_SIZE
        restored = Page.from_bytes(9, image)
        assert restored.read(1) == b"two"
        with pytest.raises(BadSlotError):
            restored.read(0)

    def test_wrong_id_rejected(self):
        image = Page(1).to_bytes()
        with pytest.raises(PageError):
            Page.from_bytes(2, image)

    def test_wrong_size_rejected(self):
        with pytest.raises(PageError):
            Page.from_bytes(0, b"\x00" * 10)

    def test_records_iterates_live_only(self):
        page = Page(0)
        page.insert(b"a")
        page.insert(b"b")
        page.insert(b"c")
        page.delete(1)
        assert list(page.records()) == [(0, b"a"), (2, b"c")]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.binary(min_size=1, max_size=40),
        min_size=1,
        max_size=20,
    )
)
def test_page_matches_model(records):
    """Insert/read over random records agrees with a list model."""
    page = Page(0)
    stored = []
    for record in records:
        if page.fits(len(record)):
            slot = page.insert(record)
            stored.append((slot, record))
    for slot, record in stored:
        assert page.read(slot) == record
    # Serialization preserves everything.
    restored = Page.from_bytes(0, page.to_bytes())
    for slot, record in stored:
        assert restored.read(slot) == record
