"""Tests for the service-time cost model."""

import pytest

from repro.errors import DiskError
from repro.storage.costmodel import SEEK_ONLY, CostModel, CostedDisk


class TestCostModel:
    def test_service_time_components(self):
        model = CostModel(
            seek_per_page=0.1, settle=2.0, rotational_latency=5.0, transfer=1.0
        )
        # Zero-distance read: no positioning at all.
        assert model.service_time(0) == pytest.approx(6.0)
        # 10-page seek: settle + 10*0.1 + rotation + transfer.
        assert model.service_time(10) == pytest.approx(2.0 + 1.0 + 5.0 + 1.0)

    def test_seek_only_degenerates_to_distance(self):
        assert SEEK_ONLY.service_time(0) == 0.0
        assert SEEK_ONLY.service_time(37) == 37.0

    def test_negative_constants_rejected(self):
        with pytest.raises(DiskError):
            CostModel(settle=-1.0)


class TestCostedDisk:
    def test_accumulates_service_time(self):
        disk = CostedDisk(
            cost_model=CostModel(
                seek_per_page=1.0, settle=0.0,
                rotational_latency=2.0, transfer=0.0,
            )
        )
        disk.read(10)  # 10 + 2
        disk.read(10)  # 0 + 2
        assert disk.service_time_total == pytest.approx(14.0)
        assert disk.avg_service_time_per_read == pytest.approx(7.0)

    def test_empty_average(self):
        assert CostedDisk().avg_service_time_per_read == 0.0

    def test_reset_clears_service_time(self):
        disk = CostedDisk()
        disk.read(5)
        disk.reset_stats()
        assert disk.service_time_total == 0.0
        assert disk.stats.reads == 0

    def test_seek_stats_still_tracked(self):
        disk = CostedDisk()
        disk.read(8)
        assert disk.stats.read_seek_total == 8

    def test_seek_only_model_matches_seek_metric(self):
        disk = CostedDisk(cost_model=SEEK_ONLY)
        for page in (5, 20, 7):
            disk.read(page)
        assert disk.service_time_total == pytest.approx(
            disk.stats.read_seek_total
        )
