"""Tests for the OID-addressed object store and page planner."""

import pytest

from repro.errors import DuplicateOidError, PageFullError, StorageError
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.oid import Oid
from repro.storage.record import ObjectRecord
from repro.storage.store import ObjectStore, PagePlanner


def record(marker: int) -> ObjectRecord:
    return ObjectRecord(ints=[marker, 0, 0, 0])


class TestStoreFetch:
    def test_roundtrip(self, store):
        extent = store.disk.allocate(1)
        store.store_at(Oid(1, 1), record(42), extent.start)
        fetched = store.fetch(Oid(1, 1))
        assert fetched.ints[0] == 42

    def test_objects_per_page_is_nine(self, store):
        """Paper geometry: nine 96-byte objects per 1 KB page."""
        assert store.objects_per_page() == 9

    def test_page_fills_then_rejects(self, store):
        extent = store.disk.allocate(1)
        for serial in range(9):
            store.store_at(Oid(1, serial + 1), record(serial), extent.start)
        with pytest.raises(PageFullError):
            store.store_at(Oid(1, 100), record(0), extent.start)

    def test_duplicate_oid_rejected(self, store):
        extent = store.disk.allocate(1)
        store.store_at(Oid(1, 1), record(0), extent.start)
        with pytest.raises(DuplicateOidError):
            store.store_at(Oid(1, 1), record(1), extent.start)

    def test_store_page_bulk(self, store):
        extent = store.disk.allocate(1)
        items = [(Oid(1, s + 1), record(s)) for s in range(9)]
        rids = store.store_page(extent.start, items)
        assert [rid.slot for rid in rids] == list(range(9))
        for serial in range(9):
            assert store.fetch(Oid(1, serial + 1)).ints[0] == serial

    def test_store_page_duplicate_rolls_back_nothing_registered(self, store):
        extent = store.disk.allocate(1)
        store.store_at(Oid(1, 1), record(0), extent.start)
        with pytest.raises(DuplicateOidError):
            store.store_page(extent.start, [(Oid(1, 1), record(1))])

    def test_page_of(self, store):
        extent = store.disk.allocate(3)
        store.store_at(Oid(1, 1), record(0), extent.start + 2)
        assert store.page_of(Oid(1, 1)) == extent.start + 2

    def test_fetch_goes_through_buffer(self, store):
        extent = store.disk.allocate(1)
        store.store_at(Oid(1, 1), record(0), extent.start)
        store.disk.reset_stats()
        store.fetch(Oid(1, 1))
        store.fetch(Oid(1, 1))
        assert store.disk.stats.reads == 1  # second fetch is a buffer hit
        assert store.buffer.stats.hits >= 1


class TestPinnedFetch:
    def test_fetch_pinned_holds_page(self, store):
        extent = store.disk.allocate(1)
        store.store_at(Oid(1, 1), record(7), extent.start)
        fetched = store.fetch_pinned(Oid(1, 1))
        assert fetched.ints[0] == 7
        assert store.buffer.pin_count(extent.start) == 1
        store.unpin(Oid(1, 1))
        assert store.buffer.pin_count(extent.start) == 0

    def test_two_objects_same_page_two_pins(self, store):
        extent = store.disk.allocate(1)
        store.store_at(Oid(1, 1), record(1), extent.start)
        store.store_at(Oid(1, 2), record(2), extent.start)
        store.fetch_pinned(Oid(1, 1))
        store.fetch_pinned(Oid(1, 2))
        assert store.buffer.pin_count(extent.start) == 2
        store.unpin(Oid(1, 1))
        store.unpin(Oid(1, 2))


class TestScanExtent:
    def test_scan_extent_physical_order(self, store):
        extent = store.disk.allocate(2)
        store.store_at(Oid(1, 1), record(1), extent.start + 1)
        store.store_at(Oid(1, 2), record(2), extent.start)
        scanned = list(store.scan_extent(extent))
        assert [oid for oid, _ in scanned] == [Oid(1, 2), Oid(1, 1)]


class TestPagePlanner:
    def test_capacity(self, store):
        extent = store.disk.allocate(3)
        planner = PagePlanner(store, extent)
        assert planner.capacity() == 27
        assert planner.objects_per_page == 9

    def test_slots_in_order(self, store):
        extent = store.disk.allocate(2)
        planner = PagePlanner(store, extent)
        slots = planner.slots_in_order()
        assert len(slots) == 18
        assert slots[:9] == [extent.start] * 9
        assert slots[9:] == [extent.start + 1] * 9

    def test_claim_enforces_fill(self, store):
        extent = store.disk.allocate(1)
        planner = PagePlanner(store, extent)
        for _ in range(9):
            planner.claim(extent.start)
        with pytest.raises(PageFullError):
            planner.claim(extent.start)

    def test_claim_outside_extent(self, store):
        extent = store.disk.allocate(1)
        planner = PagePlanner(store, extent)
        with pytest.raises(StorageError):
            planner.claim(extent.start + 5)

    def test_next_sequential_skips_full_pages(self, store):
        extent = store.disk.allocate(2)
        planner = PagePlanner(store, extent)
        for _ in range(9):
            planner.claim(extent.start)
        assert planner.next_sequential() == extent.start + 1

    def test_next_sequential_exhausted(self, store):
        extent = store.disk.allocate(1)
        planner = PagePlanner(store, extent)
        for _ in range(9):
            planner.claim(planner.next_sequential())
        with pytest.raises(PageFullError):
            planner.next_sequential()

    def test_slots_reflect_claims(self, store):
        extent = store.disk.allocate(1)
        planner = PagePlanner(store, extent)
        planner.claim(extent.start)
        assert len(planner.slots_in_order()) == 8
