"""Tests for the record codec (the paper's 96-byte object layout)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RecordError
from repro.storage.oid import NULL_OID, Oid
from repro.storage.record import (
    OBJECT_PAYLOAD_SIZE,
    PAPER_FORMAT,
    ObjectRecord,
    RecordFormat,
)


class TestRecordFormat:
    def test_paper_geometry_is_96_bytes(self):
        """Section 6: 4 integers + 8 references = 96 bytes."""
        assert PAPER_FORMAT.payload_size == 96
        assert OBJECT_PAYLOAD_SIZE == 96

    def test_custom_format_size(self):
        assert RecordFormat(n_ints=2, n_refs=1).payload_size == 2 * 4 + 10

    def test_negative_counts_rejected(self):
        with pytest.raises(RecordError):
            RecordFormat(n_ints=-1)

    def test_encode_wrong_arity(self):
        with pytest.raises(RecordError):
            PAPER_FORMAT.encode([1, 2], [NULL_OID] * 8)
        with pytest.raises(RecordError):
            PAPER_FORMAT.encode([1, 2, 3, 4], [NULL_OID] * 3)

    def test_encode_int_out_of_range(self):
        with pytest.raises(RecordError):
            PAPER_FORMAT.encode([2**40, 0, 0, 0], [NULL_OID] * 8)

    def test_decode_wrong_length(self):
        with pytest.raises(RecordError):
            PAPER_FORMAT.decode(b"\x00" * 95)


class TestObjectRecord:
    def test_default_is_zeroed(self):
        record = ObjectRecord()
        assert record.ints == [0, 0, 0, 0]
        assert all(ref.is_null() for ref in record.refs)

    def test_roundtrip(self):
        record = ObjectRecord(
            ints=[1, -2, 3, 4],
            refs=[Oid(1, i + 1) for i in range(8)],
        )
        decoded = ObjectRecord.decode(record.encode())
        assert decoded.ints == record.ints
        assert decoded.refs == record.refs

    def test_live_refs_skips_nulls(self):
        refs = [NULL_OID] * 8
        refs[2] = Oid(4, 9)
        refs[5] = Oid(4, 10)
        record = ObjectRecord(refs=refs)
        assert record.live_refs() == [Oid(4, 9), Oid(4, 10)]

    def test_wrong_arity_rejected(self):
        with pytest.raises(RecordError):
            ObjectRecord(ints=[1, 2, 3])
        with pytest.raises(RecordError):
            ObjectRecord(refs=[NULL_OID] * 7)

    def test_encoded_size(self):
        assert len(ObjectRecord().encode()) == 96

    @given(
        st.lists(
            st.integers(-(2**31), 2**31 - 1), min_size=4, max_size=4
        ),
        st.lists(
            st.tuples(st.integers(0, 0xFFFF), st.integers(0, 2**63)),
            min_size=8,
            max_size=8,
        ),
    )
    def test_roundtrip_property(self, ints, ref_pairs):
        record = ObjectRecord(
            ints=list(ints), refs=[Oid(t, s) for t, s in ref_pairs]
        )
        decoded = ObjectRecord.decode(record.encode())
        assert decoded.ints == record.ints
        assert decoded.refs == record.refs
