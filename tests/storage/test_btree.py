"""Tests for the page-backed B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateKeyError, IndexError_, KeyNotFoundError
from repro.storage.btree import BTree
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk


def value(n: int) -> bytes:
    return n.to_bytes(10, "big")


def small_tree(**kwargs):
    disk = SimulatedDisk()
    return BTree(
        disk,
        BufferManager(disk),
        max_leaf_keys=4,
        max_internal_keys=4,
        **kwargs,
    )


class TestInsertSearch:
    def test_empty(self):
        tree = small_tree()
        assert len(tree) == 0
        assert tree.search(1) == []

    def test_single(self):
        tree = small_tree()
        tree.insert(5, value(5))
        assert tree.search(5) == [value(5)]
        assert len(tree) == 1

    def test_many_with_splits(self):
        tree = small_tree()
        keys = list(range(200))
        random.Random(1).shuffle(keys)
        for key in keys:
            tree.insert(key, value(key))
        tree.check_invariants()
        assert tree.height >= 3
        for key in range(200):
            assert tree.search(key) == [value(key)]

    def test_duplicates_allowed(self):
        tree = small_tree()
        tree.insert(7, value(1))
        tree.insert(7, value(2))
        assert sorted(tree.search(7)) == [value(1), value(2)]

    def test_many_duplicates_across_leaves(self):
        tree = small_tree()
        for i in range(30):
            tree.insert(42, value(i))
        tree.check_invariants()
        assert len(tree.search(42)) == 30

    def test_unique_index_rejects_duplicates(self):
        tree = small_tree(unique=True)
        tree.insert(1, value(1))
        with pytest.raises(DuplicateKeyError):
            tree.insert(1, value(2))

    def test_bad_value_size(self):
        tree = small_tree()
        with pytest.raises(IndexError_):
            tree.insert(1, b"short")

    def test_negative_keys(self):
        tree = small_tree()
        for key in (-50, 0, 50):
            tree.insert(key, value(abs(key)))
        assert [k for k, _ in tree.items()] == [-50, 0, 50]


class TestRangeScan:
    def make(self, keys):
        tree = small_tree()
        for key in keys:
            tree.insert(key, value(key))
        return tree

    def test_full_scan_sorted(self):
        keys = random.Random(2).sample(range(1000), 100)
        tree = self.make(keys)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_bounded_range(self):
        tree = self.make(range(0, 100, 3))
        got = [k for k, _ in tree.range_scan(10, 40)]
        assert got == [k for k in range(0, 100, 3) if 10 <= k <= 40]

    def test_open_low(self):
        tree = self.make(range(10))
        assert [k for k, _ in tree.range_scan(None, 4)] == [0, 1, 2, 3, 4]

    def test_open_high(self):
        tree = self.make(range(10))
        assert [k for k, _ in tree.range_scan(6, None)] == [6, 7, 8, 9]

    def test_empty_range(self):
        tree = self.make(range(10))
        assert list(tree.range_scan(100, 200)) == []


class TestDelete:
    def test_delete_missing(self):
        tree = small_tree()
        with pytest.raises(KeyNotFoundError):
            tree.delete(9)

    def test_delete_specific_value(self):
        tree = small_tree()
        tree.insert(5, value(1))
        tree.insert(5, value(2))
        tree.delete(5, value(1))
        assert tree.search(5) == [value(2)]

    def test_delete_all_then_empty(self):
        tree = small_tree()
        keys = list(range(60))
        for key in keys:
            tree.insert(key, value(key))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.delete(key)
            tree.check_invariants()
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_interleaved_insert_delete(self):
        tree = small_tree()
        model = []  # multiset of keys
        rng = random.Random(4)
        for step in range(400):
            key = rng.randrange(50)
            if key in model and rng.random() < 0.5:
                tree.delete(key)
                model.remove(key)
            else:
                tree.insert(key, value(step))
                model.append(key)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == sorted(model)


class TestPersistenceAndIO:
    def test_index_io_goes_through_disk(self):
        disk = SimulatedDisk()
        tree = BTree(disk, BufferManager(disk), max_leaf_keys=4, max_internal_keys=4)
        for key in range(50):
            tree.insert(key, value(key))
        # Reads happened: index pages come from the (simulated) device.
        assert disk.stats.reads > 0 or disk.stats.writes > 0

    def test_full_fanout_tree(self):
        """Default (page-capacity) fan-out holds thousands of keys shallowly."""
        disk = SimulatedDisk()
        tree = BTree(disk, BufferManager(disk))
        for key in range(3000):
            tree.insert(key, value(key))
        assert tree.height <= 3
        tree.check_invariants()

    def test_fanout_beyond_page_rejected(self):
        disk = SimulatedDisk()
        with pytest.raises(IndexError_):
            BTree(disk, max_leaf_keys=10_000)

    def test_fanout_too_small_rejected(self):
        with pytest.raises(IndexError_):
            BTree(SimulatedDisk(), max_leaf_keys=1)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(0, 30),
        ),
        max_size=120,
    )
)
def test_btree_matches_multiset_model(ops):
    """Random insert/delete streams agree with a sorted-multiset model."""
    tree = small_tree()
    model = []
    for op, key in ops:
        if op == "insert":
            tree.insert(key, value(key))
            model.append(key)
        else:
            if key in model:
                tree.delete(key)
                model.remove(key)
            else:
                with pytest.raises(KeyNotFoundError):
                    tree.delete(key)
    tree.check_invariants()
    assert [k for k, _ in tree.items()] == sorted(model)
