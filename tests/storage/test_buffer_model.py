"""Property-based model test for the buffer manager.

A random stream of fix/unfix operations against a capacity-bounded
buffer must agree with a reference model tracking pin counts, and must
uphold the manager's invariants: pinned pages stay resident, capacity
is never exceeded, and hit/fault counts sum to fixes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BufferFullError, PinError
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk

N_PAGES = 12


@st.composite
def operation_streams(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["fix", "unfix"]),
                st.integers(0, N_PAGES - 1),
            ),
            max_size=120,
        )
    )
    capacity = draw(st.integers(2, 8))
    return ops, capacity


@settings(max_examples=60, deadline=None)
@given(operation_streams())
def test_buffer_matches_pin_model(stream):
    ops, capacity = stream
    disk = SimulatedDisk()
    buffer = BufferManager(disk, capacity=capacity)
    pins = {page: 0 for page in range(N_PAGES)}

    for op, page in ops:
        if op == "fix":
            distinct_pinned = sum(1 for c in pins.values() if c > 0)
            try:
                buffer.fix(page)
            except BufferFullError:
                # Legal only when every frame is pinned and the page
                # itself is not resident.
                assert distinct_pinned >= capacity
                assert not buffer.is_resident(page)
                continue
            pins[page] += 1
        else:
            if pins[page] > 0:
                buffer.unfix(page)
                pins[page] -= 1
            else:
                try:
                    buffer.unfix(page)
                except PinError:
                    pass
                else:
                    raise AssertionError("unfix of unpinned page succeeded")

        # Invariants after every operation:
        assert buffer.resident_pages <= capacity
        for target, count in pins.items():
            assert buffer.pin_count(target) == count
            if count > 0:
                assert buffer.is_resident(target)
        assert buffer.pinned_pages == sum(1 for c in pins.values() if c > 0)

    stats = buffer.stats
    assert stats.hits + stats.faults == stats.fixes
