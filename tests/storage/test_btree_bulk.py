"""Tests for B+-tree bulk loading."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateKeyError, IndexError_
from repro.storage.btree import BTree
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk


def value(n: int) -> bytes:
    return n.to_bytes(10, "big")


def small_tree(**kwargs):
    disk = SimulatedDisk()
    return BTree(
        disk, BufferManager(disk), max_leaf_keys=4, max_internal_keys=4,
        **kwargs,
    )


class TestBulkLoad:
    def test_loads_and_searches(self):
        tree = small_tree()
        items = [(k, value(k)) for k in range(100)]
        tree.bulk_load(items)
        tree.check_invariants()
        assert len(tree) == 100
        for k in (0, 37, 99):
            assert tree.search(k) == [value(k)]
        assert [k for k, _ in tree.items()] == list(range(100))

    def test_matches_incremental_build(self):
        bulk = small_tree()
        bulk.bulk_load([(k, value(k)) for k in range(57)])
        incremental = small_tree()
        for k in range(57):
            incremental.insert(k, value(k))
        assert list(bulk.items()) == list(incremental.items())

    def test_empty_input(self):
        tree = small_tree()
        tree.bulk_load([])
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_single_item(self):
        tree = small_tree()
        tree.bulk_load([(5, value(5))])
        assert tree.search(5) == [value(5)]
        tree.check_invariants()

    def test_duplicates_allowed(self):
        tree = small_tree()
        tree.bulk_load([(1, value(1)), (1, value(2)), (2, value(3))])
        assert len(tree.search(1)) == 2

    def test_unique_rejects_duplicates(self):
        tree = small_tree(unique=True)
        with pytest.raises(DuplicateKeyError):
            tree.bulk_load([(1, value(1)), (1, value(2))])

    def test_unsorted_rejected(self):
        tree = small_tree()
        with pytest.raises(IndexError_):
            tree.bulk_load([(2, value(2)), (1, value(1))])

    def test_nonempty_tree_rejected(self):
        tree = small_tree()
        tree.insert(1, value(1))
        with pytest.raises(IndexError_):
            tree.bulk_load([(2, value(2))])

    def test_bad_fill(self):
        tree = small_tree()
        with pytest.raises(IndexError_):
            tree.bulk_load([(1, value(1))], fill=0.0)

    def test_bad_value_size(self):
        tree = small_tree()
        with pytest.raises(IndexError_):
            tree.bulk_load([(1, b"short")])

    def test_partial_fill_leaves_insert_room(self):
        tree = small_tree()
        tree.bulk_load([(k * 2, value(k)) for k in range(40)], fill=0.5)
        tree.check_invariants()
        # Odd keys insert into the half-full leaves without issue.
        for k in range(1, 20, 2):
            tree.insert(k, value(k))
        tree.check_invariants()

    def test_mutations_after_bulk_load(self):
        tree = small_tree()
        tree.bulk_load([(k, value(k)) for k in range(30)])
        tree.delete(17)
        tree.insert(100, value(100))
        tree.check_invariants()
        assert tree.search(17) == []
        assert tree.search(100) == [value(100)]

    def test_bulk_is_cheaper_than_incremental(self):
        """Fewer page writes than repeated insert (the point of it)."""
        disk_bulk = SimulatedDisk()
        bulk = BTree(disk_bulk, BufferManager(disk_bulk),
                     max_leaf_keys=4, max_internal_keys=4)
        bulk.bulk_load([(k, value(k)) for k in range(200)])
        bulk.buffer.flush_all()

        disk_inc = SimulatedDisk()
        incremental = BTree(disk_inc, BufferManager(disk_inc),
                            max_leaf_keys=4, max_internal_keys=4)
        for k in range(200):
            incremental.insert(k, value(k))
        incremental.buffer.flush_all()
        assert disk_bulk.stats.writes < disk_inc.stats.writes


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(-500, 500), max_size=150))
def test_bulk_load_matches_sorted_input(keys):
    tree = small_tree()
    items = sorted((k, value(abs(k))) for k in keys)
    tree.bulk_load(items)
    tree.check_invariants()
    assert [k for k, _ in tree.items()] == sorted(keys)
