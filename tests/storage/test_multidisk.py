"""Tests for the multi-device disk."""

import pytest

from repro.errors import DiskError, ExtentError
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.page import Page


class TestGeometry:
    def test_address_space(self):
        disk = MultiDeviceDisk(n_devices=3, pages_per_device=100)
        assert disk.device_of(0) == 0
        assert disk.device_of(99) == 0
        assert disk.device_of(100) == 1
        assert disk.device_of(299) == 2
        with pytest.raises(DiskError):
            disk.device_of(300)

    def test_bad_parameters(self):
        with pytest.raises(DiskError):
            MultiDeviceDisk(n_devices=0, pages_per_device=10)
        with pytest.raises(DiskError):
            MultiDeviceDisk(n_devices=2, pages_per_device=0)


class TestIndependentHeads:
    def test_seeks_charged_per_device(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=100)
        disk.read(50)    # device 0: head 0 -> 50
        disk.read(150)   # device 1: head 100 -> 150
        disk.read(60)    # device 0: head 50 -> 60 (10, not 90!)
        assert disk.device_stats[0].read_seeks == [50, 10]
        assert disk.device_stats[1].read_seeks == [50]
        assert disk.stats.read_seek_total == 110

    def test_interleaving_does_not_interfere(self):
        """Alternating devices costs the same as visiting each alone."""
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=1000)
        for offset in range(10):
            disk.read(offset * 10)          # device 0 sweep
            disk.read(1000 + offset * 10)   # device 1 sweep
        # Each device swept 0..90 in 10-page steps: 90 total each.
        assert disk.device_stats[0].read_seek_total == 90
        assert disk.device_stats[1].read_seek_total == 90

    def test_reset_parks_all_heads(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=100)
        disk.read(70)
        disk.read(170)
        disk.reset_stats()
        assert disk.head_of(0) == 0
        assert disk.head_of(1) == 100
        assert disk.device_stats[0].reads == 0


class TestAllocation:
    def test_round_robin_across_devices(self):
        disk = MultiDeviceDisk(n_devices=3, pages_per_device=100)
        extents = [disk.allocate(10) for _ in range(6)]
        devices = [disk.device_of(e.start) for e in extents]
        assert devices == [0, 1, 2, 0, 1, 2]

    def test_allocate_on_specific_device(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=100)
        extent = disk.allocate_on(1, 20)
        assert disk.device_of(extent.start) == 1
        assert extent.length == 20

    def test_skip_full_device(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=30)
        disk.allocate_on(0, 25)
        extent = disk.allocate(10)  # does not fit device 0's remainder
        assert disk.device_of(extent.start) == 1

    def test_all_full_raises(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=10)
        disk.allocate(10)
        disk.allocate(10)
        with pytest.raises(ExtentError):
            disk.allocate(1)

    def test_allocate_on_bad_device(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=10)
        with pytest.raises(ExtentError):
            disk.allocate_on(5, 1)

    def test_extent_never_straddles_devices(self):
        disk = MultiDeviceDisk(n_devices=4, pages_per_device=50)
        for _ in range(4):
            extent = disk.allocate(30)
            assert disk.device_of(extent.start) == disk.device_of(
                extent.end - 1
            )


class TestPersistence:
    def test_read_write_roundtrip(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=100)
        page = Page(150)
        page.insert(b"on device one")
        disk.write(page)
        assert disk.read(150).read(0) == b"on device one"


class TestAccountingConsistency:
    """Aggregate stats must equal the sum of the per-device stats —
    including after a parent ``reset_stats`` (the regression: child
    run/batch accounting used to be able to drift from the parent)."""

    def exercise(self, disk):
        for page_id in (10, 150, 30, 170):
            page = Page(page_id)
            page.insert(b"x")
            disk.write(page)
        disk.read(10)
        disk.read(150)
        disk.read_run(20, 4)
        disk.read_run(160, 3)

    def assert_consistent(self, disk):
        for field in (
            "reads",
            "writes",
            "read_seek_total",
            "write_seek_total",
            "pages_read",
            "run_reads",
        ):
            aggregate = getattr(disk.stats, field)
            mirrored = sum(getattr(s, field) for s in disk.device_stats)
            assert aggregate == mirrored, field
        assert disk.stats.busy_ms == sum(
            s.busy_ms for s in disk.device_stats
        )

    def test_writes_mirrored_per_device(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=100)
        self.exercise(disk)
        assert disk.device_stats[0].writes == 2
        assert disk.device_stats[1].writes == 2
        self.assert_consistent(disk)

    def test_parent_reset_resets_children(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=100)
        self.exercise(disk)
        disk.reset_stats()
        for stats in [disk.stats] + list(disk.device_stats):
            assert stats.reads == 0
            assert stats.writes == 0
            assert stats.pages_read == 0
            assert stats.run_reads == 0
            assert stats.read_seek_total == 0
            assert stats.write_seek_total == 0
            assert stats.busy_ms == 0.0

    def test_accounting_consistent_after_reset(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=100)
        self.exercise(disk)
        disk.reset_stats()
        self.exercise(disk)
        self.assert_consistent(disk)


class TestExchangeResetConsistency:
    """The exchange path keeps multi-device accounting honest.

    ``PartitionedExecute`` drives several assembly fragments over one
    multi-device store; the aggregate stats must stay the exact sum of
    the per-device stats through that traffic, and ``reset_stats`` must
    restore a cold disk so a rerun is bit-identical (parked heads, zero
    run accounting) — the drift a plain unit exercise can miss."""

    def build(self):
        from repro.cluster.layout import layout_database
        from repro.cluster.policies import InterObjectClustering
        from repro.storage.buffer import BufferManager
        from repro.storage.store import ObjectStore
        from repro.workloads.acob import generate_acob

        disk = MultiDeviceDisk(n_devices=3, pages_per_device=600)
        store = ObjectStore(disk, BufferManager(disk))
        db = generate_acob(18, seed=3)
        layout = layout_database(
            db.complex_objects,
            store,
            InterObjectClustering(cluster_pages=16),
            shared=db.shared_pool,
        )
        return db, store, layout

    def run_exchange(self, db, store, layout):
        from repro.volcano.assembly import AssemblyOperator
        from repro.volcano.exchange import PartitionedExecute
        from repro.workloads.acob import make_template

        plan = PartitionedExecute(
            rows=list(layout.root_order),
            n_partitions=3,
            fragment=lambda source: AssemblyOperator(
                source, store, make_template(db), window_size=2
            ),
        )
        return plan.execute()

    @staticmethod
    def snapshot(disk):
        def fields(stats):
            return (
                stats.reads,
                stats.writes,
                stats.read_seek_total,
                stats.write_seek_total,
                stats.pages_read,
                stats.run_reads,
                stats.busy_ms,
            )

        return (fields(disk.stats), tuple(fields(s) for s in disk.device_stats))

    def test_aggregate_mirrors_devices_through_exchange(self):
        db, store, layout = self.build()
        store.disk.reset_stats()
        rows = self.run_exchange(db, store, layout)
        assert len(rows) == 18
        aggregate, per_device = self.snapshot(store.disk)
        assert aggregate == tuple(map(sum, zip(*per_device)))
        assert aggregate[0] > 0  # the exchange actually read pages

    def test_reset_makes_reruns_bit_identical(self):
        db, store, layout = self.build()

        def cold_run():
            store.buffer.drop_clean()
            store.disk.reset_stats()
            self.run_exchange(db, store, layout)
            return self.snapshot(store.disk)

        assert cold_run() == cold_run()
