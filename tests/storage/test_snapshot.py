"""Tests for store snapshots."""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering, Unclustered
from repro.core.assembly import Assembly
from repro.errors import StorageError
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.snapshot import load_store, save_store
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template


def build_layout(disk=None):
    db = generate_acob(20, seed=9)
    disk = disk if disk is not None else SimulatedDisk()
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects,
        store,
        InterObjectClustering(cluster_pages=8),
        shared=db.shared_pool,
    )
    return db, store, layout


class TestRoundTrip:
    def test_reopened_store_serves_identical_objects(self, tmp_path):
        db, store, layout = build_layout()
        path = save_store(store, tmp_path / "acob.snap")

        reopened = load_store(path)
        for cobj in db.complex_objects:
            for oid, obj in cobj.objects.items():
                assert reopened.fetch(oid).ints[2] == obj.ints["position"]

    def test_assembly_over_reopened_store(self, tmp_path):
        db, store, layout = build_layout()
        path = save_store(store, tmp_path / "acob.snap")
        reopened = load_store(path)
        op = Assembly(
            ListSource(layout.root_order),
            reopened,
            make_template(db),
            window_size=4,
        )
        emitted = op.execute()
        assert len(emitted) == 20
        for cobj in emitted:
            cobj.verify_swizzled()

    def test_allocation_cursor_survives(self, tmp_path):
        _db, store, _layout = build_layout()
        before = store.disk.allocated_pages
        path = save_store(store, tmp_path / "acob.snap")
        reopened = load_store(path)
        extent = reopened.disk.allocate(3)
        assert extent.start == before  # no overlap with stored pages

    def test_buffer_capacity_applied(self, tmp_path):
        _db, store, _layout = build_layout()
        path = save_store(store, tmp_path / "acob.snap")
        reopened = load_store(path, buffer_capacity=5)
        assert reopened.buffer.capacity == 5

    def test_stats_start_cold(self, tmp_path):
        _db, store, layout = build_layout()
        store.fetch(layout.roots[0])
        path = save_store(store, tmp_path / "acob.snap")
        reopened = load_store(path)
        assert reopened.disk.stats.reads == 0
        assert reopened.buffer.stats.fixes == 0

    def test_multi_device_snapshot(self, tmp_path):
        disk = MultiDeviceDisk(n_devices=3, pages_per_device=64)
        db, store, layout = build_layout(disk=disk)
        path = save_store(store, tmp_path / "multi.snap")
        reopened = load_store(path)
        assert isinstance(reopened.disk, MultiDeviceDisk)
        assert reopened.disk.n_devices == 3
        root = layout.roots[0]
        assert reopened.fetch(root).ints[2] == 0
        # Allocation continues round-robin without clobbering data.
        extent = reopened.disk.allocate(2)
        assert extent.length == 2


class TestFormatErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.snap"
        path.write_bytes(b"NOPE" + b"\x00" * 40)
        with pytest.raises(StorageError):
            load_store(path)

    def test_truncated(self, tmp_path):
        _db, store, _layout = build_layout()
        path = save_store(store, tmp_path / "acob.snap")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError):
            load_store(path)

    def test_trailing_garbage(self, tmp_path):
        _db, store, _layout = build_layout()
        path = save_store(store, tmp_path / "acob.snap")
        path.write_bytes(path.read_bytes() + b"extra")
        with pytest.raises(StorageError):
            load_store(path)

    def test_wrong_version(self, tmp_path):
        _db, store, _layout = build_layout()
        path = save_store(store, tmp_path / "acob.snap")
        data = bytearray(path.read_bytes())
        data[4:6] = (99).to_bytes(2, "big")
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            load_store(path)
