"""Tests for batched I/O: run coalescing, run reads, batch pinning."""

import pytest

from repro.errors import BufferFullError, DiskError
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import CostModel, CostedDisk
from repro.storage.disk import SimulatedDisk, coalesce_runs
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.page import Page


class TestCoalesceRuns:
    def test_empty(self):
        assert coalesce_runs([]) == []

    def test_singleton(self):
        assert coalesce_runs([7]) == [(7, 1)]

    def test_ascending_run(self):
        assert coalesce_runs([3, 4, 5]) == [(3, 3)]

    def test_descending_run_reported_from_lowest(self):
        assert coalesce_runs([5, 4, 3]) == [(3, 3)]

    def test_direction_flip_splits(self):
        # 3,4 ascend; 3 again steps -1 against the run's direction.
        assert coalesce_runs([3, 4, 3]) == [(3, 2), (3, 1)]

    def test_gap_splits(self):
        assert coalesce_runs([3, 4, 9, 10]) == [(3, 2), (9, 2)]

    def test_adjacent_duplicates_collapse(self):
        assert coalesce_runs([3, 3, 4, 4, 5]) == [(3, 3)]

    def test_unrelated_pages_stay_single(self):
        assert coalesce_runs([10, 2, 30]) == [(10, 1), (2, 1), (30, 1)]


class TestReadRun:
    def test_one_seek_many_pages(self):
        disk = SimulatedDisk()
        pages = disk.read_run(10, 4)
        assert [p.page_id for p in pages] == [10, 11, 12, 13]
        assert disk.stats.reads == 1
        assert disk.stats.pages_read == 4
        assert disk.stats.run_reads == 1
        assert disk.stats.read_seeks == [10]

    def test_head_settles_on_last_page(self):
        disk = SimulatedDisk()
        disk.read_run(10, 4)
        assert disk.head_position == 13
        disk.read(14)  # next sequential page: 1-page seek
        assert disk.stats.read_seeks == [10, 1]

    def test_single_page_run_is_a_plain_read(self):
        disk = SimulatedDisk()
        disk.read_run(5, 1)
        assert disk.stats.reads == 1
        assert disk.stats.pages_read == 1
        assert disk.stats.run_reads == 0

    def test_returns_written_images(self):
        disk = SimulatedDisk()
        page = Page(11)
        page.insert(b"payload")
        disk.write(page)
        images = disk.read_run(10, 3)
        assert images[1].live_count() == 1

    def test_validates_both_ends(self):
        disk = SimulatedDisk(n_pages=10)
        with pytest.raises(DiskError):
            disk.read_run(8, 3)
        with pytest.raises(DiskError):
            disk.read_run(0, 0)
        # Nothing was charged by the failed attempts.
        assert disk.stats.reads == 0


class TestReadBatch:
    def test_request_order_preserved(self):
        disk = SimulatedDisk()
        pages = disk.read_batch([9, 3, 4, 5])
        assert [p.page_id for p in pages] == [9, 3, 4, 5]
        # Two physical operations: page 9 alone, run 3..5.
        assert disk.stats.reads == 2
        assert disk.stats.pages_read == 4

    def test_duplicates_read_once(self):
        disk = SimulatedDisk()
        pages = disk.read_batch([4, 4, 5])
        assert [p.page_id for p in pages] == [4, 4, 5]
        assert disk.stats.pages_read == 2

    def test_equivalent_cost_to_manual_runs(self):
        batch = SimulatedDisk()
        batch.read_batch([10, 11, 12, 40])
        manual = SimulatedDisk()
        manual.read_run(10, 3)
        manual.read(40)
        assert batch.stats.read_seek_total == manual.stats.read_seek_total
        assert batch.stats.reads == manual.stats.reads


class TestMultiDeviceRuns:
    def test_run_splits_at_device_boundary(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=100)
        pages = disk.read_run(98, 4)
        assert [p.page_id for p in pages] == [98, 99, 100, 101]
        # One physical read per device chunk.
        assert disk.stats.reads == 2
        assert disk.stats.pages_read == 4
        assert disk.device_stats[0].pages_read == 2
        assert disk.device_stats[1].pages_read == 2

    def test_heads_settle_per_device(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=100)
        disk.read_run(98, 4)
        assert disk.head_of(0) == 99
        assert disk.head_of(1) == 101

    def test_single_device_run_counts_once(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=100)
        disk.read_run(10, 5)
        assert disk.stats.reads == 1
        assert disk.device_stats[0].run_reads == 1
        assert disk.device_stats[1].reads == 0


class TestCostedRuns:
    def test_run_pays_one_positioning_many_transfers(self):
        model = CostModel(
            seek_per_page=1.0, settle=2.0, rotational_latency=3.0, transfer=1.0
        )
        disk = CostedDisk(cost_model=model)
        disk.read_run(10, 4)
        # settle + 10-page seek + rotation + 4 transfers.
        assert disk.service_time_total == pytest.approx(2 + 10 + 3 + 4)

    def test_run_cheaper_than_page_at_a_time(self):
        model = CostModel(
            seek_per_page=1.0, settle=2.0, rotational_latency=3.0, transfer=1.0
        )
        run = CostedDisk(cost_model=model)
        run.read_run(10, 4)
        paged = CostedDisk(cost_model=model)
        for page_id in (10, 11, 12, 13):
            paged.read(page_id)
        assert run.service_time_total < paged.service_time_total


class TestFixMany:
    def test_one_physical_read_for_contiguous_pages(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk)
        pages = buffer.fix_many([5, 4, 3])
        assert set(pages) == {3, 4, 5}
        assert disk.stats.reads == 1  # descending run, one operation
        assert buffer.stats.faults == 3
        for page_id in (3, 4, 5):
            buffer.unfix(page_id)

    def test_stats_match_unbatched_fix(self):
        plain_disk = SimulatedDisk()
        plain = BufferManager(plain_disk, capacity=4)
        batch_disk = SimulatedDisk()
        batched = BufferManager(batch_disk, capacity=4)
        request = [7, 7, 2, 3]
        for page_id in request:
            plain.fix(page_id)
        batched.fix_many(request)
        assert batched.stats.fixes == plain.stats.fixes
        assert batched.stats.faults == plain.stats.faults
        assert batched.stats.hits == plain.stats.hits
        assert batched.pinned_pages == plain.pinned_pages

    def test_duplicate_ids_pin_per_occurrence(self):
        buffer = BufferManager(SimulatedDisk())
        buffer.fix_many([9, 9])
        buffer.unfix(9)
        buffer.unfix(9)
        assert buffer.pinned_pages == 0

    def test_resident_pages_protected_from_eviction(self):
        buffer = BufferManager(SimulatedDisk(), capacity=2)
        buffer.fix(1)
        buffer.unfix(1)  # resident, unpinned
        buffer.fix_many([1, 2])  # must not evict 1 to fault 2
        assert buffer.stats.re_reads == 0
        buffer.unfix(1)
        buffer.unfix(2)

    def test_atomic_admission_check(self):
        buffer = BufferManager(SimulatedDisk(), capacity=3)
        buffer.fix(10)  # pinned, not part of the batch
        with pytest.raises(BufferFullError):
            buffer.fix_many([1, 2, 3])
        # The failed batch pinned nothing.
        assert buffer.pinned_pages == 1
        buffer.unfix(10)

    def test_batch_exactly_filling_capacity(self):
        buffer = BufferManager(SimulatedDisk(), capacity=3)
        pages = buffer.fix_many([1, 2, 3])
        assert len(pages) == 3
        for page_id in (1, 2, 3):
            buffer.unfix(page_id)

    def test_empty_batch(self):
        buffer = BufferManager(SimulatedDisk())
        assert buffer.fix_many([]) == {}
        assert buffer.stats.fixes == 0
