"""Cached hot paths must be bit-identical to their naive references.

The raw-speed pass added small caches in the storage layer: the OID
encoder memoizes its ``struct`` pack, the cost model memoizes
``(distance, n_pages)`` service times, and the object store keeps a
decoded-record cache in front of the codec.  A cache can only be a
pure speedup — these properties pin each one to the uncached
computation across random inputs and call orders.
"""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.buffer import BufferManager
from repro.storage.costmodel import CostModel
from repro.storage.disk import SimulatedDisk
from repro.storage.oid import Oid
from repro.storage.record import ObjectRecord
from repro.storage.store import ObjectStore

oids = st.tuples(st.integers(0, 0xFFFF), st.integers(0, 2**63))


class TestOidEncodeCache:
    """The memoized OID encoder equals a fresh struct pack."""

    @given(st.lists(oids, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_encode_matches_fresh_pack(self, pairs):
        for type_id, serial in pairs:
            expected = struct.pack(">HQ", type_id, serial)
            # Two distinct instances with equal fields hit the same
            # cache entry; both must produce the reference bytes.
            assert Oid(type_id, serial).encode() == expected
            assert Oid(type_id, serial).encode() == expected
            assert Oid.decode(expected) == Oid(type_id, serial)

    def test_repeated_encode_is_stable(self):
        oid = Oid(7, 123456789)
        first = oid.encode()
        assert all(oid.encode() == first for _ in range(5))


class TestCostModelMemo:
    """The memoized run cost equals the documented formula."""

    @staticmethod
    def reference_cost(model, distance, n_pages):
        """The formula from the class docstring, computed directly."""
        positioning = 0.0
        if distance > 0:
            positioning = model.settle + model.seek_per_page * distance
        return (
            positioning
            + model.rotational_latency
            + model.transfer * n_pages
        )

    @given(
        st.lists(
            st.tuples(st.integers(0, 5000), st.integers(1, 64)),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_memo_matches_formula_in_any_order(self, calls):
        model = CostModel()
        for distance, n_pages in calls:
            expected = self.reference_cost(model, distance, n_pages)
            # First call populates the memo, second call reads it.
            assert model.run_service_time(distance, n_pages) == expected
            assert model.run_service_time(distance, n_pages) == expected

    @given(st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_single_read_is_run_of_one(self, distance):
        model = CostModel()
        assert model.service_time(distance) == model.run_service_time(
            distance, 1
        )

    def test_memo_is_per_instance(self):
        fast = CostModel()
        fast.run_service_time(10, 4)  # warm one instance's memo
        slow = CostModel(seek_per_page=1.0)
        assert slow.run_service_time(10, 4) == self.reference_cost(
            slow, 10, 4
        )


def fresh_store():
    """An empty store on its own simulated disk."""
    disk = SimulatedDisk()
    return ObjectStore(disk, BufferManager(disk))


@st.composite
def store_op_streams(draw):
    """Random store/fetch/overwrite streams over a small OID space."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("store"),
                    st.integers(1, 20),  # serial
                    st.integers(-100, 100),  # payload marker
                ),
                st.tuples(
                    st.just("fetch"), st.integers(1, 20), st.just(0)
                ),
                st.tuples(
                    st.just("overwrite"),
                    st.integers(1, 20),
                    st.integers(-100, 100),
                ),
            ),
            max_size=40,
        )
    )


class TestDecodedRecordCache:
    """Fetch via the decoded cache equals fetch via the codec."""

    @given(store_op_streams())
    @settings(max_examples=50, deadline=None)
    def test_cached_store_matches_codec_only_store(self, ops):
        cached = fresh_store()
        naive = fresh_store()
        cached_extent = cached.disk.allocate(20)
        naive_extent = naive.disk.allocate(20)
        stored = set()
        for kind, serial, marker in ops:
            oid = Oid(3, serial)
            record = ObjectRecord(
                ints=[marker, serial, 0, 1],
                refs=[Oid(1, serial + slot) for slot in range(8)],
            )
            if kind == "store" and serial not in stored:
                # One page per serial keeps every page under capacity.
                rid_a = cached.store_at(
                    oid, record, cached_extent.start + serial - 1
                )
                rid_b = naive.store_at(
                    oid, record, naive_extent.start + serial - 1
                )
                assert rid_a == rid_b
                stored.add(serial)
            elif kind == "fetch" and serial in stored:
                naive._decoded.clear()  # force the codec path
                assert (
                    cached.fetch(oid).encode()
                    == naive.fetch(oid).encode()
                )
            elif kind == "overwrite" and serial in stored:
                cached.overwrite(oid, record)
                naive.overwrite(oid, record)
                naive._decoded.clear()
                assert (
                    cached.fetch(oid).encode()
                    == naive.fetch(oid).encode()
                )
