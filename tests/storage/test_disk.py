"""Tests for the simulated disk: the paper's seek-distance model."""

import pytest

from repro.errors import DiskError, ExtentError
from repro.storage.disk import Extent, SimulatedDisk
from repro.storage.page import Page


class TestSeekAccounting:
    def test_first_read_from_head_zero(self):
        disk = SimulatedDisk()
        disk.read(10)
        assert disk.stats.reads == 1
        assert disk.stats.read_seek_total == 10
        assert disk.head_position == 10

    def test_avg_seek_per_read(self):
        """The paper's metric: total seek distance / total reads."""
        disk = SimulatedDisk()
        disk.read(10)   # +10
        disk.read(4)    # +6
        disk.read(4)    # +0
        disk.read(20)   # +16
        assert disk.stats.reads == 4
        assert disk.stats.read_seek_total == 32
        assert disk.stats.avg_seek_per_read == 8.0

    def test_avg_seek_empty(self):
        assert SimulatedDisk().stats.avg_seek_per_read == 0.0

    def test_writes_tracked_separately(self):
        disk = SimulatedDisk()
        disk.write(Page(50))
        assert disk.stats.writes == 1
        assert disk.stats.write_seek_total == 50
        assert disk.stats.reads == 0
        assert disk.stats.avg_seek_per_read == 0.0

    def test_write_moves_head_for_next_read(self):
        disk = SimulatedDisk()
        disk.write(Page(30))
        disk.read(30)
        assert disk.stats.read_seek_total == 0

    def test_per_read_history(self):
        disk = SimulatedDisk()
        for page_id in (5, 5, 0):
            disk.read(page_id)
        assert disk.stats.read_seeks == [5, 0, 5]

    def test_reset_stats_parks_head(self):
        disk = SimulatedDisk()
        disk.read(100)
        disk.reset_stats()
        assert disk.stats.reads == 0
        assert disk.head_position == 0
        disk.read(3)
        assert disk.stats.read_seek_total == 3

    def test_reset_stats_keep_head(self):
        disk = SimulatedDisk()
        disk.read(100)
        disk.reset_stats(head_to_zero=False)
        assert disk.head_position == 100

    def test_snapshot_is_independent(self):
        disk = SimulatedDisk()
        disk.read(5)
        snap = disk.stats.snapshot()
        disk.read(50)
        assert snap.reads == 1
        assert disk.stats.reads == 2


class TestPersistence:
    def test_read_unwritten_page_is_empty(self):
        page = SimulatedDisk().read(7)
        assert page.page_id == 7
        assert page.slot_count == 0

    def test_write_then_read(self):
        disk = SimulatedDisk()
        page = Page(2)
        page.insert(b"persisted")
        disk.write(page)
        assert disk.read(2).read(0) == b"persisted"

    def test_read_returns_copy(self):
        """Mutating a read page does not change the disk (real I/O)."""
        disk = SimulatedDisk()
        page = Page(0)
        page.insert(b"abc")
        disk.write(page)
        copy = disk.read(0)
        copy.insert(b"extra")
        assert disk.read(0).slot_count == 1


class TestBoundsAndExtents:
    def test_negative_page(self):
        with pytest.raises(DiskError):
            SimulatedDisk().read(-1)

    def test_bounded_disk(self):
        disk = SimulatedDisk(n_pages=10)
        disk.read(9)
        with pytest.raises(DiskError):
            disk.read(10)

    def test_zero_page_disk_rejected(self):
        with pytest.raises(DiskError):
            SimulatedDisk(n_pages=0)

    def test_extents_are_contiguous_and_disjoint(self):
        disk = SimulatedDisk()
        first = disk.allocate(5)
        second = disk.allocate(3)
        assert (first.start, first.length) == (0, 5)
        assert (second.start, second.length) == (5, 3)
        assert disk.allocated_pages == 8

    def test_extent_contains_and_page_at(self):
        extent = Extent(start=10, length=4)
        assert 10 in extent and 13 in extent
        assert 14 not in extent
        assert extent.page_at(2) == 12
        with pytest.raises(ExtentError):
            extent.page_at(4)

    def test_allocate_beyond_limit(self):
        disk = SimulatedDisk(n_pages=4)
        disk.allocate(3)
        with pytest.raises(ExtentError):
            disk.allocate(2)

    def test_allocate_zero(self):
        with pytest.raises(ExtentError):
            SimulatedDisk().allocate(0)
