"""Tests for the clock (second-chance) replacement policy."""

import pytest

from repro.errors import BufferFullError
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk


def make(capacity=3):
    disk = SimulatedDisk()
    return BufferManager(disk, capacity=capacity, policy="clock")


class TestClockReplacement:
    def test_unknown_policy_rejected(self):
        with pytest.raises(BufferFullError):
            BufferManager(SimulatedDisk(), policy="fifo")

    def test_second_chance_protects_rereferenced_page(self):
        buffer = make(capacity=2)
        buffer.fix(0)
        buffer.unfix(0)
        buffer.fix(1)
        buffer.unfix(1)
        # Touch 0 again: its reference bit is set.
        buffer.fix(0)
        buffer.unfix(0)
        # Need room: the sweep clears bits; page 1, touched longest
        # ago... both have bits set (1 from its fault), so the hand
        # clears 0's bit first, clears 1's, then evicts 0?  The exact
        # victim depends on hand position; what MUST hold is that a
        # page re-touched after every sweep survives indefinitely.
        buffer.fix(2)
        buffer.unfix(2)
        assert buffer.resident_pages == 2

    def test_hot_page_survives_cold_stream(self):
        """A page touched between every miss is never evicted."""
        disk = SimulatedDisk()
        buffer = BufferManager(disk, capacity=3, policy="clock")
        page_reads = []
        original_read = disk.read

        def spy(page_id):
            page_reads.append(page_id)
            return original_read(page_id)

        disk.read = spy
        buffer.fix(100)  # the hot page
        buffer.unfix(100)
        for cold in range(20):
            buffer.fix(cold)
            buffer.unfix(cold)
            buffer.fix(100)  # re-reference: bit set again
            buffer.unfix(100)
        assert buffer.is_resident(100)
        # The very first sweep may claim it (all reference bits set,
        # hand parked on it); after that the persistent hand rotates
        # through the cold frames and the hot page never faults again.
        assert page_reads.count(100) <= 2

    def test_pinned_pages_skipped(self):
        buffer = make(capacity=2)
        buffer.fix(0)  # pinned
        buffer.fix(1)
        buffer.unfix(1)
        buffer.fix(2)  # must evict 1, never pinned 0
        assert buffer.is_resident(0)
        assert not buffer.is_resident(1)

    def test_all_pinned_raises(self):
        buffer = make(capacity=2)
        buffer.fix(0)
        buffer.fix(1)
        with pytest.raises(BufferFullError):
            buffer.fix(2)

    def test_eviction_writes_back_dirty(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk, capacity=1, policy="clock")
        page = buffer.fix(0)
        page.insert(b"clock dirty")
        buffer.unfix(0, dirty=True)
        buffer.fix(1)
        buffer.unfix(1)
        assert disk.read(0).read(0) == b"clock dirty"

    def test_capacity_respected_under_long_stream(self):
        buffer = make(capacity=4)
        for page_id in range(50):
            buffer.fix(page_id)
            buffer.unfix(page_id)
            assert buffer.resident_pages <= 4

    def test_assembly_runs_under_clock_policy(self):
        from repro.cluster.layout import layout_database
        from repro.cluster.policies import Unclustered
        from repro.core.assembly import Assembly
        from repro.storage.store import ObjectStore
        from repro.volcano.iterator import ListSource
        from repro.workloads.acob import generate_acob, make_template

        db = generate_acob(30, seed=4)
        disk = SimulatedDisk()
        store = ObjectStore(
            disk, BufferManager(disk, capacity=40, policy="clock")
        )
        layout = layout_database(db.complex_objects, store, Unclustered())
        op = Assembly(
            ListSource(layout.root_order), store, make_template(db),
            window_size=4,
        )
        emitted = op.execute()
        assert len(emitted) == 30
        for cobj in emitted:
            cobj.verify_swizzled()
