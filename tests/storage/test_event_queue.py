"""EventQueue: ordering, tie-breaks, lazy cancellation."""

from __future__ import annotations

import pytest

from repro.errors import DiskError
from repro.storage.events import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.schedule(30.0, "c")
        queue.schedule(10.0, "a")
        queue.schedule(20.0, "b")
        assert queue.next_time() == 10.0
        assert [queue.pop() for _ in range(3)] == [
            (10.0, "a"),
            (20.0, "b"),
            (30.0, "c"),
        ]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        for payload in ("first", "second", "third"):
            queue.schedule(5.0, payload)
        assert [queue.pop()[1] for _ in range(3)] == [
            "first",
            "second",
            "third",
        ]

    def test_unhashable_payloads_are_fine(self):
        queue = EventQueue()
        queue.schedule(1.0, ["list", "payload"])
        queue.schedule(1.0, {"dict": "payload"})
        assert queue.pop() == (1.0, ["list", "payload"])


class TestCancellation:
    def test_cancelled_events_never_surface(self):
        queue = EventQueue()
        keep = queue.schedule(1.0, "keep")
        drop = queue.schedule(0.5, "drop")
        queue.cancel(drop)
        assert len(queue) == 1
        assert queue.next_time() == 1.0
        assert queue.pop() == (1.0, "keep")
        del keep

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        handle = queue.schedule(1.0, "x")
        queue.cancel(handle)
        queue.cancel(handle)
        assert len(queue) == 0
        assert queue.next_time() is None

    def test_unknown_handle_rejected(self):
        queue = EventQueue()
        with pytest.raises(DiskError):
            queue.cancel(7)


class TestEdges:
    def test_empty_queue(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert queue.next_time() is None
        with pytest.raises(DiskError):
            queue.pop()

    def test_negative_time_rejected(self):
        with pytest.raises(DiskError):
            EventQueue().schedule(-0.1, "early")

    def test_zero_time_is_valid(self):
        queue = EventQueue()
        queue.schedule(0.0, "genesis")
        assert queue.pop() == (0.0, "genesis")
