"""Property-based model test for heap files.

Random append/update/delete streams must agree with a dict model keyed
by RID, and a full scan must return exactly the live records in file
order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile


@st.composite
def heap_operations(draw):
    # op, payload-size selector, target selector
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["append", "update", "delete"]),
                st.integers(1, 120),
                st.integers(0, 10_000),
            ),
            max_size=80,
        )
    )


@settings(max_examples=50, deadline=None)
@given(heap_operations())
def test_heap_matches_dict_model(ops):
    disk = SimulatedDisk()
    heap = HeapFile(disk, BufferManager(disk), extent_pages=1)
    model = {}  # rid -> payload
    order = []  # rids in append order
    counter = 0

    for op, size, selector in ops:
        live = [rid for rid in order if rid in model]
        if op == "append":
            payload = bytes([counter % 256]) * size
            counter += 1
            rid = heap.append(payload)
            model[rid] = payload
            order.append(rid)
        elif op == "update" and live:
            rid = live[selector % len(live)]
            payload = bytes([(counter + 1) % 256]) * len(model[rid])
            counter += 1
            heap.update(rid, payload)
            model[rid] = payload
        elif op == "delete" and live:
            rid = live[selector % len(live)]
            heap.delete(rid)
            del model[rid]

    assert len(heap) == len(model)
    for rid, payload in model.items():
        assert heap.fetch(rid) == payload
    scanned = list(heap.scan())
    assert {rid for rid, _ in scanned} == set(model)
    for rid, payload in scanned:
        assert payload == model[rid]
