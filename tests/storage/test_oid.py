"""Tests for OIDs, RIDs, and the OID directory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DuplicateOidError, RecordError, UnknownOidError
from repro.storage.oid import NULL_OID, OID_SIZE, Oid, OidDirectory, Rid


class TestOid:
    def test_encode_length(self):
        assert len(Oid(3, 17).encode()) == OID_SIZE

    def test_roundtrip(self):
        oid = Oid(12, 3456789)
        assert Oid.decode(oid.encode()) == oid

    def test_null_oid(self):
        assert NULL_OID.is_null()
        assert not Oid(1, 1).is_null()

    def test_null_roundtrip(self):
        assert Oid.decode(NULL_OID.encode()).is_null()

    def test_decode_wrong_length(self):
        with pytest.raises(RecordError):
            Oid.decode(b"short")

    def test_encode_out_of_range(self):
        with pytest.raises(RecordError):
            Oid(-1, 0).encode()
        with pytest.raises(RecordError):
            Oid(1 << 20, 0).encode()

    def test_str(self):
        assert str(Oid(2, 5)) == "OID<2:5>"
        assert str(NULL_OID) == "OID<null>"

    def test_is_hashable_and_ordered(self):
        oids = {Oid(1, 1), Oid(1, 2), Oid(1, 1)}
        assert len(oids) == 2
        assert Oid(1, 1) < Oid(1, 2) < Oid(2, 0)

    @given(st.integers(0, 0xFFFF), st.integers(0, 2**64 - 1))
    def test_roundtrip_property(self, type_id, serial):
        oid = Oid(type_id, serial)
        assert Oid.decode(oid.encode()) == oid


class TestRid:
    def test_fields(self):
        rid = Rid(7, 3)
        assert rid.page_id == 7
        assert rid.slot == 3
        assert str(rid) == "RID<7.3>"


class TestOidDirectory:
    def test_register_and_lookup(self):
        directory = OidDirectory()
        directory.register(Oid(1, 1), Rid(5, 0))
        assert directory.lookup(Oid(1, 1)) == Rid(5, 0)
        assert directory.page_of(Oid(1, 1)) == 5

    def test_lookup_unknown(self):
        with pytest.raises(UnknownOidError):
            OidDirectory().lookup(Oid(1, 1))

    def test_get_returns_none_for_unknown(self):
        assert OidDirectory().get(Oid(1, 1)) is None

    def test_duplicate_registration(self):
        directory = OidDirectory()
        directory.register(Oid(1, 1), Rid(5, 0))
        with pytest.raises(DuplicateOidError):
            directory.register(Oid(1, 1), Rid(6, 0))

    def test_cannot_register_null(self):
        with pytest.raises(UnknownOidError):
            OidDirectory().register(NULL_OID, Rid(0, 0))

    def test_contains_len_iter(self):
        directory = OidDirectory()
        for serial in range(4):
            directory.register(Oid(1, serial + 1), Rid(serial, 0))
        assert len(directory) == 4
        assert Oid(1, 2) in directory
        assert Oid(9, 9) not in directory
        assert sorted(directory) == [Oid(1, s + 1) for s in range(4)]
