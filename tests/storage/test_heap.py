"""Tests for heap files."""

import pytest

from repro.errors import BadSlotError, StorageError
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.oid import Rid


@pytest.fixture
def heap():
    disk = SimulatedDisk()
    return HeapFile(disk, BufferManager(disk), extent_pages=2)


class TestAppendFetch:
    def test_append_returns_rid(self, heap):
        rid = heap.append(b"first")
        assert isinstance(rid, Rid)
        assert heap.fetch(rid) == b"first"

    def test_len_counts_records(self, heap):
        for i in range(5):
            heap.append(f"rec-{i}".encode())
        assert len(heap) == 5

    def test_append_spills_to_new_pages(self, heap):
        big = b"x" * 300  # 3 fit per 1 KB page
        rids = [heap.append(big) for _ in range(10)]
        assert len({rid.page_id for rid in rids}) >= 3
        for rid in rids:
            assert heap.fetch(rid) == big

    def test_grows_in_extents(self, heap):
        for _ in range(30):
            heap.append(b"y" * 300)
        assert len(heap.page_ids) >= 4

    def test_empty_record_rejected(self, heap):
        with pytest.raises(StorageError):
            heap.append(b"")

    def test_fetch_foreign_rid(self, heap):
        heap.append(b"a")
        with pytest.raises(BadSlotError):
            heap.fetch(Rid(9999, 0))


class TestUpdateDelete:
    def test_update_in_place(self, heap):
        rid = heap.append(b"aaa")
        heap.update(rid, b"bbb")
        assert heap.fetch(rid) == b"bbb"

    def test_delete(self, heap):
        rid = heap.append(b"gone")
        heap.delete(rid)
        with pytest.raises(BadSlotError):
            heap.fetch(rid)
        assert len(heap) == 0

    def test_delete_foreign_rid(self, heap):
        with pytest.raises(BadSlotError):
            heap.delete(Rid(123, 0))


class TestScan:
    def test_scan_in_file_order(self, heap):
        payloads = [f"record-{i}".encode() for i in range(12)]
        rids = [heap.append(p) for p in payloads]
        scanned = list(heap.scan())
        assert [record for _rid, record in scanned] == payloads
        assert [rid for rid, _record in scanned] == rids

    def test_scan_skips_deleted(self, heap):
        keep = heap.append(b"keep")
        drop = heap.append(b"drop")
        heap.delete(drop)
        assert list(heap.scan()) == [(keep, b"keep")]

    def test_scan_empty(self, heap):
        assert list(heap.scan()) == []

    def test_flush_persists(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk)
        heap = HeapFile(disk, buffer, extent_pages=1)
        rid = heap.append(b"durable")
        heap.flush()
        buffer.drop_clean()
        assert heap.fetch(rid) == b"durable"
