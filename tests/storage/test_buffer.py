"""Tests for the buffer manager: pinning, LRU, replacement stats."""

import pytest

from repro.errors import BufferFullError, PinError
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page


def write_pages(disk, n):
    for page_id in range(n):
        page = Page(page_id)
        page.insert(f"page-{page_id}".encode())
        disk.write(page)


class TestFixUnfix:
    def test_fix_reads_page(self):
        disk = SimulatedDisk()
        write_pages(disk, 1)
        buffer = BufferManager(disk)
        page = buffer.fix(0)
        assert page.read(0) == b"page-0"
        buffer.unfix(0)

    def test_hit_vs_fault(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk)
        buffer.fix(0)
        buffer.fix(0)
        assert buffer.stats.fixes == 2
        assert buffer.stats.faults == 1
        assert buffer.stats.hits == 1
        assert buffer.stats.hit_rate == 0.5

    def test_hit_causes_no_disk_read(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk)
        buffer.fix(5)
        reads = disk.stats.reads
        buffer.fix(5)
        assert disk.stats.reads == reads

    def test_pin_counts(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk)
        buffer.fix(0)
        buffer.fix(0)
        assert buffer.pin_count(0) == 2
        buffer.unfix(0)
        assert buffer.pin_count(0) == 1
        buffer.unfix(0)
        assert buffer.pin_count(0) == 0

    def test_unfix_without_fix(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk)
        with pytest.raises(PinError):
            buffer.unfix(0)

    def test_unfix_more_than_fixed(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk)
        buffer.fix(0)
        buffer.unfix(0)
        with pytest.raises(PinError):
            buffer.unfix(0)

    def test_fixed_context_manager(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk)
        with buffer.fixed(3) as page:
            assert page.page_id == 3
            assert buffer.pin_count(3) == 1
        assert buffer.pin_count(3) == 0

    def test_pinned_pages_counter(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk)
        buffer.fix(0)
        buffer.fix(1)
        buffer.fix(1)
        assert buffer.pinned_pages == 2
        buffer.unfix(1)
        assert buffer.pinned_pages == 2
        buffer.unfix(1)
        assert buffer.pinned_pages == 1
        buffer.unfix(0)
        assert buffer.pinned_pages == 0


class TestReplacement:
    def test_lru_evicts_least_recent(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk, capacity=2)
        buffer.fix(0)
        buffer.unfix(0)
        buffer.fix(1)
        buffer.unfix(1)
        buffer.fix(0)  # touch 0: now 1 is least recent
        buffer.unfix(0)
        buffer.fix(2)  # evicts 1
        buffer.unfix(2)
        assert buffer.is_resident(0)
        assert not buffer.is_resident(1)
        assert buffer.is_resident(2)
        assert buffer.stats.evictions == 1

    def test_pinned_pages_survive_eviction(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk, capacity=2)
        buffer.fix(0)  # pinned
        buffer.fix(1)
        buffer.unfix(1)
        buffer.fix(2)  # must evict 1, not pinned 0
        assert buffer.is_resident(0)
        assert not buffer.is_resident(1)

    def test_all_pinned_raises(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk, capacity=2)
        buffer.fix(0)
        buffer.fix(1)
        with pytest.raises(BufferFullError):
            buffer.fix(2)

    def test_re_read_counted(self):
        """Faults on previously-resident pages are the waste Figure 15
        sharing statistics avoid."""
        disk = SimulatedDisk()
        buffer = BufferManager(disk, capacity=1)
        buffer.fix(0)
        buffer.unfix(0)
        buffer.fix(1)
        buffer.unfix(1)
        buffer.fix(0)  # re-read
        buffer.unfix(0)
        assert buffer.stats.re_reads == 1
        assert buffer.stats.faults == 3

    def test_eviction_writes_back_dirty(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk, capacity=1)
        page = buffer.fix(0)
        page.insert(b"dirty data")
        buffer.unfix(0, dirty=True)
        buffer.fix(1)  # evicts 0, must write it back
        buffer.unfix(1)
        assert disk.read(0).read(0) == b"dirty data"

    def test_capacity_zero_rejected(self):
        with pytest.raises(BufferFullError):
            BufferManager(SimulatedDisk(), capacity=0)


class TestFlush:
    def test_flush_all_writes_dirty(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk)
        page = buffer.fix(4)
        page.insert(b"content")
        buffer.unfix(4, dirty=True)
        buffer.flush_all()
        assert disk.read(4).read(0) == b"content"

    def test_drop_clean_empties_unpinned(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk)
        buffer.fix(0)
        buffer.fix(1)
        buffer.unfix(1)
        buffer.drop_clean()
        assert buffer.is_resident(0)  # pinned stays
        assert not buffer.is_resident(1)

    def test_reset_stats(self):
        disk = SimulatedDisk()
        buffer = BufferManager(disk)
        buffer.fix(0)
        buffer.unfix(0)
        buffer.reset_stats()
        assert buffer.stats.fixes == 0
        # Resident pages do not recount as re-reads after reset.
        buffer.drop_clean()
        buffer.fix(0)
        assert buffer.stats.re_reads == 1
