"""The README's code actually runs.

Extracts every fenced ``python`` block from README.md and executes it,
so documented snippets cannot silently rot.  Ellipsis-bodied loops are
rewritten to ``pass`` (they are illustrative placeholders).
"""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_examples():
    assert python_blocks()


def test_readme_quickstart_executes():
    blocks = python_blocks()
    for block in blocks:
        code = block.replace("\n        ...", "\n        pass")
        namespace = {}
        exec(compile(code, str(README), "exec"), namespace)  # noqa: S102
        # The quickstart ends by printing the metric; the objects it
        # promises must exist and be healthy.
        if "operator" in namespace:
            operator = namespace["operator"]
            assert operator.stats.emitted == 1000
            store = namespace["store"]
            assert store.disk.stats.avg_seek_per_read > 0
            assert store.buffer.pinned_pages == 0
