"""Tests for the bill-of-materials workload (deep recursive templates)."""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering, Unclustered
from repro.core.assembly import Assembly
from repro.errors import ReproError
from repro.objects.model import validate_database
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.bom import (
    MAX_SUBPARTS,
    bom_template,
    generate_bom,
    rolled_up_cost,
)


class TestGenerator:
    def test_structure_validates(self):
        db = generate_bom(10, seed=1)
        validate_database(db.complex_objects, db.shared_pool)
        assert db.n_products == 10
        assert len(db.costs) == 10

    def test_irregular_fanout(self):
        db = generate_bom(20, seed=2)
        sizes = {len(c) for c in db.complex_objects}
        assert len(sizes) > 1  # products differ in part count

    def test_standard_parts_shared(self):
        db = generate_bom(30, catalog_size=5, standard_probability=1.0, seed=3)
        assert len(db.shared_pool) == 5
        linked = set()
        for cobj in db.complex_objects:
            linked.update(cobj.external_refs())
        assert linked and linked <= set(db.shared_pool)

    def test_no_catalog(self):
        db = generate_bom(5, standard_probability=0.0)
        assert db.shared_pool == {}

    def test_depth_respected(self):
        db = generate_bom(10, depth=2, seed=4)
        for cobj in db.complex_objects:
            levels = {obj.ints["level"] for obj in cobj.objects.values()}
            assert max(levels) <= 1

    def test_bad_parameters(self):
        with pytest.raises(ReproError):
            generate_bom(0)
        with pytest.raises(ReproError):
            generate_bom(5, depth=0)
        with pytest.raises(ReproError):
            generate_bom(5, standard_probability=-1)


class TestTemplate:
    def test_recursive_unroll_size(self):
        # Depth 3, fan-out 3: 13 part nodes, each with a standard slot.
        template = bom_template(depth=3)
        assert template.node_count == 26
        assert len(template.shared_labels()) == 13

    def test_depth_one_is_single_part(self):
        template = bom_template(depth=1)
        assert template.node_count == 2  # part + its standard slot

    def test_bad_depth(self):
        with pytest.raises(ReproError):
            bom_template(depth=0)


class TestAssemblyAndCostRollup:
    def run(self, clustering, scheduler="elevator", n=40):
        db = generate_bom(n, seed=6)
        store = ObjectStore(SimulatedDisk())
        policy = (
            InterObjectClustering(cluster_pages=64)
            if clustering == "inter"
            else Unclustered()
        )
        layout = layout_database(
            db.complex_objects, store, policy, shared=db.shared_pool
        )
        op = Assembly(
            ListSource(layout.root_order),
            store,
            bom_template(),
            window_size=8,
            scheduler=scheduler,
        )
        emitted = {c.root_oid: c for c in op.execute()}
        return db, op, emitted

    @pytest.mark.parametrize("clustering", ["inter", "unclustered"])
    def test_costs_match_oracle(self, clustering):
        db, _op, emitted = self.run(clustering)
        for cobj_def, expected in zip(db.complex_objects, db.costs):
            product = emitted[cobj_def.root]
            product.verify_swizzled()
            assert rolled_up_cost(product) == expected

    def test_catalog_loaded_once(self):
        db, op, _emitted = self.run("unclustered")
        from repro.workloads.sharing import measure_sharing

        profile = measure_sharing(db.complex_objects, db.shared_pool)
        assert op.stats.shared_links == profile.duplicate_references

    @pytest.mark.parametrize(
        "scheduler", ["depth-first", "breadth-first", "elevator", "adaptive", "cscan"]
    )
    def test_every_scheduler_handles_recursion(self, scheduler):
        db, _op, emitted = self.run("unclustered", scheduler=scheduler, n=15)
        assert len(emitted) == 15
