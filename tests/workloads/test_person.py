"""Tests for the Person/Residence example workload (paper Section 4)."""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering, Unclustered
from repro.core.assembly import Assembly
from repro.errors import ReproError
from repro.objects.model import validate_database
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.filters import Filter
from repro.volcano.iterator import ListSource
from repro.workloads.person import (
    FATHER_SLOT,
    RESIDENCE_SLOT,
    generate_people,
    lives_close_to_father,
    person_template,
)


class TestGenerator:
    def test_structure(self):
        db = generate_people(10, seed=1)
        assert db.n_people == 10
        validate_database(db.complex_objects, db.shared_pool)

    def test_father_and_residence_wired(self):
        db = generate_people(5, seed=2)
        cobj = db.complex_objects[0]
        child = cobj.objects[cobj.root]
        assert "father" in child.refs
        assert "residence" in child.refs
        father = cobj.objects[child.refs["father"]]
        assert "residence" in father.refs

    def test_shared_residences_occur(self):
        db = generate_people(50, share_residence_probability=1.0, seed=3)
        for cobj in db.complex_objects:
            child = cobj.objects[cobj.root]
            father = cobj.objects[child.refs["father"]]
            assert child.refs["residence"] == father.refs["residence"]
            assert len(cobj) == 3  # child, father, one shared residence

    def test_no_sharing_when_probability_zero(self):
        db = generate_people(20, share_residence_probability=0.0, seed=4)
        assert all(len(c) == 4 for c in db.complex_objects)

    def test_oracle_shape(self):
        db = generate_people(30, seed=5)
        assert len(db.close_to_father) == 30
        assert any(db.close_to_father)

    def test_bad_parameters(self):
        with pytest.raises(ReproError):
            generate_people(0)
        with pytest.raises(ReproError):
            generate_people(5, n_cities=0)
        with pytest.raises(ReproError):
            generate_people(5, share_residence_probability=2.0)
        with pytest.raises(ReproError):
            generate_people(5, orphan_probability=-0.1)

    def test_orphans_have_no_father(self):
        db = generate_people(30, orphan_probability=1.0, seed=8)
        for cobj in db.complex_objects:
            child = cobj.objects[cobj.root]
            assert "father" not in child.refs
            assert len(cobj) == 2  # person + own residence
        assert not any(db.close_to_father)

    def test_mixed_orphans_validate(self):
        db = generate_people(40, orphan_probability=0.4, seed=9)
        validate_database(db.complex_objects, db.shared_pool)
        sizes = {len(c) for c in db.complex_objects}
        assert 2 in sizes  # some orphans
        assert sizes - {2}  # and some with fathers


class TestTemplate:
    def test_recursive_father_edge_unrolled(self):
        template = person_template()
        assert template.node_count == 4
        father = template.root.children[FATHER_SLOT]
        assert father.type_name == "Person"
        assert RESIDENCE_SLOT in father.children

    def test_residences_marked_shared(self):
        template = person_template(share_residences=True)
        assert len(template.shared_labels()) == 2

    def test_unshared_variant(self):
        template = person_template(share_residences=False)
        assert template.shared_labels() == []


class TestQuery:
    def run_query(self, n=60, seed=7, orphan_probability=0.0):
        db = generate_people(
            n, seed=seed, orphan_probability=orphan_probability
        )
        store = ObjectStore(SimulatedDisk())
        layout = layout_database(
            db.complex_objects, store, Unclustered(), shared=db.shared_pool
        )
        plan = Filter(
            Assembly(
                ListSource(layout.root_order),
                store,
                person_template(),
                window_size=10,
                scheduler="elevator",
            ),
            lives_close_to_father,
        )
        return db, plan.execute()

    def test_query_matches_oracle(self):
        db, close = self.run_query()
        person_ids = sorted(c.root.ints[1] for c in close)
        expected = sorted(
            2 * i for i, flag in enumerate(db.close_to_father) if flag
        )
        assert person_ids == expected

    def test_query_with_orphans_matches_oracle(self):
        """Shallow data (null fathers) assembles and filters correctly."""
        db, close = self.run_query(n=80, seed=12, orphan_probability=0.3)
        person_ids = sorted(c.root.ints[1] for c in close)
        expected = sorted(
            2 * i for i, flag in enumerate(db.close_to_father) if flag
        )
        assert person_ids == expected

    def test_assembled_people_fully_swizzled(self):
        _db, close = self.run_query(n=20)
        for cobj in close:
            cobj.verify_swizzled()
            father_home = cobj.root.follow(FATHER_SLOT, RESIDENCE_SLOT)
            own_home = cobj.root.follow(RESIDENCE_SLOT)
            assert father_home.ints[0] == own_home.ints[0]
