"""Tests for the HyperModel-style workload."""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering, Unclustered
from repro.core.assembly import Assembly
from repro.errors import ReproError
from repro.objects.model import validate_database
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.hypermodel import (
    ANNOTATION_SLOT,
    FANOUT,
    generate_hypermodel,
    hypermodel_template,
)


class TestGenerator:
    def test_document_structure(self):
        db = generate_hypermodel(4, levels=3, annotation_probability=0.0)
        assert db.n_documents == 4
        assert db.sections_per_document() == 1 + 5 + 25
        assert all(len(c) == 31 for c in db.complex_objects)

    def test_fanout(self):
        db = generate_hypermodel(2, levels=2, annotation_probability=0.0)
        cobj = db.complex_objects[0]
        root = cobj.objects[cobj.root]
        children = [
            root.refs[f"part{i}"] for i in range(FANOUT)
            if f"part{i}" in root.refs
        ]
        assert len(children) == FANOUT

    def test_validates(self):
        db = generate_hypermodel(5, annotation_probability=0.5)
        validate_database(db.complex_objects, db.shared_pool)

    def test_annotations_shared_across_documents(self):
        db = generate_hypermodel(
            30, annotation_probability=1.0, annotation_pool_size=3, seed=1
        )
        assert len(db.shared_pool) == 3
        linked = set()
        for cobj in db.complex_objects:
            linked.update(cobj.external_refs())
        assert linked <= set(db.shared_pool)
        assert linked  # at least one link landed

    def test_no_annotations_means_no_pool(self):
        db = generate_hypermodel(3, annotation_probability=0.0)
        assert db.shared_pool == {}

    def test_levels_annotated(self):
        db = generate_hypermodel(2, levels=3, annotation_probability=0.0)
        cobj = db.complex_objects[0]
        levels = sorted(
            {obj.ints["level"] for obj in cobj.objects.values()}
        )
        assert levels == [0, 1, 2]

    def test_bad_parameters(self):
        with pytest.raises(ReproError):
            generate_hypermodel(0)
        with pytest.raises(ReproError):
            generate_hypermodel(2, levels=0)
        with pytest.raises(ReproError):
            generate_hypermodel(2, annotation_probability=1.5)


class TestTemplate:
    def test_node_counts(self):
        bare = hypermodel_template(levels=2, with_annotations=False)
        assert bare.node_count == 6  # root + 5 sections
        noted = hypermodel_template(levels=2, with_annotations=True)
        assert noted.node_count == 6 + 5  # one note slot per leaf

    def test_annotation_nodes_shared(self):
        template = hypermodel_template(levels=2)
        assert len(template.shared_labels()) == FANOUT

    def test_bad_levels(self):
        with pytest.raises(ReproError):
            hypermodel_template(levels=0)


class TestAssemblyOverHyperModel:
    @pytest.mark.parametrize("scheduler", ["depth-first", "elevator", "adaptive"])
    def test_full_assembly(self, scheduler):
        db = generate_hypermodel(12, annotation_probability=0.5, seed=5)
        store = ObjectStore(SimulatedDisk())
        layout = layout_database(
            db.complex_objects, store, Unclustered(), shared=db.shared_pool
        )
        op = Assembly(
            ListSource(layout.root_order),
            store,
            hypermodel_template(),
            window_size=4,
            scheduler=scheduler,
        )
        emitted = op.execute()
        assert len(emitted) == 12
        for document in emitted:
            document.verify_swizzled()
        assert store.buffer.pinned_pages == 0

    def test_annotation_links_deduplicated(self):
        db = generate_hypermodel(
            20, annotation_probability=1.0, annotation_pool_size=2, seed=6
        )
        store = ObjectStore(SimulatedDisk())
        layout = layout_database(
            db.complex_objects, store, Unclustered(), shared=db.shared_pool
        )
        op = Assembly(
            ListSource(layout.root_order),
            store,
            hypermodel_template(),
            window_size=8,
            scheduler="elevator",
        )
        op.execute()
        # Two pool objects: at most two annotation fetches, the rest
        # are links.
        total_annotation_refs = op.stats.shared_links + 2
        assert op.stats.shared_links > 0
        assert op.stats.fetches == 20 * 31 + (
            total_annotation_refs - op.stats.shared_links
        )

    def test_inter_object_clustering_by_type(self):
        db = generate_hypermodel(10, annotation_probability=0.3, seed=7)
        store = ObjectStore(SimulatedDisk())
        layout = layout_database(
            db.complex_objects,
            store,
            InterObjectClustering(cluster_pages=64),
            shared=db.shared_pool,
        )
        # Three types -> three cluster extents.
        assert len(layout.extents) == 3
        op = Assembly(
            ListSource(layout.root_order),
            store,
            hypermodel_template(),
            window_size=5,
        )
        assert len(op.execute()) == 10
