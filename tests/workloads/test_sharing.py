"""Tests for the sharing-profile helpers (paper Section 6.4)."""

import pytest

from repro.workloads.acob import generate_acob
from repro.workloads.sharing import (
    expected_fetches_with_sharing,
    expected_fetches_without_sharing,
    measure_sharing,
)


class TestMeasureSharing:
    def test_no_sharing(self):
        db = generate_acob(10)
        profile = measure_sharing(db.complex_objects, db.shared_pool)
        assert profile.sharing_objects == 0
        assert profile.shared_objects == 0
        assert profile.degree == 0.0
        assert profile.duplicate_references == 0

    def test_quarter_sharing(self):
        db = generate_acob(100, sharing=0.25, seed=1)
        profile = measure_sharing(db.complex_objects, db.shared_pool)
        assert profile.sharing_objects == 100  # every object shares
        assert profile.shared_objects <= 25
        assert profile.shared_references == 100
        # Paper's ratio: shared / sharing.
        assert profile.degree == pytest.approx(
            profile.shared_objects / 100
        )

    def test_paper_example_arithmetic(self):
        """'100 objects sharing 5 sub-objects exhibit .05 sharing.'"""
        db = generate_acob(100, sharing=0.05, seed=2)
        profile = measure_sharing(db.complex_objects, db.shared_pool)
        assert len(db.shared_pool) == 5
        assert profile.degree <= 0.05

    def test_duplicate_references(self):
        db = generate_acob(40, sharing=0.1, seed=3)
        profile = measure_sharing(db.complex_objects, db.shared_pool)
        assert (
            profile.duplicate_references
            == profile.shared_references - profile.shared_objects
        )


class TestExpectedFetches:
    def test_with_vs_without(self):
        db = generate_acob(50, sharing=0.2, seed=4)
        with_stats = expected_fetches_with_sharing(
            db.complex_objects, db.shared_pool
        )
        without = expected_fetches_without_sharing(
            db.complex_objects, db.shared_pool
        )
        assert without == 50 * 7  # every reference fetched
        assert with_stats < without

    def test_oracle_matches_assembly(self):
        """The predicted fetch counts are exactly what assembly does."""
        from repro.cluster.layout import layout_database
        from repro.cluster.policies import Unclustered
        from repro.core.assembly import Assembly
        from repro.storage.disk import SimulatedDisk
        from repro.storage.store import ObjectStore
        from repro.volcano.iterator import ListSource
        from repro.workloads.acob import make_template

        db = generate_acob(30, sharing=0.25, seed=5)
        store = ObjectStore(SimulatedDisk())
        layout = layout_database(
            db.complex_objects, store, Unclustered(), shared=db.shared_pool
        )
        op = Assembly(
            ListSource(layout.root_order),
            store,
            make_template(db, sharing=0.25),
            window_size=5,
        )
        op.execute()
        assert op.stats.fetches == expected_fetches_with_sharing(
            db.complex_objects, db.shared_pool
        )
