"""Tests for the ACOB-like benchmark database generator."""

import pytest

from repro.errors import ReproError
from repro.objects.model import validate_database
from repro.workloads.acob import (
    PAYLOAD_RANGE,
    PAYLOAD_SLOT,
    generate_acob,
    make_registry,
    make_template,
    payload_predicate,
)


class TestGeometry:
    def test_three_level_binary_trees(self):
        db = generate_acob(10)
        assert db.positions == 7
        assert all(len(c) == 7 for c in db.complex_objects)
        assert db.total_objects() == 70

    def test_one_type_per_position(self):
        db = generate_acob(5)
        assert len(db.registry) == 7
        for cobj in db.complex_objects:
            types = sorted(oid.type_id for oid in cobj.objects)
            assert types == list(range(1, 8))

    def test_tree_structure(self):
        db = generate_acob(3)
        cobj = db.complex_objects[0]
        root = cobj.objects[cobj.root]
        assert root.ints["position"] == 0
        left = cobj.objects[root.refs["left"]]
        right = cobj.objects[root.refs["right"]]
        assert left.ints["position"] == 1
        assert right.ints["position"] == 2

    def test_levels_recorded(self):
        db = generate_acob(2)
        cobj = db.complex_objects[0]
        by_pos = {o.ints["position"]: o for o in cobj.objects.values()}
        assert by_pos[0].ints["level"] == 0
        assert by_pos[1].ints["level"] == 1
        assert by_pos[6].ints["level"] == 2

    def test_validates(self):
        db = generate_acob(8)
        validate_database(db.complex_objects, db.shared_pool)

    def test_deterministic_by_seed(self):
        a = generate_acob(5, seed=42)
        b = generate_acob(5, seed=42)
        assert a.payloads == b.payloads

    def test_different_seeds_differ(self):
        a = generate_acob(5, seed=1)
        b = generate_acob(5, seed=2)
        assert a.payloads != b.payloads

    def test_two_level_trees(self):
        db = generate_acob(4, levels=2)
        assert all(len(c) == 3 for c in db.complex_objects)

    def test_bad_parameters(self):
        with pytest.raises(ReproError):
            generate_acob(0)
        with pytest.raises(ReproError):
            generate_acob(5, levels=0)
        with pytest.raises(ReproError):
            generate_acob(5, sharing=1.5)


class TestSharing:
    def test_pool_size_tracks_degree(self):
        db = generate_acob(100, sharing=0.05)
        assert len(db.shared_pool) == 5

    def test_shared_position_not_private(self):
        db = generate_acob(20, sharing=0.25)
        for cobj in db.complex_objects:
            assert len(cobj) == 6  # position 6 comes from the pool
            positions = {o.ints["position"] for o in cobj.objects.values()}
            assert 6 not in positions

    def test_references_land_in_pool(self):
        db = generate_acob(20, sharing=0.25)
        pool = set(db.shared_pool)
        for cobj in db.complex_objects:
            external = cobj.external_refs()
            assert len(external) == 1
            assert external[0] in pool

    def test_custom_shared_position(self):
        db = generate_acob(10, sharing=0.2, shared_position=3)
        for cobj in db.complex_objects:
            positions = {o.ints["position"] for o in cobj.objects.values()}
            assert 3 not in positions

    def test_non_leaf_shared_position_rejected(self):
        with pytest.raises(ReproError):
            generate_acob(10, sharing=0.2, shared_position=1)


class TestDiskOrders:
    def test_depth_first_order(self):
        db = generate_acob(2)
        order = db.type_ids_depth_first()
        names = [db.registry.by_id(t).name for t in order]
        assert names == ["T0", "T1", "T3", "T4", "T2", "T5", "T6"]

    def test_breadth_first_order(self):
        db = generate_acob(2)
        names = [db.registry.by_id(t).name for t in db.type_ids_breadth_first()]
        assert names == [f"T{i}" for i in range(7)]


class TestTemplateAndPredicates:
    def test_template_matches_database(self):
        db = generate_acob(3)
        template = make_template(db)
        assert template.node_count == 7

    def test_template_sharing_annotation(self):
        db = generate_acob(3, sharing=0.25)
        template = make_template(db, sharing=0.25)
        node = template.node("n6")
        assert node.shared
        assert node.sharing_degree == 0.25

    def test_template_predicate_annotation(self):
        db = generate_acob(3)
        template = make_template(
            db, predicate_position=2, predicate=payload_predicate(0.3)
        )
        assert template.predicate_count == 1
        assert template.node("n2").predicate is not None

    def test_predicate_position_without_predicate(self):
        db = generate_acob(3)
        with pytest.raises(ReproError):
            make_template(db, predicate_position=2)

    def test_payload_predicate_selectivity_is_true_rate(self):
        """The payload field is uniform, so the predicate's pass rate
        converges on its nominal selectivity."""
        db = generate_acob(2000, seed=13)
        predicate = payload_predicate(0.3)
        passing = sum(
            1 for payloads in db.payloads
            if payloads[1] < 0.3 * PAYLOAD_RANGE
        )
        assert passing / 2000 == pytest.approx(0.3, abs=0.03)
        assert predicate.selectivity == 0.3

    def test_payload_predicate_bounds(self):
        with pytest.raises(ReproError):
            payload_predicate(1.2)

    def test_registry_field_layout(self):
        registry = make_registry()
        t0 = registry.by_name("T0")
        assert t0.int_fields == ("id", "level", "position", "payload")
        assert t0.int_slot("payload") == PAYLOAD_SLOT
        assert t0.ref_slot("left") == 0
        assert t0.ref_slot("right") == 1
