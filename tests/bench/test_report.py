"""Tests for figure results and rendering."""

from repro.bench.report import (
    FigureResult,
    dominates,
    monotone_decreasing,
    render,
    render_all,
    roughly_flat,
)


def make_figure():
    figure = FigureResult(
        figure_id="Figure X",
        title="test figure",
        x_label="size",
        y_label="seek",
    )
    for x, y in ((1, 10.0), (2, 8.0)):
        figure.add_point("alpha", x, y)
        figure.add_point("beta", x, y * 2)
    return figure


class TestFigureResult:
    def test_series_accumulate(self):
        figure = make_figure()
        assert figure.ys("alpha") == [10.0, 8.0]
        assert figure.xs() == [1, 2]

    def test_checks_record_outcomes(self):
        figure = make_figure()
        assert figure.check("passing", True)
        assert not figure.check("failing", False)
        assert figure.violations == ["failing"]
        assert any("ok" in c for c in figure.checks)
        assert any("FAIL" in c for c in figure.checks)


class TestRender:
    def test_contains_series_and_values(self):
        text = render(make_figure())
        assert "Figure X" in text
        assert "alpha" in text and "beta" in text
        assert "10.0" in text and "16.0" in text

    def test_notes_and_checks_rendered(self):
        figure = make_figure()
        figure.notes.append("important caveat")
        figure.check("sanity", True)
        text = render(figure)
        assert "important caveat" in text
        assert "[ok] sanity" in text

    def test_render_all_joins(self):
        text = render_all([make_figure(), make_figure()])
        assert text.count("Figure X") == 2


class TestShapeHelpers:
    def test_monotone_decreasing(self):
        assert monotone_decreasing([5, 4, 3])
        assert not monotone_decreasing([3, 4])
        assert monotone_decreasing([5.0, 5.1], slack=0.05)

    def test_roughly_flat(self):
        assert roughly_flat([100, 101, 99])
        assert not roughly_flat([100, 200])
        assert roughly_flat([])
        assert roughly_flat([0, 0])
        assert not roughly_flat([0, 1])

    def test_dominates(self):
        assert dominates([1, 2], [3, 4])
        assert not dominates([5, 2], [3, 4])
        assert dominates([3.1, 2], [3, 4], margin=1.1)
