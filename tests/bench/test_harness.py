"""Tests for the experiment harness."""

import pytest

from repro.bench.harness import (
    CLUSTERINGS,
    ExperimentConfig,
    clear_database_cache,
    get_database,
    make_policy,
    run_experiment,
    sweep,
)
from repro.errors import ReproError


class TestConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.clustering in CLUSTERINGS

    def test_unknown_clustering_rejected(self):
        with pytest.raises(ReproError):
            ExperimentConfig(clustering="zigzag")

    def test_frozen(self):
        config = ExperimentConfig()
        with pytest.raises(Exception):
            config.window_size = 5


class TestDatabaseCache:
    def test_cache_returns_same_object(self):
        clear_database_cache()
        first = get_database(10, seed=3)
        second = get_database(10, seed=3)
        assert first is second

    def test_cache_distinguishes_parameters(self):
        clear_database_cache()
        assert get_database(10, seed=3) is not get_database(10, sharing=0.1, seed=3)

    def test_clear(self):
        first = get_database(10, seed=3)
        clear_database_cache()
        assert get_database(10, seed=3) is not first


class TestMakePolicy:
    def test_policies_by_name(self):
        db = get_database(10)
        for name in CLUSTERINGS:
            policy = make_policy(
                ExperimentConfig(clustering=name, n_complex_objects=10), db
            )
            assert policy.name == name

    def test_inter_object_uses_df_friendly_order(self):
        db = get_database(10)
        policy = make_policy(
            ExperimentConfig(clustering="inter-object", n_complex_objects=10), db
        )
        assert policy._disk_order == db.type_ids_depth_first()


class TestRunExperiment:
    def test_small_run_metrics(self):
        result = run_experiment(
            ExperimentConfig(
                n_complex_objects=20,
                clustering="unclustered",
                scheduler="elevator",
                window_size=4,
            )
        )
        assert result.emitted == 20
        assert result.aborted == 0
        assert result.fetches == 140
        assert result.reads > 0
        assert result.avg_seek > 0
        assert result.re_reads == 0  # unbounded buffer

    def test_selectivity_run(self):
        result = run_experiment(
            ExperimentConfig(
                n_complex_objects=50,
                clustering="unclustered",
                window_size=4,
                selectivity=0.5,
                cluster_pages=16,
            )
        )
        assert result.emitted + result.aborted == 50
        assert 0 < result.emitted < 50

    def test_as_row(self):
        result = run_experiment(
            ExperimentConfig(n_complex_objects=10, clustering="unclustered")
        )
        row = result.as_row()
        assert row["db"] == 10
        assert row["emitted"] == 10

    def test_runs_are_independent(self):
        config = ExperimentConfig(
            n_complex_objects=15, clustering="unclustered", window_size=3
        )
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.avg_seek == second.avg_seek
        assert first.reads == second.reads


class TestSweep:
    def test_cartesian_product(self):
        base = ExperimentConfig(
            n_complex_objects=10, clustering="unclustered", cluster_pages=8
        )
        results = sweep(
            base,
            scheduler=["depth-first", "elevator"],
            window_size=[1, 4],
        )
        assert len(results) == 4
        combos = {
            (r.config.scheduler, r.config.window_size) for r in results
        }
        assert combos == {
            ("depth-first", 1), ("depth-first", 4),
            ("elevator", 1), ("elevator", 4),
        }
