"""Tests for the perf figure family (raw simulator throughput).

The family is wall-clock, so these tests assert structure and gating
logic, never absolute speed: the smoke mix completes with positive
throughput, the figure carries both series and passes its own sanity
checks, and the ``perf_floor`` gate trips exactly when a workload's
pages/sec lands below its archived floor.
"""

import json

import pytest

from repro.bench.figures import ALL_FIGURES, DESCRIPTIONS
from repro.bench.perf import (
    SCALES,
    WORKLOADS,
    PerfSample,
    check_floor,
    figure_perf,
    run_perf_mix,
)


@pytest.fixture(scope="module")
def smoke_samples():
    """One timed pass of the smoke mix, shared across the module."""
    return run_perf_mix(scale="smoke", repeats=1)


class TestRunPerfMix:
    def test_covers_every_workload_in_order(self, smoke_samples):
        assert tuple(s.workload for s in smoke_samples) == WORKLOADS

    def test_every_sample_is_positive(self, smoke_samples):
        for sample in smoke_samples:
            assert sample.pages > 0
            assert sample.ops > 0
            assert sample.seconds > 0
            assert sample.pages_per_sec > 0
            assert sample.ops_per_sec > 0

    def test_throughput_is_consistent_with_counts(self, smoke_samples):
        for sample in smoke_samples:
            assert sample.pages_per_sec == pytest.approx(
                sample.pages / sample.seconds, rel=0.01
            )
            assert sample.ops_per_sec == pytest.approx(
                sample.ops / sample.seconds, rel=0.01
            )

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            run_perf_mix(scale="galactic")

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError):
            run_perf_mix(scale="smoke", repeats=0)

    def test_scales_define_every_workload(self):
        for scale, params in SCALES.items():
            assert set(params) == set(WORKLOADS), scale


class TestFigurePerf:
    def test_smoke_figure_shape(self):
        figure = figure_perf(scale="smoke", repeats=1)
        assert figure.figure_id == "Perf P-1"
        assert set(figure.series) == {
            "pages per second",
            "ops per second",
        }
        for name in figure.series:
            xs = [x for x, _ in figure.series[name]]
            assert xs == list(range(len(WORKLOADS)))
            assert all(y > 0 for _, y in figure.series[name])
        assert not figure.violations


class TestRegistry:
    def test_perf_is_registered(self):
        assert "perf" in ALL_FIGURES

    def test_every_registered_figure_is_described(self):
        missing = set(ALL_FIGURES) - set(DESCRIPTIONS)
        assert not missing, f"figures without --list descriptions: {missing}"


def make_sample(workload, pages_per_sec):
    """A synthetic sample for floor-gate tests."""
    return PerfSample(
        workload=workload,
        pages=1000,
        ops=100,
        seconds=1.0,
        pages_per_sec=pages_per_sec,
        ops_per_sec=100.0,
    )


def write_baseline(tmp_path, document):
    """Archive ``document`` as a baseline JSON and return its path."""
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(document))
    return path


class TestCheckFloor:
    def test_above_floor_passes(self, tmp_path):
        path = write_baseline(
            tmp_path,
            {
                "perf_floor": {
                    "scale": "smoke",
                    "pages_per_sec": {"plain": 500.0},
                }
            },
        )
        ok, messages = check_floor(
            [make_sample("plain", 900.0)], path, "smoke"
        )
        assert ok
        assert any("ok" in message for message in messages)

    def test_below_floor_fails(self, tmp_path):
        path = write_baseline(
            tmp_path,
            {
                "perf_floor": {
                    "scale": "smoke",
                    "pages_per_sec": {"plain": 500.0},
                }
            },
        )
        ok, messages = check_floor(
            [make_sample("plain", 100.0)], path, "smoke"
        )
        assert not ok
        assert any("BELOW FLOOR" in message for message in messages)

    def test_missing_floor_passes_with_message(self, tmp_path):
        path = write_baseline(tmp_path, {"figures": []})
        ok, messages = check_floor(
            [make_sample("plain", 1.0)], path, "smoke"
        )
        assert ok
        assert any("no perf_floor" in message for message in messages)

    def test_scale_mismatch_passes_with_message(self, tmp_path):
        path = write_baseline(
            tmp_path,
            {
                "perf_floor": {
                    "scale": "full",
                    "pages_per_sec": {"plain": 500.0},
                }
            },
        )
        ok, messages = check_floor(
            [make_sample("plain", 1.0)], path, "smoke"
        )
        assert ok
        assert any("floor not enforced" in message for message in messages)

    def test_floored_workload_missing_from_run_fails(self, tmp_path):
        path = write_baseline(
            tmp_path,
            {
                "perf_floor": {
                    "scale": "smoke",
                    "pages_per_sec": {"batch": 500.0},
                }
            },
        )
        ok, messages = check_floor(
            [make_sample("plain", 900.0)], path, "smoke"
        )
        assert not ok
        assert any("not run" in message for message in messages)


class TestArchivedBaselineHygiene:
    """The repo's archived baseline must keep perf out of the gate."""

    @staticmethod
    def load_archived_baseline():
        """The committed results/ci_baseline.json document."""
        from pathlib import Path

        path = (
            Path(__file__).resolve().parents[2]
            / "results"
            / "ci_baseline.json"
        )
        return json.loads(path.read_text())

    def test_ci_baseline_has_a_smoke_perf_floor(self):
        floor = self.load_archived_baseline()["perf_floor"]
        assert floor["scale"] == "smoke"
        assert set(floor["pages_per_sec"]) == set(WORKLOADS)
        assert all(v > 0 for v in floor["pages_per_sec"].values())

    def test_perf_figure_not_in_bit_identity_baseline(self):
        document = self.load_archived_baseline()
        figure_ids = {f["figure_id"] for f in document["figures"]}
        assert "Perf P-1" not in figure_ids
