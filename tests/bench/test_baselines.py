"""Tests for the Section 2 TID-scan baseline driver."""

from repro.bench.baselines import baseline_tid_scan, flat_template


class TestFlatTemplate:
    def test_single_node(self):
        template = flat_template()
        assert template.node_count == 1
        assert template.max_depth == 0
        assert not template.has_predicates()


class TestSpectrum:
    def test_small_scale_shape(self):
        figure = baseline_tid_scan(db_size=300, windows=(1, 10, 50))
        assert not figure.violations
        assert set(figure.series) == {
            "assembly (elevator)",
            "naive TID scan",
            "fully sorted TID scan",
        }
        assembly = figure.ys("assembly (elevator)")
        naive = figure.ys("naive TID scan")[0]
        full_sort = figure.ys("fully sorted TID scan")[0]
        assert full_sort < assembly[-1] < naive


class TestStreaming:
    def test_assembly_streams_sorted_scan_materializes(self):
        """'A pointer join would require at least one input to be
        completely scanned before producing a single result.  Assembly
        can touch a number of objects ranging from only those needed
        for one complex object up to the entire window.' (Section 4)"""
        from repro.bench.harness import ExperimentConfig, build_layout
        from repro.core.assembly import Assembly
        from repro.volcano.iterator import ListSource
        from repro.volcano.scan import TidScan

        config = ExperimentConfig(
            n_complex_objects=200, clustering="unclustered", window_size=1
        )

        # Sorted TID scan: all 200 pointers fetched... no — sorted scan
        # fetches lazily but must *materialize and sort* every pointer
        # before the first fetch.  Assembly reads at most its window.
        _db, layout = build_layout(config)
        operator = Assembly(
            ListSource(layout.root_order),
            layout.store,
            flat_template(),
            window_size=10,
            scheduler="elevator",
        )
        operator.open()
        first = operator.next()
        assert first is not None
        # Only up to one window of objects was fetched for one result.
        assert operator.stats.fetches <= 10
        assert layout.store.disk.stats.reads <= 10
        operator.close()

        _db, layout = build_layout(config)
        scan = TidScan(
            ListSource(layout.root_order), layout.store, order="sorted"
        )
        scan.open()
        scan.next()
        # The sorted scan consumed its entire input before result one.
        assert scan._pending is not None
        assert len(scan._pending) == 200
        scan.close()
