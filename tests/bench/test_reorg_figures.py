"""The G-figure family: run once at CI scale, assert every claim.

Unlike the R/F families there is no reduced-scale variant here — the
reorganization win is a workload property (hot footprints must exceed
the buffer) and the full driver runs in a few seconds — so the tests
share one run of the exact configuration the CI baseline archives.
"""

import pytest

from repro.bench.figures import ALL_FIGURES, DESCRIPTIONS
from repro.bench.reorg import _make_schedule, _zipf_weights, figure_reorg
from repro.storage.oid import Oid


@pytest.fixture(scope="module")
def figures():
    return figure_reorg()


class TestFigureReorg:
    def test_ids_and_no_violations(self, figures):
        assert [f.figure_id for f in figures] == [
            "Figure G-1",
            "Figure G-2",
            "Figure G-3",
        ]
        for figure in figures:
            assert figure.violations == [], (
                f"{figure.figure_id}: {figure.violations}"
            )

    def test_g1_reorg_beats_every_static_total(self, figures):
        g1 = figures[0]
        reorg_total = sum(g1.ys("intra-object + reorg"))
        for clustering in ("unclustered", "inter-object", "intra-object"):
            assert reorg_total < sum(g1.ys(clustering))

    def test_g2_migrations_spike_at_the_shift(self, figures):
        g2 = figures[1]
        migrations = g2.ys("objects migrated")
        # Phases are 1-indexed; the shift lands after phase 3, so the
        # second half must re-cluster: migrations happen there too.
        assert sum(migrations[:3]) > 0
        assert sum(migrations[3:]) > 0

    def test_g3_anchor_series_coincide(self, figures):
        g3 = figures[2]
        assert g3.ys("reorg_policy=None") == g3.ys("no reorg kwarg")

    def test_registered_in_the_figure_catalog(self):
        assert "reorg" in ALL_FIGURES
        assert "reorg" in DESCRIPTIONS


class TestScheduleGenerator:
    def test_zipf_weights_are_monotone(self):
        weights = _zipf_weights(5)
        assert weights == sorted(weights, reverse=True)

    def test_schedule_shifts_to_a_disjoint_hot_set(self):
        roots = [Oid(1, serial) for serial in range(1, 41)]
        schedule = _make_schedule(
            roots,
            phases=4,
            shift_phase=2,
            n_groups=2,
            group_size=10,
            queries_per_phase=6,
            seed=9,
        )
        assert len(schedule) == 4
        before = {
            oid for phase in schedule[:2] for query in phase for oid in query
        }
        after = {
            oid for phase in schedule[2:] for query in phase for oid in query
        }
        assert before.isdisjoint(after)

    def test_schedule_is_deterministic(self):
        roots = [Oid(1, serial) for serial in range(1, 41)]
        args = dict(
            phases=3,
            shift_phase=2,
            n_groups=2,
            group_size=8,
            queries_per_phase=5,
            seed=4,
        )
        assert _make_schedule(roots, **args) == _make_schedule(roots, **args)

    def test_too_small_database_is_rejected(self):
        with pytest.raises(ValueError):
            _make_schedule(
                [Oid(1, 1)],
                phases=2,
                shift_phase=1,
                n_groups=2,
                group_size=10,
                queries_per_phase=4,
                seed=0,
            )
