"""Tests for benchmark regression comparison."""

from repro.bench.export import figure_to_dict, write_json
from repro.bench.regression import (
    compare_documents,
    compare_files,
    timing_deltas,
)
from repro.bench.report import FigureResult


def make_document(y=43.4, violation=False, figure_id="Figure 13A"):
    figure = FigureResult(
        figure_id=figure_id,
        title="demo",
        x_label="complex objects",
        y_label="avg seek",
    )
    figure.add_point("elevator", 1000, y)
    figure.add_point("depth-first", 1000, 1127.5)
    figure.check("elevator smallest", not violation)
    return {"figures": [figure_to_dict(figure)], "violations_total": 0}


class TestCompare:
    def test_identical_runs_are_clean(self):
        report = compare_documents(make_document(), make_document())
        assert report.clean
        assert "no regressions" in report.describe()

    def test_small_drift_within_tolerance(self):
        report = compare_documents(
            make_document(y=43.4), make_document(y=44.0), tolerance=0.05
        )
        assert report.clean

    def test_large_drift_flagged(self):
        report = compare_documents(
            make_document(y=43.4), make_document(y=95.0), tolerance=0.05
        )
        assert not report.clean
        assert any("elevator" in p for p in report.drifted_points)
        assert "43.4 -> 95.0" in report.describe()

    def test_regressed_check_flagged(self):
        report = compare_documents(
            make_document(violation=False), make_document(violation=True)
        )
        assert report.regressed_checks == [
            "Figure 13A: elevator smallest"
        ]

    def test_missing_and_new_figures(self):
        report = compare_documents(
            make_document(figure_id="Figure 11A"),
            make_document(figure_id="Figure 13A"),
        )
        assert report.missing_figures == ["Figure 11A"]
        assert report.new_figures == ["Figure 13A"]

    def test_missing_series(self):
        current = make_document()
        del current["figures"][0]["series"]["depth-first"]
        report = compare_documents(make_document(), current)
        assert report.missing_series == ["Figure 13A / depth-first"]

    def test_missing_point(self):
        current = make_document()
        current["figures"][0]["series"]["elevator"] = [[2000, 71.4]]
        report = compare_documents(make_document(), current)
        assert any("point removed" in p for p in report.drifted_points)


class TestFiles:
    def test_compare_files_roundtrip(self, tmp_path):
        figure = FigureResult(
            figure_id="F", title="t", x_label="x", y_label="y"
        )
        figure.add_point("s", 1, 2.0)
        base = write_json([figure], tmp_path / "base.json")
        figure.series["s"][0] = (1, 4.0)
        curr = write_json([figure], tmp_path / "curr.json")
        report = compare_files(base, curr)
        assert not report.clean


class TestTimingDeltas:
    """Warn-only wall-clock drift lines; never part of the gate."""

    def test_stable_timings_produce_no_lines(self):
        base = {"timings": {"fig": 10.0, "total": 12.0}}
        assert timing_deltas(base, base) == []

    def test_large_drift_is_reported_both_directions(self):
        base = {"timings": {"slow": 10.0, "fast": 10.0}}
        curr = {"timings": {"slow": 20.0, "fast": 5.0}}
        lines = timing_deltas(base, curr)
        assert any("slow" in line and "+100%" in line for line in lines)
        assert any("fast" in line and "-50%" in line for line in lines)

    def test_small_drift_stays_silent(self):
        base = {"timings": {"fig": 10.0}}
        curr = {"timings": {"fig": 11.0}}
        assert timing_deltas(base, curr) == []

    def test_missing_timings_are_tolerated(self):
        assert timing_deltas({}, {"timings": {"fig": 1.0}}) == []
        assert timing_deltas({"timings": {"fig": 1.0}}, {}) == []

    def test_zero_baseline_skipped(self):
        base = {"timings": {"fig": 0.0}}
        curr = {"timings": {"fig": 9.0}}
        assert timing_deltas(base, curr) == []

    def test_drift_never_dirties_the_report(self):
        """Doubling every timing leaves the bit-identity gate clean."""
        base = make_document()
        base["timings"] = {"fig": 10.0}
        curr = make_document()
        curr["timings"] = {"fig": 20.0}
        assert compare_documents(base, curr).clean


class TestEndToEnd:
    def test_rerun_of_deterministic_figure_is_clean(self, tmp_path):
        from repro.bench.figures import ablation_scheduler_overhead

        first = ablation_scheduler_overhead(db_size=60, window=6)
        second = ablation_scheduler_overhead(db_size=60, window=6)
        report = compare_documents(
            {"figures": [figure_to_dict(first)]},
            {"figures": [figure_to_dict(second)]},
        )
        assert report.clean
