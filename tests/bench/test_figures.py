"""Reduced-scale runs of every figure driver.

These use small databases so the whole suite stays fast; the full-scale
shape checks run in ``benchmarks/``.  At this scale we assert the series
exist, cover the right axes, and that scale-independent checks (exact
accounting oracles) hold.
"""

import pytest

from repro.bench.figures import (
    ablation_adaptive_scheduler,
    ablation_buffer_capacity,
    ablation_cost_model,
    ablation_hypermodel_generality,
    ablation_multi_device,
    ablation_parallel_contention,
    ablation_scheduler_overhead,
    ablation_sharing_degree,
    ablation_window_tuning,
    buffer_pin_bound,
    depth_first_window_invariance,
    figure_11,
    figure_13,
    figure_14,
    figure_15,
    figure_16,
)

SMALL_SIZES = (100, 200)


class TestFigure11:
    def test_series_and_panels(self):
        panels = figure_11(db_sizes=SMALL_SIZES)
        assert [p.figure_id for p in panels] == [
            "Figure 11A", "Figure 11B", "Figure 11C",
        ]
        for panel in panels:
            assert set(panel.series) == {
                "breadth-first", "depth-first", "elevator",
            }
            assert panel.xs() == list(SMALL_SIZES)

    def test_panel_a_flat_and_bf_worst_even_small(self):
        panel_a = figure_11(db_sizes=SMALL_SIZES)[0]
        assert not panel_a.violations


class TestFigure13:
    def test_elevator_wins_even_small(self):
        panels = figure_13(db_sizes=SMALL_SIZES)
        for panel in panels:
            assert not panel.violations

    def test_df_window_invariance(self):
        figure = depth_first_window_invariance(db_size=80, windows=(1, 8, 20))
        assert not figure.violations


class TestFigure14:
    def test_monotone_at_small_scale(self):
        figure = figure_14(windows=(1, 10, 25), db_size=300)
        assert not figure.violations


class TestBufferBound:
    def test_bound_holds(self):
        figure = buffer_pin_bound(windows=(1, 4, 8), db_size=120)
        assert not figure.violations
        measured = figure.series["peak pinned (measured)"]
        bound = figure.series["paper bound 6(W-1)+7"]
        assert all(m[1] <= b[1] for m, b in zip(measured, bound))


class TestFigure15:
    def test_sharing_figure(self):
        figure = figure_15(
            db_sizes=(150, 300), buffer_capacity=64, large_window=8
        )
        assert set(figure.series) == {
            "depth-first", "elevator window=1", "elevator window=8",
        }
        assert not figure.violations
        assert figure.notes  # the read-reduction note

    def test_buffer_smaller_than_window_rejected(self):
        with pytest.raises(ValueError):
            figure_15(db_sizes=(100,), buffer_capacity=96, large_window=50)


class TestFigure16:
    def test_predicate_figure(self):
        figure = figure_16(selectivities=(0.2, 0.6), db_size=200)
        # Exact accounting oracles hold at any scale.
        assert "rejected objects cost exactly the predicate-path fetches" not in figure.violations
        assert "emitted counts track predicate selectivity" not in figure.violations


class TestAblations:
    def test_scheduler_overhead(self):
        figure = ablation_scheduler_overhead(db_size=100, window=10)
        assert not figure.violations

    def test_sharing_degree(self):
        figure = ablation_sharing_degree(degrees=(0.1, 0.25), db_size=100)
        assert not figure.violations

    def test_buffer_capacity(self):
        # Capacities must clear window 50's pin bound (6*49 + 7 = 301).
        figure = ablation_buffer_capacity(
            capacities=(None, 512, 320), db_size=150
        )
        assert set(figure.series) == {"total reads", "re-reads"}
        assert not figure.violations
        re_reads = dict(figure.series["re-reads"])
        assert re_reads[0] == 0  # unbounded buffer never re-reads
        assert re_reads[320] >= re_reads[512]

    def test_adaptive_scheduler(self):
        figure = ablation_adaptive_scheduler(
            db_size=150, selectivities=(0.1, 0.5)
        )
        assert set(figure.series) == {"elevator", "adaptive"}
        assert not figure.violations

    def test_parallel_contention(self):
        figure = ablation_parallel_contention(
            db_size=150, partition_counts=(1, 4), window=16
        )
        assert set(figure.series) == {"independent queues", "device server"}
        assert figure.xs() == [1, 4]
        assert not figure.violations

    def test_window_tuning(self):
        figure = ablation_window_tuning(buffer_capacity=64, db_size=150)
        assert not figure.violations
        # Ceiling for 64 frames is window 10, so probes stop at 10.
        assert max(figure.xs()) <= 10
        assert figure.notes

    def test_multi_device(self):
        figure = ablation_multi_device(
            device_counts=(1, 2, 4), db_size=120, window_per_device=8
        )
        assert set(figure.series) == {
            "critical path (max device)", "aggregate (sum devices)",
        }
        assert not figure.violations

    def test_hypermodel_generality(self):
        figure = ablation_hypermodel_generality(
            n_documents=60, windows=(1, 10, 25)
        )
        assert set(figure.series) == {"depth-first", "elevator"}
        # The sharing-accounting oracle is exact at any scale.
        assert not figure.violations

    def test_cost_model(self):
        figure = ablation_cost_model(db_size=150, windows=(1, 16))
        assert set(figure.series) == {"depth-first", "elevator"}
        assert not figure.violations
        assert figure.notes  # the seek-vs-service-time ratio note
