"""The E-figure family at reduced scale: shapes must already hold."""

from repro.bench.elapsed import figure_elapsed


class TestFigureElapsed:
    def run(self):
        return figure_elapsed(
            db_size=80, window_per_device=8, cluster_pages=64
        )

    def test_no_violations_at_small_scale(self):
        figures = self.run()
        assert [f.figure_id for f in figures] == [
            "Figure E-1",
            "Figure E-2",
            "Figure E-3",
        ]
        for figure in figures:
            assert figure.violations == [], figure.figure_id

    def test_e1_series_shapes(self):
        e1 = self.run()[0]
        elapsed = e1.ys("pipelined elapsed (ms)")
        summed = e1.ys("synchronous sum of device service (ms)")
        assert len(elapsed) == len(summed) == 3
        # One device: no overlap possible.
        assert elapsed[0] == summed[0]
        # Four devices: elapsed is a fraction of the synchronous sum.
        assert elapsed[-1] < summed[-1]

    def test_e3_utilizations_are_fractions(self):
        e3 = self.run()[2]
        for _device, utilization in e3.series["utilization"]:
            assert 0.0 < utilization <= 1.0 + 1e-9
