"""The F-figure family at reduced scale: shapes must already hold."""

from __future__ import annotations

import math

from repro.bench.fabric import (
    KNEE_FACTOR,
    _knee,
    figure_fabric,
)
from repro.bench.figures import ALL_FIGURES, DESCRIPTIONS


class TestFigureFabric:
    def run(self):
        return figure_fabric(
            db_size=48, requests_per_point=28, calibration_requests=12
        )

    def test_no_violations_at_small_scale(self):
        figures = self.run()
        assert [f.figure_id for f in figures] == [
            "Fabric F-1",
            "Fabric F-2",
            "Fabric F-3",
        ]
        for figure in figures:
            assert figure.violations == [], (
                f"{figure.figure_id}: {figure.violations}"
            )

    def test_f1_has_one_series_per_shard_count(self):
        f1 = self.run()[0]
        assert set(f1.series) == {"1 shard(s)", "2 shard(s)", "4 shard(s)"}
        for name in f1.series:
            assert all(y > 0 for y in f1.ys(name))

    def test_f2_percentiles_are_nondecreasing(self):
        f2 = self.run()[1]
        for name in ("hedged", "unhedged"):
            ys = f2.ys(name)
            assert ys == sorted(ys)

    def test_f3_fractions_are_fractions(self):
        f3 = self.run()[2]
        for _rho, fraction in f3.series["shed fraction"]:
            assert 0.0 <= fraction <= 1.0


class TestKneeDetection:
    def test_knee_is_the_first_blowup(self):
        rhos = (0.5, 1.0, 2.0)
        assert _knee(rhos, [10.0, 20.0, 10.0 * KNEE_FACTOR + 1]) == 2.0
        assert _knee(rhos, [10.0, 11.0, 12.0]) == math.inf
        assert _knee(rhos, [10.0, 10.0 * KNEE_FACTOR + 1, 1.0]) == 1.0


class TestRegistry:
    def test_fabric_is_registered(self):
        assert "fabric" in ALL_FIGURES

    def test_every_registered_figure_is_described(self):
        missing = set(ALL_FIGURES) - set(DESCRIPTIONS)
        assert not missing, f"figures without --list descriptions: {missing}"
