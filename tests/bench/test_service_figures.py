"""Reduced-scale runs of the service figures and the regression CLI.

The full-scale checks run in ``benchmarks/bench_service.py``; at this
scale we still assert the two acceptance claims — the device server
beating naive per-client assembly on seek distance at >= 4 concurrent
clients, and the result cache cutting repeat-round page faults by at
least 90% — because both are scale-independent on the deterministic
simulated disk.
"""

import json

from repro.bench.export import write_json
from repro.bench.figures import ALL_FIGURES
from repro.bench.regression import main as regression_main
from repro.bench.service import figure_service_cache, figure_service_scaling


def small_scaling():
    return figure_service_scaling(
        db_size=300,
        client_counts=(1, 2, 4),
        requests_per_client=2,
        roots_per_request=12,
    )


class TestScalingFigures:
    def test_device_server_beats_naive_at_four_clients(self):
        seek, throughput, latency = small_scaling()
        assert seek.figure_id == "Service S-1"
        assert not seek.violations
        naive = dict(seek.series["naive per-client"])
        server = dict(seek.series["device server"])
        assert server[4] < naive[4]

    def test_throughput_and_latency_shapes(self):
        _seek, throughput, latency = small_scaling()
        assert not throughput.violations
        assert not latency.violations
        assert set(latency.series) == {
            "naive per-client p50", "naive per-client p95",
            "device server p50", "device server p95",
        }
        # The service-clock percentiles ride along as notes.
        assert any("service ticks" in note for note in latency.notes)


class TestCacheFigure:
    def test_cache_cuts_repeat_faults_by_90_percent(self):
        figure = figure_service_cache(
            db_size=200, hot_roots=20, rounds=3, buffer_capacity=64
        )
        assert not figure.violations
        with_cache = figure.ys("with cache")
        no_cache = figure.ys("no cache")
        assert with_cache[0] == no_cache[0]  # identical warm round
        assert sum(with_cache[1:]) <= 0.10 * sum(no_cache[1:])


class TestRegistration:
    def test_service_figures_registered_for_the_cli(self):
        assert "service" in ALL_FIGURES


class TestRegressionCLI:
    def test_clean_and_regressed_exit_codes(self, tmp_path, capsys):
        figures = [figure_service_cache(
            db_size=120, hot_roots=10, rounds=2, buffer_capacity=64
        )]
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        write_json(figures, baseline)
        write_json(figures, current)
        assert regression_main([str(baseline), str(current)]) == 0
        assert "no regressions" in capsys.readouterr().out

        drifted = json.loads(current.read_text())
        drifted["figures"][0]["series"]["no cache"][0][1] *= 2
        current.write_text(json.dumps(drifted))
        assert regression_main([str(baseline), str(current)]) == 1
        assert "drifted" in capsys.readouterr().out
