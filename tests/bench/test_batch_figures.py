"""Figures B-1..B-3 hold their shape checks at reduced scale."""

from repro.bench.batch import BATCH_SIZES, CLUSTERING_ORDER, figure_batch
from repro.bench.figures import ALL_FIGURES


class TestFigureBatch:
    def test_checks_hold_at_small_scale(self):
        figures = figure_batch(db_size=300)
        assert [f.figure_id for f in figures] == [
            "Figure B-1",
            "Figure B-2",
            "Figure B-3",
        ]
        for figure in figures:
            assert not figure.violations

    def test_series_cover_grid(self):
        b1, b2, b3 = figure_batch(db_size=120, batch_sizes=(1, 2))
        for figure in (b1, b2):
            assert set(figure.series) == set(CLUSTERING_ORDER)
            for name in figure.series:
                assert figure.xs() == [1, 2]
        assert set(b3.series) == {
            "owner-indexed pool",
            "legacy list pool (unbatched)",
        }

    def test_registered_in_cli(self):
        assert ALL_FIGURES["batch"] is figure_batch
        assert BATCH_SIZES[0] == 1  # the unbatched reference point
