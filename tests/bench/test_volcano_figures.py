"""The V-figure family at reduced scale: shapes must already hold."""

from __future__ import annotations

import pytest

from repro.bench.figures import ALL_FIGURES, DESCRIPTIONS
from repro.bench.volcano import figure_volcano


@pytest.fixture(scope="module")
def figures():
    return figure_volcano(db_size=72, cluster_pages=32)


class TestFigureVolcano:
    def test_no_violations_at_small_scale(self, figures):
        assert [f.figure_id for f in figures] == [
            "Volcano V-1",
            "Volcano V-2",
            "Volcano V-3",
        ]
        for figure in figures:
            assert figure.violations == [], (
                f"{figure.figure_id}: {figure.violations}"
            )

    def test_v1_composition_is_free(self, figures):
        v1 = figures[0]
        assert v1.ys("filter+project plan (ms)") == v1.ys("bare driver (ms)")

    def test_v2_pushdown_never_costs_more(self, figures):
        v2 = figures[1]
        above = v2.ys("filter above (ms)")
        pushed = v2.ys("pushed into template (ms)")
        assert all(p <= a + 1e-9 for p, a in zip(pushed, above))
        assert pushed[0] < above[0]  # strictly cheaper when selective

    def test_v3_elapsed_falls_with_partitions(self, figures):
        v3 = figures[2]
        elapsed = v3.ys("max shard service (ms)")
        assert elapsed == sorted(elapsed, reverse=True)
        assert elapsed[0] > elapsed[-1]


class TestRegistry:
    def test_volcano_is_registered(self):
        assert "volcano" in ALL_FIGURES

    def test_volcano_is_described(self):
        assert "volcano" in DESCRIPTIONS
