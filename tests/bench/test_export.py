"""Tests for CSV/JSON export of figure results."""

import csv
import io

from repro.bench.export import (
    figure_to_csv,
    figure_to_dict,
    figure_to_rows,
    load_json,
    write_csv,
    write_json,
)
from repro.bench.report import FigureResult


def make_figure(figure_id="Figure 11A"):
    figure = FigureResult(
        figure_id=figure_id,
        title="demo",
        x_label="complex objects",
        y_label="avg seek",
    )
    figure.add_point("elevator", 1000, 43.4)
    figure.add_point("elevator", 2000, 71.4)
    figure.add_point("depth-first", 1000, 1127.5)
    figure.notes.append("a note")
    figure.check("a passing check", True)
    figure.check("a failing check", False)
    return figure


class TestRowsAndCsv:
    def test_rows_flatten_points(self):
        rows = figure_to_rows(make_figure())
        assert len(rows) == 3
        assert rows[0] == {
            "figure": "Figure 11A",
            "series": "elevator",
            "x": 1000,
            "y": 43.4,
            "x_label": "complex objects",
            "y_label": "avg seek",
        }

    def test_csv_parses_back(self):
        text = figure_to_csv(make_figure())
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 3
        assert parsed[2]["series"] == "depth-first"
        assert float(parsed[2]["y"]) == 1127.5


class TestJson:
    def test_dict_shape(self):
        document = figure_to_dict(make_figure())
        assert document["figure_id"] == "Figure 11A"
        assert document["series"]["elevator"] == [[1000, 43.4], [2000, 71.4]]
        assert document["violations"] == ["a failing check"]
        assert len(document["checks"]) == 2

    def test_write_and_load_roundtrip(self, tmp_path):
        figures = [make_figure("Figure 11A"), make_figure("Figure 13B")]
        path = write_json(figures, tmp_path / "out" / "results.json")
        loaded = load_json(path)
        assert len(loaded["figures"]) == 2
        assert loaded["violations_total"] == 2
        assert loaded["figures"][1]["figure_id"] == "Figure 13B"


class TestWriteCsv:
    def test_one_file_per_figure(self, tmp_path):
        figures = [make_figure("Figure 11A"), make_figure("Ablation A-1")]
        paths = write_csv(figures, tmp_path / "csv")
        assert len(paths) == 2
        assert {p.name for p in paths} == {
            "figure-11a.csv", "ablation-a-1.csv",
        }
        for path in paths:
            assert path.read_text().startswith("figure,series,x,y")


class TestCli:
    def test_cli_exports(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        code = main(
            [
                "ablation-scheduler",
                "--csv", str(tmp_path / "csv"),
                "--json", str(tmp_path / "results.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Ablation A-1" in out
        assert (tmp_path / "results.json").exists()
        assert list((tmp_path / "csv").glob("*.csv"))

    def test_cli_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "baseline-tidscan" in out
