"""The R-figure family at reduced scale: shapes must already hold."""

from repro.bench.figures import ALL_FIGURES
from repro.bench.robustness import figure_robustness


class TestFigureRobustness:
    def run(self):
        return figure_robustness(
            db_size=60,
            window_per_device=8,
            cluster_pages=64,
            fault_rates=(0.0, 0.1),
            n_devices=2,
        )

    def test_no_violations_at_small_scale(self):
        figures = self.run()
        assert [f.figure_id for f in figures] == [
            "Figure R-1",
            "Figure R-2",
        ]
        for figure in figures:
            assert figure.violations == [], (
                f"{figure.figure_id}: {figure.violations}"
            )

    def test_r1_elapsed_grows_with_the_fault_rate(self):
        r1 = self.run()[0]
        elapsed = r1.ys("pipelined elapsed (ms)")
        retries = r1.ys("fault retries")
        assert len(elapsed) == len(retries) == 2
        assert elapsed[1] >= elapsed[0] > 0.0
        assert retries[0] == 0 and retries[1] > 0

    def test_r2_skips_appear_only_under_faults(self):
        r2 = self.run()[1]
        skipped = r2.ys("fault-skipped objects")
        assert skipped[0] == 0
        assert skipped[1] > 0

    def test_registered_in_the_figure_catalog(self):
        assert "robustness" in ALL_FIGURES
