"""Tests for the exception hierarchy."""

import inspect

import pytest

from repro import errors


def all_error_classes():
    return [
        obj
        for _name, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception)
    ]


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for cls in all_error_classes():
            assert issubclass(cls, errors.ReproError)

    def test_storage_family(self):
        for cls in (
            errors.PageError,
            errors.PageFullError,
            errors.BadSlotError,
            errors.DiskError,
            errors.ExtentError,
            errors.BufferFullError,
            errors.PinError,
            errors.RecordError,
            errors.UnknownOidError,
            errors.DuplicateOidError,
            errors.DuplicateKeyError,
            errors.KeyNotFoundError,
        ):
            assert issubclass(cls, errors.StorageError)

    def test_assembly_family(self):
        for cls in (
            errors.TemplateError,
            errors.SchedulerError,
            errors.WindowError,
        ):
            assert issubclass(cls, errors.AssemblyError)

    def test_query_family(self):
        for cls in (errors.IteratorStateError, errors.PlanError):
            assert issubclass(cls, errors.QueryError)

    def test_one_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.BufferFullError("x")
        with pytest.raises(errors.ReproError):
            raise errors.PlanError("x")

    def test_storage_does_not_cross_into_query(self):
        assert not issubclass(errors.PageError, errors.QueryError)
        assert not issubclass(errors.PlanError, errors.StorageError)
