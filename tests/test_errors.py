"""Tests for the exception hierarchy."""

import inspect

import pytest

from repro import errors


def all_error_classes():
    return [
        obj
        for _name, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception)
    ]


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for cls in all_error_classes():
            assert issubclass(cls, errors.ReproError)

    def test_storage_family(self):
        for cls in (
            errors.PageError,
            errors.PageFullError,
            errors.BadSlotError,
            errors.DiskError,
            errors.ExtentError,
            errors.BufferFullError,
            errors.PinError,
            errors.RecordError,
            errors.UnknownOidError,
            errors.DuplicateOidError,
            errors.DuplicateKeyError,
            errors.KeyNotFoundError,
            errors.FaultError,
        ):
            assert issubclass(cls, errors.StorageError)

    def test_fault_family(self):
        for cls in (
            errors.TransientReadError,
            errors.DeviceDownError,
            errors.RetriesExhaustedError,
        ):
            assert issubclass(cls, errors.FaultError)
        # A retry loop that catches StorageError (pre-fault code) still
        # catches the whole injected-fault family.
        assert issubclass(errors.FaultError, errors.StorageError)
        assert not issubclass(errors.FaultError, errors.AssemblyError)

    def test_assembly_family(self):
        for cls in (
            errors.TemplateError,
            errors.SchedulerError,
            errors.WindowError,
        ):
            assert issubclass(cls, errors.AssemblyError)

    def test_query_family(self):
        for cls in (errors.IteratorStateError, errors.PlanError):
            assert issubclass(cls, errors.QueryError)

    def test_one_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.BufferFullError("x")
        with pytest.raises(errors.ReproError):
            raise errors.PlanError("x")

    def test_storage_does_not_cross_into_query(self):
        assert not issubclass(errors.PageError, errors.QueryError)
        assert not issubclass(errors.PlanError, errors.StorageError)

    def test_every_class_is_documented(self):
        for cls in all_error_classes():
            assert cls.__doc__, f"{cls.__name__} has no docstring"


class TestFaultAttributes:
    """The fault classes carry enough context to act on programmatically."""

    def test_transient_read_error(self):
        exc = errors.TransientReadError(
            "boom", page_id=17, device=2, attempt=3
        )
        assert exc.page_id == 17
        assert exc.device == 2
        assert exc.attempt == 3
        with pytest.raises(errors.ReproError):
            raise exc

    def test_device_down_error(self):
        exc = errors.DeviceDownError("down", device=1, retry_after=40.0)
        assert exc.device == 1
        assert exc.retry_after == 40.0
        assert errors.DeviceDownError().retry_after is None

    def test_retries_exhausted_chains_the_final_fault(self):
        cause = errors.TransientReadError(page_id=9)
        try:
            try:
                raise cause
            except errors.FaultError as inner:
                raise errors.RetriesExhaustedError(
                    "gave up", page_id=9, device=0, retries=2
                ) from inner
        except errors.RetriesExhaustedError as exc:
            assert exc.__cause__ is cause
            assert exc.page_id == 9
            assert exc.retries == 2

    def test_all_fault_classes_default_constructible(self):
        for cls in (
            errors.FaultError,
            errors.TransientReadError,
            errors.DeviceDownError,
            errors.RetriesExhaustedError,
        ):
            assert isinstance(cls(), errors.FaultError)
