"""The device server: registry, global sweep, fairness, determinism."""

import pytest

from repro.bench.harness import ExperimentConfig, build_layout
from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering
from repro.errors import SchedulerError, ServiceStateError
from repro.service.device_server import DeviceServer
from repro.storage.buffer import BufferManager
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.store import ObjectStore
from repro.workloads.acob import generate_acob, make_template


def build(n=40):
    config = ExperimentConfig(
        n_complex_objects=n,
        clustering="inter-object",
        scheduler="elevator",
        window_size=8,
        cluster_pages=64,
    )
    return build_layout(config)


class TestRegistry:
    def test_two_queries_share_one_sweep(self):
        db, layout = build()
        server = DeviceServer(layout.store)
        template = make_template(db)
        first = server.register(layout.root_order[:20], template)
        second = server.register(layout.root_order[20:], template)
        server.run()
        assert first.finished and second.finished
        assert len(first.output) == 20 and len(second.output) == 20
        for cobj in first.output + second.output:
            cobj.verify_swizzled()
        assert layout.store.buffer.pinned_pages == 0

    def test_register_rejects_private_scheduler(self):
        db, layout = build(n=5)
        server = DeviceServer(layout.store)
        with pytest.raises(ServiceStateError):
            server.register(
                layout.root_order, make_template(db), scheduler="elevator"
            )

    def test_proxy_pop_is_forbidden(self):
        db, layout = build(n=5)
        server = DeviceServer(layout.store)
        query = server.register(layout.root_order, make_template(db))
        proxy = query.assembly._scheduler  # the server-installed proxy
        with pytest.raises(SchedulerError):
            proxy.pop()

    def test_deregister_retracts_and_unpins(self):
        db, layout = build(n=10)
        server = DeviceServer(layout.store)
        template = make_template(db)
        query = server.register(layout.root_order[:5], template)
        keeper = server.register(layout.root_order[5:], template)
        assert server.pending_of(query.query_id) > 0
        server.deregister(query.query_id)
        assert server.pending_of(query.query_id) == 0
        server.run()
        assert keeper.finished
        assert layout.store.buffer.pinned_pages == 0

    def test_next_result_round_robins_queries(self):
        db, layout = build(n=20)
        server = DeviceServer(layout.store)
        template = make_template(db)
        first = server.register(layout.root_order[:10], template)
        second = server.register(layout.root_order[10:], template)
        server.run()
        order = []
        while True:
            emitted = server.next_result()
            if emitted is None:
                break
            order.append(emitted[0])
        assert sorted(order) == [first.query_id] * 10 + [second.query_id] * 10
        # With both queries holding output, emission alternates.
        assert order[:4] == [
            first.query_id, second.query_id,
            first.query_id, second.query_id,
        ]

    def test_bad_starvation_bound(self):
        _db, layout = build(n=5)
        with pytest.raises(ServiceStateError):
            DeviceServer(layout.store, starvation_bound=0)


class TestFairness:
    def test_starvation_bound_holds_with_one_slow_many_fast(self):
        """One big query plus four small ones: while any query has
        pending references, it is served at least once every
        ``bound + n_queries`` global resolutions."""
        bound = 4
        db, layout = build(n=40)
        server = DeviceServer(layout.store, starvation_bound=bound)
        template = make_template(db)
        slow = server.register(layout.root_order[:24], template)
        fast = [
            server.register(layout.root_order[24 + 4 * i: 28 + 4 * i], template)
            for i in range(4)
        ]
        n_queries = 5
        while server.step():
            for query in server.active_queries():
                assert query.waited <= bound + n_queries
        assert slow.finished and all(q.finished for q in fast)
        assert all(q.served > 0 for q in fast)

    def test_unbounded_scan_can_starve_longer(self):
        """Without the bound, some query waits longer than the bounded
        run ever allows — the fairness mechanism is load-bearing."""
        db, layout = build(n=40)
        server = DeviceServer(layout.store, starvation_bound=None)
        template = make_template(db)
        server.register(layout.root_order[:24], template)
        for i in range(4):
            server.register(
                layout.root_order[24 + 4 * i: 28 + 4 * i], template
            )
        worst = 0
        while server.step():
            worst = max(
                worst,
                max(q.waited for q in server.active_queries()),
            )
        assert worst > 4 + 5


class TestDeterminism:
    def test_identical_registrations_replay_identical_fetches(self):
        """The global sweep breaks every tie on the admission sequence
        number, so a repeated run reads pages in the same order."""
        seeks = []
        for _ in range(2):
            db, layout = build(n=30)
            server = DeviceServer(layout.store)
            template = make_template(db)
            server.register(layout.root_order[:15], template)
            server.register(layout.root_order[15:], template)
            server.run()
            seeks.append(list(layout.store.disk.stats.read_seeks))
        assert seeks[0] == seeks[1]


class TestMultiDevice:
    def test_one_queue_per_device(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=4096)
        store = ObjectStore(disk, BufferManager(disk))
        db = generate_acob(30, seed=3)
        layout = layout_database(
            db.complex_objects,
            store,
            InterObjectClustering(
                cluster_pages=8, disk_order=db.type_ids_depth_first()
            ),
            shared=db.shared_pool,
            seed=1,
        )
        server = DeviceServer(store)
        assert len(server.queue_depths()) == 2
        query = server.register(layout.root_order, make_template(db))
        server.run()
        assert query.finished and len(query.output) == 30
        # Extents stripe round-robin, so both heads actually moved.
        assert all(stats.reads > 0 for stats in disk.device_stats)


class TestOverlapped:
    """run_overlapped: same results as run(), but on the event clock."""

    def build_striped(self, n=40, n_devices=4, batch_pages=4):
        db = generate_acob(n, seed=2)
        disk = MultiDeviceDisk(
            n_devices=n_devices,
            pages_per_device=(7 * 64) // n_devices + 128,
        )
        store = ObjectStore(disk, BufferManager(disk))
        layout = layout_database(
            db.complex_objects,
            store,
            InterObjectClustering(
                cluster_pages=64, disk_order=db.type_ids_depth_first()
            ),
            shared=db.shared_pool,
        )
        server = DeviceServer(store, batch_pages=batch_pages)
        template = make_template(db)
        half = n // 2
        first = server.register(layout.root_order[:half], template)
        second = server.register(layout.root_order[half:], template)
        return store, server, first, second

    def test_same_results_as_synchronous(self):
        _store, server, first, second = self.build_striped()
        server.run()
        expected = sorted(
            c.root.oid for c in first.output + second.output
        )
        store, server, first, second = self.build_striped()
        report = server.run_overlapped(issue_depth=2)
        assert first.finished and second.finished
        assert (
            sorted(c.root.oid for c in first.output + second.output)
            == expected
        )
        for cobj in first.output + second.output:
            cobj.verify_swizzled()
        assert store.buffer.pinned_pages == 0
        assert report.resolutions > 0

    def test_overlap_beats_the_synchronous_sum(self):
        _store, server, _q1, _q2 = self.build_striped()
        report = server.run_overlapped(issue_depth=2)
        assert report.elapsed_ms < sum(report.device_busy_ms)
        assert len(report.device_utilization) == 4
        assert all(u <= 1.0 + 1e-9 for u in report.device_utilization)

    def test_invalid_issue_depth(self):
        _store, server, _q1, _q2 = self.build_striped(n=4)
        with pytest.raises(ServiceStateError):
            server.run_overlapped(issue_depth=0)

    def test_metrics_record_overlap(self):
        from repro.service.metrics import ServiceMetrics

        _store, server, _q1, _q2 = self.build_striped()
        report = server.run_overlapped(issue_depth=2)
        metrics = ServiceMetrics()
        metrics.record_overlap(report)
        snapshot = metrics.snapshot()
        assert snapshot["elapsed_ms"] == report.elapsed_ms
        assert snapshot["device_utilization"] == report.device_utilization
