"""Batched device server: global sweep batches across client queries."""

import pytest

from repro.bench.harness import ExperimentConfig, build_layout
from repro.errors import ServiceStateError
from repro.service.device_server import DeviceServer
from repro.workloads.acob import make_template


def build(n=40, clustering="intra-object"):
    config = ExperimentConfig(
        n_complex_objects=n,
        clustering=clustering,
        scheduler="elevator",
        window_size=8,
        cluster_pages=64,
    )
    return build_layout(config)


def fingerprint(obj):
    return (
        obj.oid,
        obj.ints,
        obj.ref_oids,
        tuple(
            (slot, fingerprint(child))
            for slot, child in sorted(obj.children.items())
        ),
    )


def run_server(batch_pages, n=40, clustering="intra-object"):
    db, layout = build(n=n, clustering=clustering)
    server = DeviceServer(layout.store, batch_pages=batch_pages)
    template = make_template(db)
    half = len(layout.root_order) // 2
    first = server.register(layout.root_order[:half], template)
    second = server.register(layout.root_order[half:], template)
    server.run()
    assert first.finished and second.finished
    assert layout.store.buffer.pinned_pages == 0
    emitted = sorted(
        (cobj.root_oid, fingerprint(cobj.root))
        for query in (first, second)
        for cobj in query.output
    )
    return emitted, layout.store.disk.stats


class TestBatchedServer:
    def test_invalid_batch_pages(self):
        _, layout = build(n=5)
        with pytest.raises(ServiceStateError):
            DeviceServer(layout.store, batch_pages=0)

    def test_output_identical_to_unbatched(self):
        reference, _ = run_server(1)
        for batch in (2, 4):
            emitted, _ = run_server(batch)
            assert emitted == reference

    def test_batching_reduces_physical_reads(self):
        _, plain = run_server(1, n=60)
        _, batched = run_server(4, n=60)
        assert batched.reads < plain.reads
        assert batched.pages_read == plain.pages_read
        assert batched.run_reads > 0

    def test_inter_object_clients_unharmed(self):
        reference, _ = run_server(1, clustering="inter-object")
        emitted, _ = run_server(4, clustering="inter-object")
        assert emitted == reference

    def test_batch_spans_queries(self):
        """One sweep batch may serve references of different clients.

        With intra-object clustering and interleaved root partitions,
        adjacent pages belong to consecutive roots — which the halved
        registration splits across the two queries — so coalesced runs
        must cross query boundaries to form at all.
        """
        _, plain = run_server(1, n=60)
        _, batched = run_server(8, n=60)
        assert batched.reads < plain.reads
