"""The assembled-object cache: LRU behaviour and write invalidation."""

import pytest

from repro.bench.harness import ExperimentConfig, build_layout
from repro.core.assembly import Assembly
from repro.errors import ServiceStateError
from repro.service.cache import AssembledObjectCache
from repro.volcano.iterator import ListSource
from repro.workloads.acob import make_template


@pytest.fixture(scope="module")
def assembled():
    """(template fingerprint, store, assembled objects) for 12 roots."""
    config = ExperimentConfig(
        n_complex_objects=12,
        clustering="inter-object",
        scheduler="elevator",
        window_size=4,
        cluster_pages=64,
    )
    database, layout = build_layout(config)
    template = make_template(database).finalize()
    operator = Assembly(
        ListSource(layout.root_order),
        layout.store,
        template,
        window_size=4,
        scheduler="elevator",
    )
    objects = operator.execute()
    return template.fingerprint(), layout.store, objects


class TestLookup:
    def test_hit_and_miss_stats(self, assembled):
        fingerprint, _store, objects = assembled
        cache = AssembledObjectCache(capacity=8)
        cache.put(fingerprint, objects[0])
        assert cache.get(objects[0].root_oid, fingerprint) is objects[0]
        assert cache.get(objects[1].root_oid, fingerprint) is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_same_root_different_template_is_a_miss(self, assembled):
        fingerprint, _store, objects = assembled
        cache = AssembledObjectCache(capacity=8)
        cache.put(fingerprint, objects[0])
        assert cache.get(objects[0].root_oid, "other-template") is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ServiceStateError):
            AssembledObjectCache(capacity=0)


class TestEviction:
    def test_lru_evicts_the_coldest_entry(self, assembled):
        fingerprint, _store, objects = assembled
        cache = AssembledObjectCache(capacity=2)
        cache.put(fingerprint, objects[0])
        cache.put(fingerprint, objects[1])
        cache.get(objects[0].root_oid, fingerprint)  # refresh 0
        cache.put(fingerprint, objects[2])  # evicts 1, the coldest
        assert cache.get(objects[0].root_oid, fingerprint) is not None
        assert cache.get(objects[1].root_oid, fingerprint) is None
        assert cache.stats.evictions == 1

    def test_len_tracks_entries(self, assembled):
        fingerprint, _store, objects = assembled
        cache = AssembledObjectCache(capacity=4)
        for obj in objects[:6]:
            cache.put(fingerprint, obj)
        assert len(cache) == 4


class TestInvalidation:
    def test_writing_any_member_drops_containing_entries(self, assembled):
        fingerprint, _store, objects = assembled
        cache = AssembledObjectCache(capacity=8)
        cache.put(fingerprint, objects[0])
        cache.put(fingerprint, objects[1])
        # Pick a NON-root member: the whole cached structure is stale
        # when any component is rewritten, not just the root.
        member = next(
            obj.oid
            for obj in objects[0].scan()
            if obj.oid != objects[0].root_oid
        )
        dropped = cache.invalidate(member)
        assert dropped == 1
        assert cache.get(objects[0].root_oid, fingerprint) is None
        assert cache.get(objects[1].root_oid, fingerprint) is not None
        assert cache.stats.invalidations == 1

    def test_store_write_hook_invalidates(self, assembled):
        fingerprint, store, objects = assembled
        cache = AssembledObjectCache(capacity=8)
        cache.wire(store)
        try:
            cache.put(fingerprint, objects[3])
            member = next(iter(objects[3].scan())).oid
            store.overwrite(member, store.fetch(member))
            assert cache.get(objects[3].root_oid, fingerprint) is None
            assert cache.stats.invalidations == 1
        finally:
            cache.unwire()

    def test_unwire_stops_following_writes(self, assembled):
        fingerprint, store, objects = assembled
        cache = AssembledObjectCache(capacity=8)
        cache.wire(store)
        cache.unwire()
        cache.put(fingerprint, objects[4])
        root = objects[4].root_oid
        store.overwrite(root, store.fetch(root))
        assert cache.get(root, fingerprint) is not None

    def test_clear_drops_everything(self, assembled):
        fingerprint, _store, objects = assembled
        cache = AssembledObjectCache(capacity=8)
        for obj in objects[:3]:
            cache.put(fingerprint, obj)
        cache.clear()
        assert len(cache) == 0
        assert cache.get(objects[0].root_oid, fingerprint) is None
