"""End-to-end tests of the assembly service façade."""

import pytest

from repro.bench.harness import ExperimentConfig, build_layout
from repro.core.tuning import pin_bound
from repro.errors import ServiceOverloadError, ServiceStateError
from repro.service.server import AssemblyService, RequestStatus
from repro.workloads.acob import make_template


def build(n=30, buffer_capacity=None):
    config = ExperimentConfig(
        n_complex_objects=n,
        clustering="inter-object",
        scheduler="elevator",
        window_size=8,
        cluster_pages=64,
        buffer_capacity=buffer_capacity,
    )
    return build_layout(config)


class TestSubmitPollResult:
    def test_two_requests_complete(self):
        db, layout = build()
        service = AssemblyService(layout.store)
        template = make_template(db)
        first = service.submit(layout.root_order[:15], template)
        second = service.submit(layout.root_order[15:], template)
        assert service.poll(first) is RequestStatus.RUNNING
        results = service.result(first)
        assert len(results) == 15
        assert {c.root_oid for c in results} == set(layout.root_order[:15])
        assert service.result(second) and service.poll(second) is RequestStatus.DONE
        assert layout.store.buffer.pinned_pages == 0

    def test_metrics_track_the_request_life(self):
        db, layout = build(n=10)
        service = AssemblyService(layout.store)
        request = service.submit(layout.root_order, make_template(db))
        service.result(request)
        metrics = service.request_metrics(request)
        assert metrics.queue_wait == 0
        assert metrics.latency is not None and metrics.latency > 0
        assert metrics.emitted == 10
        assert metrics.fetches == 10 * 7
        assert metrics.window_size == 8
        snapshot = service.metrics.snapshot()
        assert snapshot["requests_completed"] == 1
        assert snapshot["objects_emitted"] == 10
        assert snapshot["p50_latency"] == metrics.latency

    def test_unknown_request_id(self):
        _db, layout = build(n=5)
        service = AssemblyService(layout.store)
        with pytest.raises(ServiceStateError):
            service.poll(99)

    def test_determinism_across_identical_services(self):
        seeks = []
        for _ in range(2):
            db, layout = build(n=20)
            service = AssemblyService(layout.store)
            template = make_template(db)
            service.submit(layout.root_order[:10], template)
            service.submit(layout.root_order[10:], template)
            service.run()
            seeks.append(list(layout.store.disk.stats.read_seeks))
        assert seeks[0] == seeks[1]


class TestCacheIntegration:
    def test_repeat_submission_served_from_cache(self):
        db, layout = build(n=12)
        service = AssemblyService(layout.store)
        template = make_template(db)
        service.result(service.submit(layout.root_order, template))
        reads_before = layout.store.disk.stats.reads
        repeat = service.submit(layout.root_order, template)
        assert service.poll(repeat) is RequestStatus.DONE
        assert len(service.result(repeat)) == 12
        assert layout.store.disk.stats.reads == reads_before
        assert service.request_metrics(repeat).cache_hits == 12
        assert service.request_metrics(repeat).latency == 0

    def test_store_write_invalidates_exactly_the_touched_object(self):
        db, layout = build(n=12)
        service = AssemblyService(layout.store)
        template = make_template(db)
        first = service.result(service.submit(layout.root_order, template))
        # Rewrite one component of the first complex object in place.
        member = next(iter(first[0].scan())).oid
        layout.store.overwrite(member, layout.store.fetch(member))
        repeat = service.submit(layout.root_order, template)
        metrics = service.request_metrics(repeat)
        assert metrics.cache_hits == 11  # all but the invalidated one
        assert service.poll(repeat) is RequestStatus.RUNNING
        assert len(service.result(repeat)) == 12

    def test_cache_disabled(self):
        db, layout = build(n=6)
        service = AssemblyService(layout.store, cache_capacity=0)
        template = make_template(db)
        service.result(service.submit(layout.root_order, template))
        repeat = service.submit(layout.root_order, template)
        assert service.poll(repeat) is RequestStatus.RUNNING
        assert service.request_metrics(repeat).cache_hits == 0


class TestAdmissionIntegration:
    def test_budget_exhaustion_rejects_with_typed_error(self):
        db, layout = build(n=20)
        template = make_template(db)
        budget = pin_bound(8, template)
        service = AssemblyService(
            layout.store, budget_pages=budget, max_waiting=0
        )
        first = service.submit(
            layout.root_order[:10], template, window_size=8
        )
        with pytest.raises(ServiceOverloadError):
            service.submit(layout.root_order[10:], template, window_size=8)
        # The rejected request left no residue; the survivor completes.
        assert service.metrics.requests_rejected == 1
        assert len(service.result(first)) == 10
        after = service.submit(layout.root_order[10:], template)
        assert len(service.result(after)) == 10

    def test_queued_request_starts_after_release(self):
        db, layout = build(n=20)
        template = make_template(db)
        budget = pin_bound(8, template)
        service = AssemblyService(
            layout.store, budget_pages=budget, max_waiting=2, min_window=8
        )
        first = service.submit(layout.root_order[:10], template)
        queued = service.submit(layout.root_order[10:], template)
        assert service.poll(queued) is RequestStatus.QUEUED
        service.run()
        assert service.poll(queued) is RequestStatus.DONE
        assert len(service.result(queued)) == 10
        wait = service.request_metrics(queued).queue_wait
        assert wait is not None and wait > 0
        assert service.request_metrics(first).queue_wait == 0

    def test_shrunk_window_still_completes(self):
        db, layout = build(n=10)
        template = make_template(db)
        # Budget fits W=2 (13 pages) but not the asked W=8 (49).
        service = AssemblyService(
            layout.store, budget_pages=pin_bound(2, template)
        )
        request = service.submit(layout.root_order, template, window_size=8)
        assert len(service.result(request)) == 10
        metrics = service.request_metrics(request)
        assert metrics.shrunk and metrics.window_size == 2
