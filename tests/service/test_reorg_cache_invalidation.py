"""Result-cache coherence across reorganization migrations.

PR 1's store-write invalidation was only ever exercised by in-place
``overwrite`` calls — one OID, one page.  A migration is a multi-page
move: the object leaves page P for a fresh extent, and every cached
assembled object whose pin set touched P (i.e. that contains the moved
member) is stale the moment the directory relocates it.  These tests
pin the contract end to end: migrations evict exactly the containing
entries, leave unrelated entries hot, count into
``ServiceMetrics.reorg_cache_invalidations``, and the next poll
re-assembles the evicted root byte-equal from the *new* layout.
"""

from repro.bench.harness import ExperimentConfig, build_layout
from repro.cluster.reorg import ReorgPolicy
from repro.service.server import AssemblyService
from repro.workloads.acob import make_template


def content_of(cobj):
    return tuple(
        (obj.oid, obj.ints, obj.ref_oids, tuple(sorted(obj.children)))
        for obj in cobj.root.walk()
    )


def build_service(**service_kwargs):
    database, layout = build_layout(
        ExperimentConfig(
            n_complex_objects=16,
            clustering="unclustered",
            scheduler="elevator",
            window_size=4,
        )
    )
    template = make_template(database)
    service = AssemblyService(layout.store, **service_kwargs)
    return service, layout, template


#: One assembly pass gives every co-resolved pair weight 1 (the device
#: server feeds the sketch automatically); ``min_weight=3`` keeps that
#: background affinity below threshold so only the explicitly repeated
#: co-accesses in these tests plan migrations.
RECURRING_ONLY = ReorgPolicy(
    min_weight=3.0, min_observations=1, auto=False
)


def assemble(service, template, roots, window=4):
    request_id = service.submit(list(roots), template, window_size=window)
    return service.result(request_id)


class TestMigrationInvalidation:
    def test_direct_migration_evicts_containing_entries(self):
        """The store-level contract, no reorganizer involved: moving any
        member of a cached assembly drops that entry and only that
        entry — the PR 1 write-hook regression for multi-page moves."""
        service, layout, template = build_service(cache_capacity=8)
        victim, bystander = layout.root_order[:2]
        emitted = assemble(service, template, [victim, bystander])
        store = service.store
        fingerprint = template.finalize().fingerprint()
        assert service.cache.get(victim, fingerprint) is not None

        victim_assembly = next(
            cobj for cobj in emitted if cobj.root.oid == victim
        )
        member = next(
            obj.oid
            for obj in victim_assembly.root.walk()
            if obj.oid != victim
        )
        target = store.disk.allocate(1)
        store.migrate(member, target.start)

        assert service.cache.get(victim, fingerprint) is None
        assert service.cache.get(bystander, fingerprint) is not None
        assert service.cache.stats.invalidations >= 1

    def test_reorg_round_invalidates_and_repoll_uses_new_layout(self):
        service, layout, template = build_service(
            cache_capacity=32, reorg_policy=RECURRING_ONLY
        )
        reorg = service.server.reorg
        roots = layout.root_order[:6]
        baseline = {
            cobj.root.oid: content_of(cobj)
            for cobj in assemble(service, template, roots)
        }
        hits_before = service.metrics.cache_hits
        assemble(service, template, roots)  # all six served from cache
        assert service.metrics.cache_hits - hits_before == len(roots)

        # Recurring co-access of two roots' members, then an explicit
        # round in the drained service: their pages get repacked.
        for context in range(4):
            for root in roots[:2]:
                reorg.observe(("hot", context), root)
        report = service.reorganize()
        assert report.migrations > 0
        assert service.metrics.reorg_cache_invalidations > 0

        moved_pages = {service.store.page_of(root) for root in roots[:2]}
        assert moved_pages == {report.extent.start}

        # Next poll: migrated roots re-assemble from the new layout —
        # cache misses, byte-equal content; untouched roots stay hot.
        hits_before = service.metrics.cache_hits
        misses_before = service.metrics.cache_misses
        again = {
            cobj.root.oid: content_of(cobj)
            for cobj in assemble(service, template, roots)
        }
        assert again == baseline
        assert service.metrics.cache_misses - misses_before == 2
        assert (
            service.metrics.cache_hits - hits_before == len(roots) - 2
        )

    def test_invalidation_counter_stays_zero_without_migrations(self):
        service, layout, template = build_service(
            cache_capacity=8, reorg_policy=RECURRING_ONLY
        )
        assemble(service, template, layout.root_order[:3])
        # One pass of background affinity stays below min_weight: the
        # round plans nothing and the cache keeps every entry.
        report = service.reorganize()
        assert report.migrations == 0
        assert service.metrics.reorg_cache_invalidations == 0
        assert len(service.cache) == 3
