"""Admission control: pin-bound pricing, shrinking, lanes, shedding."""

import pytest

from repro.core.tuning import pin_bound
from repro.errors import ServiceOverloadError, ServiceStateError
from repro.service.admission import (
    AdmissionController,
    FIFO_LANE,
    PRIORITY_LANE,
)
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.workloads.acob import generate_acob, make_template


@pytest.fixture
def template():
    """The paper's 7-node assembly template."""
    return make_template(generate_acob(3, seed=1))


def test_pin_bound_is_the_paper_formula(template):
    # Section 6.3.3: 6*(W-1) + 7 for the 7-object template.
    assert pin_bound(1, template) == 7
    assert pin_bound(8, template) == 6 * 7 + 7


class TestAdmit:
    def test_admits_at_asked_window_when_it_fits(self, template):
        controller = AdmissionController(budget_pages=100)
        ticket = controller.submit(0, 8, template)
        assert ticket.window_size == 8
        assert not ticket.shrunk and not ticket.waiting
        assert ticket.pinned_budget == pin_bound(8, template)
        assert controller.granted_pages == ticket.pinned_budget

    def test_unlimited_budget_never_shrinks(self, template):
        controller = AdmissionController(budget_pages=None)
        for request_id in range(10):
            ticket = controller.submit(request_id, 64, template)
            assert ticket.window_size == 64 and not ticket.waiting

    def test_shrinks_window_to_fit(self, template):
        # W=8 costs 49 > 30; halving lands on W=4 (cost 25).
        controller = AdmissionController(budget_pages=30)
        ticket = controller.submit(0, 8, template)
        assert ticket.shrunk
        assert ticket.window_size == 4
        assert ticket.pinned_budget == pin_bound(4, template)
        assert controller.shrunk == 1


class TestQueueAndReject:
    def test_queues_when_nothing_fits(self, template):
        controller = AdmissionController(budget_pages=50)
        first = controller.submit(0, 8, template)
        assert not first.waiting  # 49 <= 50
        second = controller.submit(1, 8, template)
        assert second.waiting  # even W=1 needs 7 > 1 free
        assert controller.waiting() == 1
        assert controller.queued == 1

    def test_rejects_when_wait_queue_full(self, template):
        controller = AdmissionController(budget_pages=50, max_waiting=1)
        controller.submit(0, 8, template)
        controller.submit(1, 8, template)  # fills the queue
        with pytest.raises(ServiceOverloadError):
            controller.submit(2, 8, template)
        assert controller.rejected == 1

    def test_rejects_outright_when_it_could_never_run(self, template):
        # min window costs 7 pages; a 5-page budget can never serve it.
        controller = AdmissionController(budget_pages=5)
        with pytest.raises(ServiceOverloadError):
            controller.submit(0, 1, template)
        assert controller.waiting() == 0

    def test_release_admits_waiters_fifo(self, template):
        controller = AdmissionController(budget_pages=50)
        first = controller.submit(0, 8, template)
        second = controller.submit(1, 4, template)
        third = controller.submit(2, 4, template)
        assert second.waiting and third.waiting
        started = controller.release(first)
        # 50 free again: W=4 costs 25, so both waiters fit (25+25 = 50),
        # admitted in FIFO order.
        assert [t.request_id for t in started] == [1, 2]
        assert started[0].window_size == 4
        assert started[1].window_size == 4
        assert controller.granted_pages == 50

    def test_priority_lane_served_first(self, template):
        controller = AdmissionController(budget_pages=50)
        first = controller.submit(0, 8, template)
        fifo = controller.submit(1, 8, template, priority=False)
        urgent = controller.submit(2, 8, template, priority=True)
        assert fifo.lane == FIFO_LANE and urgent.lane == PRIORITY_LANE
        started = controller.release(first)
        # Priority drains first and takes the whole budget (W=8 = 49),
        # head-of-line blocking the FIFO lane.
        assert [t.request_id for t in started] == [2]
        assert fifo.waiting


class TestBufferLedger:
    def test_grants_mirror_into_buffer_reservations(self, template):
        disk = SimulatedDisk()
        buffer = BufferManager(disk, capacity=100)
        controller = AdmissionController(budget_pages=100, buffer=buffer)
        ticket = controller.submit(0, 8, template)
        assert buffer.reserved_frames == pin_bound(8, template)
        controller.release(ticket)
        assert buffer.reserved_frames == 0


class TestValidation:
    def test_bad_parameters(self, template):
        with pytest.raises(ServiceStateError):
            AdmissionController(budget_pages=0)
        with pytest.raises(ServiceStateError):
            AdmissionController(max_waiting=-1)
        with pytest.raises(ServiceStateError):
            AdmissionController(min_window=0)
        controller = AdmissionController()
        with pytest.raises(ServiceStateError):
            controller.submit(0, 0, template)

    def test_releasing_a_waiting_ticket_is_an_error(self, template):
        controller = AdmissionController(budget_pages=50)
        controller.submit(0, 8, template)
        waiter = controller.submit(1, 8, template)
        with pytest.raises(ServiceStateError):
            controller.release(waiter)
