"""Request cancellation: queued, running, done — and budget cleanup.

Cancellation exists for the fabric's hedged requests (the losing copy
is cancelled on the event clock), but the semantics are plain service
semantics and are pinned here: a cancelled request frees whatever it
held — its wait-queue slot or its granted admission budget — and a
freed budget immediately starts eligible waiters.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentConfig, build_layout
from repro.errors import ServiceStateError
from repro.service.server import AssemblyService, RequestStatus
from repro.workloads.acob import make_template

#: pin_bound(8, 7-node template) = 6*7 + 7 = 49 pages: a budget of 49
#: admits exactly one window-8 request and parks the next.
ONE_REQUEST_BUDGET = 49


def build(n=20, buffer_capacity=None):
    config = ExperimentConfig(
        n_complex_objects=n,
        clustering="inter-object",
        scheduler="elevator",
        window_size=8,
        cluster_pages=64,
        buffer_capacity=buffer_capacity,
    )
    return build_layout(config)


class TestCancelQueued:
    def test_cancel_frees_the_wait_slot(self):
        db, layout = build(buffer_capacity=ONE_REQUEST_BUDGET)
        service = AssemblyService(layout.store)
        template = make_template(db)
        first = service.submit(layout.root_order[:10], template)
        second = service.submit(layout.root_order[10:], template)
        assert service.poll(second) is RequestStatus.QUEUED
        assert service.cancel(second) is True
        assert service.poll(second) is RequestStatus.CANCELLED
        assert service.admission.waiting() == 0
        assert service.admission.cancelled == 1
        assert service.metrics.requests_cancelled == 1
        with pytest.raises(ServiceStateError):
            service.result(second)
        # The survivor is untouched.
        assert len(service.result(first)) == 10
        assert layout.store.buffer.pinned_pages == 0


class TestCancelRunning:
    def test_cancel_mid_flight_releases_everything(self):
        db, layout = build()
        service = AssemblyService(layout.store)
        request = service.submit(layout.root_order, make_template(db))
        for _ in range(5):
            service.step()
        granted = service.admission.granted_pages
        assert granted > 0
        assert service.cancel(request) is True
        assert service.poll(request) is RequestStatus.CANCELLED
        assert service.admission.granted_pages == 0
        assert layout.store.buffer.pinned_pages == 0
        assert service.step() is False  # nothing left to do
        assert service.metrics.requests_cancelled == 1

    def test_cancelling_a_grant_starts_the_waiter(self):
        db, layout = build(buffer_capacity=ONE_REQUEST_BUDGET)
        service = AssemblyService(layout.store)
        template = make_template(db)
        first = service.submit(layout.root_order[:10], template)
        second = service.submit(layout.root_order[10:], template)
        assert service.poll(second) is RequestStatus.QUEUED
        assert service.cancel(first) is True
        assert service.poll(second) is RequestStatus.RUNNING
        assert len(service.result(second)) == 10
        assert layout.store.buffer.pinned_pages == 0

    def test_other_requests_results_are_unaffected(self):
        db, layout = build()
        service = AssemblyService(layout.store)
        template = make_template(db)
        keep = service.submit(layout.root_order[:10], template)
        drop = service.submit(layout.root_order[10:], template)
        for _ in range(3):
            service.step()
        service.cancel(drop)
        kept = service.result(keep)
        assert {c.root_oid for c in kept} == set(layout.root_order[:10])
        assert service.metrics.requests_completed == 1
        assert service.metrics.requests_cancelled == 1


class TestTerminalStates:
    def test_cancel_after_done_is_a_noop(self):
        db, layout = build(n=10)
        service = AssemblyService(layout.store)
        request = service.submit(layout.root_order, make_template(db))
        service.result(request)
        assert service.cancel(request) is False
        assert service.poll(request) is RequestStatus.DONE
        assert service.metrics.requests_cancelled == 0

    def test_double_cancel_counts_once(self):
        db, layout = build(n=10)
        service = AssemblyService(layout.store)
        request = service.submit(layout.root_order, make_template(db))
        assert service.cancel(request) is True
        assert service.cancel(request) is False
        assert service.metrics.requests_cancelled == 1

    def test_cancel_unknown_request(self):
        _db, layout = build(n=5)
        service = AssemblyService(layout.store)
        with pytest.raises(ServiceStateError):
            service.cancel(99)

    def test_run_completes_around_cancelled_requests(self):
        db, layout = build(n=16)
        service = AssemblyService(layout.store)
        template = make_template(db)
        ids = [
            service.submit(layout.root_order[i : i + 4], template)
            for i in range(0, 16, 4)
        ]
        service.cancel(ids[1])
        service.cancel(ids[3])
        service.run()
        assert service.poll(ids[0]) is RequestStatus.DONE
        assert service.poll(ids[2]) is RequestStatus.DONE
        assert service.metrics.requests_completed == 2
        assert service.metrics.requests_cancelled == 2
        assert layout.store.buffer.pinned_pages == 0
