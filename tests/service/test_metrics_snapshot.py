"""Metric surfaces are complete: every counter reaches its flat view.

Reports and the regression gate consume ``snapshot()`` /
``as_dict()`` dictionaries, so a counter that exists on the dataclass
but is missing from the flat view silently disappears from every
figure.  These tests pin the dataclass-field ↔ flat-view
correspondence, including the fault counters added with the
robustness layer.
"""

from __future__ import annotations

import dataclasses

from repro.service.device_server import OverlapReport
from repro.service.metrics import RequestMetrics, ServiceMetrics


class TestServiceMetricsSnapshot:
    def test_every_counter_field_is_in_the_snapshot(self):
        snapshot = ServiceMetrics().snapshot()
        skipped = {"per_request"}  # per-request detail is deliberately omitted
        for field in dataclasses.fields(ServiceMetrics):
            if field.name in skipped:
                continue
            assert field.name in snapshot, (
                f"ServiceMetrics.{field.name} never reaches snapshot()"
            )

    def test_fault_counters_present_and_zero_by_default(self):
        snapshot = ServiceMetrics().snapshot()
        assert snapshot["objects_degraded"] == 0
        assert snapshot["fault_retries"] == 0
        assert snapshot["fault_aborts"] == 0

    def test_fabric_counters_present_and_zero_by_default(self):
        snapshot = ServiceMetrics().snapshot()
        assert snapshot["requests_cancelled"] == 0
        assert snapshot["requests_shed"] == 0
        assert snapshot["hedge_fired"] == 0
        assert snapshot["hedge_won"] == 0
        assert snapshot["queue_wait_ticks"] == 0

    def test_snapshot_is_detached_from_the_live_lists(self):
        metrics = ServiceMetrics()
        metrics.device_utilization = [0.5, 0.25]
        snapshot = metrics.snapshot()
        snapshot["device_utilization"].append(1.0)
        assert metrics.device_utilization == [0.5, 0.25]

    def test_record_overlap_folds_fault_retries_additively(self):
        metrics = ServiceMetrics()
        report = OverlapReport(
            elapsed_ms=10.0,
            device_utilization=[1.0],
            fault_retries=3,
        )
        metrics.record_overlap(report)
        metrics.record_overlap(report)
        assert metrics.fault_retries == 6
        assert metrics.elapsed_ms == 10.0
        assert metrics.snapshot()["fault_retries"] == 6


class TestServiceMetricsMerge:
    def make(self, latencies, **counters):
        metrics = ServiceMetrics()
        for name, value in counters.items():
            setattr(metrics, name, value)
        for latency in latencies:
            metrics.latency_hist.record(latency)
        return metrics

    def test_summed_fields_cover_every_int_counter(self):
        """merge() must not silently drop a newly added counter: every
        plain-int dataclass field is either summed or called out here."""
        int_fields = {
            field.name
            for field in dataclasses.fields(ServiceMetrics)
            if field.type == "int"
        }
        assert set(ServiceMetrics._SUMMED_FIELDS) == int_fields

    def test_counters_sum(self):
        merged = ServiceMetrics.merged(
            [
                self.make([], requests_completed=3, hedge_fired=2),
                self.make([], requests_completed=5, requests_shed=4),
            ]
        )
        assert merged.requests_completed == 8
        assert merged.hedge_fired == 2
        assert merged.requests_shed == 4

    def test_percentiles_come_from_the_merged_distribution(self):
        """The point of histogram merge: fleet p99 is the percentile of
        the *combined* stream, not an average of per-shard p99s (which
        would split the difference between a fast and a slow shard)."""
        fast = self.make([1.0] * 99)
        slow = self.make([1000.0] * 99)
        merged = ServiceMetrics.merged([fast, slow])
        assert merged.latency_hist.count == 198
        # Averaging per-shard p99s would claim ~500; the merged stream's
        # true p99 sits in the slow mode.
        assert merged.latency_hist.p99 > 900.0
        assert merged.latency_hist.p50 < 2.0

    def test_merged_leaves_the_parts_untouched(self):
        part = self.make([5.0], requests_completed=1)
        before = part.snapshot()
        ServiceMetrics.merged([part, self.make([7.0])])
        assert part.snapshot() == before

    def test_elapsed_is_max_and_utilization_concatenates(self):
        a = self.make([])
        a.elapsed_ms = 10.0
        a.device_utilization = [0.5]
        b = self.make([])
        b.elapsed_ms = 30.0
        b.device_utilization = [0.9, 0.1]
        merged = ServiceMetrics.merged([a, b])
        assert merged.elapsed_ms == 30.0
        assert merged.device_utilization == [0.5, 0.9, 0.1]
        assert ServiceMetrics.merged([self.make([]), a]).elapsed_ms == 10.0

    def test_per_request_entries_are_rekeyed_without_collision(self):
        a = ServiceMetrics()
        a.open_request(0, 0)
        a.open_request(1, 0)
        b = ServiceMetrics()
        b.open_request(0, 0)
        merged = ServiceMetrics.merged([a, b])
        assert len(merged.per_request) == 3

    def test_merge_returns_self_for_chaining(self):
        metrics = ServiceMetrics()
        assert metrics.merge(ServiceMetrics()) is metrics


class TestRequestMetricsAsDict:
    def test_every_counter_field_is_in_as_dict(self):
        flat = RequestMetrics(request_id=7).as_dict()
        # Clock fields surface as the derived queue_wait/latency pair;
        # window_size is reported under the shorter "window" key.
        renamed = {
            "submitted_at", "started_at", "completed_at", "window_size",
        }
        for field in dataclasses.fields(RequestMetrics):
            if field.name in renamed:
                continue
            assert field.name in flat, (
                f"RequestMetrics.{field.name} never reaches as_dict()"
            )
        assert {"queue_wait", "latency", "window"} <= set(flat)

    def test_fault_fields_default_to_zero(self):
        flat = RequestMetrics(request_id=7).as_dict()
        assert flat["degraded"] == 0
        assert flat["fault_retries"] == 0

    def test_derived_clocks(self):
        metrics = RequestMetrics(request_id=1, submitted_at=5)
        assert metrics.queue_wait is None and metrics.latency is None
        metrics.started_at = 9
        metrics.completed_at = 21
        assert metrics.queue_wait == 4
        assert metrics.latency == 16


class TestOverlapReportShape:
    def test_fault_counters_exist_with_zero_defaults(self):
        report = OverlapReport()
        assert report.fault_retries == 0
        assert report.fault_requeues == 0
        assert report.fault_fallbacks == 0
        assert report.quarantines == 0
        assert report.quarantine_wait_ms == 0.0

    def test_field_inventory(self):
        """The full report surface, pinned: removing or renaming a
        field breaks ServiceMetrics.record_overlap consumers."""
        names = {field.name for field in dataclasses.fields(OverlapReport)}
        assert names == {
            "elapsed_ms",
            "device_busy_ms",
            "device_utilization",
            "issued",
            "resolutions",
            "sync_fallbacks",
            "fault_retries",
            "fault_requeues",
            "fault_fallbacks",
            "quarantines",
            "quarantine_wait_ms",
        }
