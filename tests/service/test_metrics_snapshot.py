"""Metric surfaces are complete: every counter reaches its flat view.

Reports and the regression gate consume ``snapshot()`` /
``as_dict()`` dictionaries, so a counter that exists on the dataclass
but is missing from the flat view silently disappears from every
figure.  These tests pin the dataclass-field ↔ flat-view
correspondence, including the fault counters added with the
robustness layer.
"""

from __future__ import annotations

import dataclasses

from repro.service.device_server import OverlapReport
from repro.service.metrics import RequestMetrics, ServiceMetrics


class TestServiceMetricsSnapshot:
    def test_every_counter_field_is_in_the_snapshot(self):
        snapshot = ServiceMetrics().snapshot()
        skipped = {"per_request"}  # per-request detail is deliberately omitted
        for field in dataclasses.fields(ServiceMetrics):
            if field.name in skipped:
                continue
            assert field.name in snapshot, (
                f"ServiceMetrics.{field.name} never reaches snapshot()"
            )

    def test_fault_counters_present_and_zero_by_default(self):
        snapshot = ServiceMetrics().snapshot()
        assert snapshot["objects_degraded"] == 0
        assert snapshot["fault_retries"] == 0
        assert snapshot["fault_aborts"] == 0

    def test_snapshot_is_detached_from_the_live_lists(self):
        metrics = ServiceMetrics()
        metrics.device_utilization = [0.5, 0.25]
        snapshot = metrics.snapshot()
        snapshot["device_utilization"].append(1.0)
        assert metrics.device_utilization == [0.5, 0.25]

    def test_record_overlap_folds_fault_retries_additively(self):
        metrics = ServiceMetrics()
        report = OverlapReport(
            elapsed_ms=10.0,
            device_utilization=[1.0],
            fault_retries=3,
        )
        metrics.record_overlap(report)
        metrics.record_overlap(report)
        assert metrics.fault_retries == 6
        assert metrics.elapsed_ms == 10.0
        assert metrics.snapshot()["fault_retries"] == 6


class TestRequestMetricsAsDict:
    def test_every_counter_field_is_in_as_dict(self):
        flat = RequestMetrics(request_id=7).as_dict()
        # Clock fields surface as the derived queue_wait/latency pair;
        # window_size is reported under the shorter "window" key.
        renamed = {
            "submitted_at", "started_at", "completed_at", "window_size",
        }
        for field in dataclasses.fields(RequestMetrics):
            if field.name in renamed:
                continue
            assert field.name in flat, (
                f"RequestMetrics.{field.name} never reaches as_dict()"
            )
        assert {"queue_wait", "latency", "window"} <= set(flat)

    def test_fault_fields_default_to_zero(self):
        flat = RequestMetrics(request_id=7).as_dict()
        assert flat["degraded"] == 0
        assert flat["fault_retries"] == 0

    def test_derived_clocks(self):
        metrics = RequestMetrics(request_id=1, submitted_at=5)
        assert metrics.queue_wait is None and metrics.latency is None
        metrics.started_at = 9
        metrics.completed_at = 21
        assert metrics.queue_wait == 4
        assert metrics.latency == 16


class TestOverlapReportShape:
    def test_fault_counters_exist_with_zero_defaults(self):
        report = OverlapReport()
        assert report.fault_retries == 0
        assert report.fault_requeues == 0
        assert report.fault_fallbacks == 0
        assert report.quarantines == 0
        assert report.quarantine_wait_ms == 0.0

    def test_field_inventory(self):
        """The full report surface, pinned: removing or renaming a
        field breaks ServiceMetrics.record_overlap consumers."""
        names = {field.name for field in dataclasses.fields(OverlapReport)}
        assert names == {
            "elapsed_ms",
            "device_busy_ms",
            "device_utilization",
            "issued",
            "resolutions",
            "sync_fallbacks",
            "fault_retries",
            "fault_requeues",
            "fault_fallbacks",
            "quarantines",
            "quarantine_wait_ms",
        }
