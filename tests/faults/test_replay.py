"""Deterministic replay: the same seed reproduces the same chaos.

The injector is the only randomness in a faulted run, and it is
seeded; replaying an identical configuration against an identical
access sequence must reproduce the fault schedule, every counter and
— under the event engine — the elapsed time, bit for bit.  A
different seed must (for these rates) produce a different schedule.
"""

from __future__ import annotations

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering
from repro.core.assembly import Assembly
from repro.core.multidevice import MultiDeviceScheduler, PipelinedAssembly
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import CostModel
from repro.storage.events import AsyncIOEngine
from repro.storage.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template


def faulted_pipelined_run(fault_seed, n=40):
    db = generate_acob(n, seed=2)
    disk = MultiDeviceDisk(n_devices=2, pages_per_device=2048)
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects, store,
        InterObjectClustering(
            cluster_pages=64, disk_order=db.type_ids_depth_first()
        ),
        shared=db.shared_pool,
    )
    injector = FaultInjector(
        FaultConfig(
            seed=fault_seed,
            read_error_rate=0.1,
            latency_spike_rate=0.05,
            max_consecutive_failures=2,
        )
    ).attach(disk)
    retry = RetryPolicy(max_retries=2)
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        make_template(db),
        window_size=8,
        scheduler=MultiDeviceScheduler(disk),
        retry_policy=retry,
    )
    engine = AsyncIOEngine(disk, CostModel())
    driver = PipelinedAssembly(
        operator, engine, issue_depth=2, batch_pages=4, retry_policy=retry
    )
    emitted = driver.run()
    return injector, engine, driver, operator, emitted


class TestReplay:
    def test_same_seed_same_everything(self):
        a_inj, a_eng, a_drv, a_op, a_out = faulted_pipelined_run(77)
        b_inj, b_eng, b_drv, b_op, b_out = faulted_pipelined_run(77)

        assert a_inj.schedule == b_inj.schedule
        assert a_inj.stats.as_dict() == b_inj.stats.as_dict()
        assert a_eng.elapsed == b_eng.elapsed
        assert a_eng.busy_time() == b_eng.busy_time()
        assert a_op.stats.as_dict() == b_op.stats.as_dict()
        assert a_drv.stats.fault_retries == b_drv.stats.fault_retries
        assert a_drv.stats.fault_fallbacks == b_drv.stats.fault_fallbacks
        assert [c.root_oid for c in a_out] == [c.root_oid for c in b_out]
        assert a_drv.health.snapshot() == b_drv.health.snapshot()

    def test_different_seed_different_schedule(self):
        a_inj, a_eng, *_ = faulted_pipelined_run(77)
        c_inj, c_eng, *_ = faulted_pipelined_run(78)
        assert a_inj.schedule != c_inj.schedule

    def test_schedule_entries_are_replayable_records(self):
        injector, _eng, _drv, _op, _out = faulted_pipelined_run(77)
        assert injector.schedule, "this seed must inject something"
        for entry in injector.schedule:
            kind, op = entry[0], entry[1]
            assert kind in ("transient", "spike", "down")
            assert isinstance(op, int) and op >= 1
        # The log is ordered by the op counter.
        ops = [entry[1] for entry in injector.schedule]
        assert ops == sorted(ops)
