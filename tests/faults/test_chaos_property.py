"""Chaos property: transient faults + retries never change the answer.

The central robustness guarantee, property-tested the way the
exactness suite tests the event engine: for every scheduler,
clustering, window size, fault rate and injector seed, an assembly
run whose reads randomly fail (and are retried under a budget that
covers the injector's consecutive-failure bound) emits **bit-identical
complex objects** to the fault-free run — same roots in the same
order, same swizzled structure, same payloads, same fetch accounting.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.layout import layout_database
from repro.cluster.policies import (
    InterObjectClustering,
    IntraObjectClustering,
    Unclustered,
)
from repro.core.assembly import Assembly
from repro.core.multidevice import MultiDeviceScheduler, PipelinedAssembly
from repro.core.schedulers import make_scheduler
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import CostedDisk, CostModel
from repro.storage.events import AsyncIOEngine
from repro.storage.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template

SCHEDULERS = ("depth-first", "breadth-first", "elevator", "cscan")
CLUSTERINGS = ("inter-object", "intra-object", "unclustered")


def make_policy(name):
    if name == "inter-object":
        return InterObjectClustering(cluster_pages=64)
    if name == "intra-object":
        return IntraObjectClustering()
    return Unclustered()


def build_single(n, clustering, scheduler, window, retry=None):
    db = generate_acob(n, seed=2)
    disk = CostedDisk(n_pages=4096)
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects, store, make_policy(clustering),
        shared=db.shared_pool,
    )
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        make_template(db),
        window_size=window,
        scheduler=make_scheduler(
            scheduler,
            head_fn=lambda: disk.head_position,
            resident_fn=store.buffer.is_resident,
        ),
        retry_policy=retry,
    )
    return disk, store, operator


def fingerprint(emitted, ordered=True):
    """Everything observable about an emitted batch, hashable-flat.

    ``ordered=False`` drops the emission serial and sorts by root —
    the completion-driven driver may legitimately reorder emissions
    when issue-time faults force synchronous fallbacks, but each
    object must still be bit-identical.
    """
    out = []
    for cobj in emitted:
        walk = [
            (obj.oid, obj.ints, obj.ref_oids, sorted(obj.children))
            for obj in cobj.root.walk()
        ]
        serial = cobj.serial if ordered else None
        out.append(
            (cobj.root_oid, serial, cobj.fetches,
             cobj.shared_links, cobj.degraded, tuple(walk))
        )
    if not ordered:
        out.sort(key=repr)
    return out


@settings(max_examples=12, deadline=None)
@given(
    scheduler=st.sampled_from(SCHEDULERS),
    clustering=st.sampled_from(CLUSTERINGS),
    window=st.integers(min_value=1, max_value=12),
    n=st.integers(min_value=10, max_value=40),
    rate=st.sampled_from((0.05, 0.15, 0.3)),
    fault_seed=st.integers(min_value=0, max_value=2**16),
)
def test_faulted_run_is_bit_identical(
    scheduler, clustering, window, n, rate, fault_seed
):
    _disk, _store, clean_op = build_single(n, clustering, scheduler, window)
    clean = fingerprint(clean_op.execute())

    disk, store, operator = build_single(
        n, clustering, scheduler, window, retry=RetryPolicy(max_retries=2)
    )
    injector = FaultInjector(
        FaultConfig(
            seed=fault_seed,
            read_error_rate=rate,
            max_consecutive_failures=2,
        )
    ).attach(disk)
    chaotic = fingerprint(operator.execute())

    assert chaotic == clean
    assert operator.stats.fault_retries == injector.stats.transient_errors
    assert store.buffer.pinned_pages == 0


@settings(max_examples=8, deadline=None)
@given(
    window=st.integers(min_value=1, max_value=10),
    n=st.integers(min_value=10, max_value=30),
    rate=st.sampled_from((0.05, 0.2)),
    fault_seed=st.integers(min_value=0, max_value=2**16),
    issue_depth=st.integers(min_value=1, max_value=3),
    batch_pages=st.sampled_from((1, 4)),
)
def test_pipelined_faulted_run_is_bit_identical(
    window, n, rate, fault_seed, issue_depth, batch_pages
):
    """The completion-driven multi-device driver keeps the guarantee:
    issue-time retries, sync fallbacks and operator-level retries all
    converge on the fault-free output."""

    def build(inject):
        db = generate_acob(n, seed=2)
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=2048)
        store = ObjectStore(disk, BufferManager(disk))
        layout = layout_database(
            db.complex_objects, store,
            InterObjectClustering(
                cluster_pages=64, disk_order=db.type_ids_depth_first()
            ),
            shared=db.shared_pool,
        )
        retry = RetryPolicy(max_retries=2) if inject else None
        operator = Assembly(
            ListSource(layout.root_order),
            store,
            make_template(db),
            window_size=window,
            scheduler=MultiDeviceScheduler(disk),
            retry_policy=retry,
        )
        if inject:
            FaultInjector(
                FaultConfig(
                    seed=fault_seed,
                    read_error_rate=rate,
                    max_consecutive_failures=2,
                )
            ).attach(disk)
        engine = AsyncIOEngine(disk, CostModel())
        driver = PipelinedAssembly(
            operator,
            engine,
            issue_depth=issue_depth,
            batch_pages=batch_pages,
            retry_policy=retry,
        )
        return store, driver

    _store, clean_driver = build(inject=False)
    clean = fingerprint(clean_driver.run(), ordered=False)
    store, driver = build(inject=True)
    chaotic = fingerprint(driver.run(), ordered=False)
    assert chaotic == clean
    assert store.buffer.pinned_pages == 0
