"""The pipelined driver under device outages and exhausted retries."""

from __future__ import annotations

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering
from repro.core.assembly import Assembly
from repro.core.multidevice import MultiDeviceScheduler, PipelinedAssembly
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import CostModel
from repro.storage.events import AsyncIOEngine
from repro.storage.faults import (
    DownInterval,
    FaultConfig,
    FaultInjector,
    RetryPolicy,
)
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template


def build(n=40, n_devices=2, config=None, issue_retry=None, op_retry=None):
    db = generate_acob(n, seed=2)
    disk = MultiDeviceDisk(n_devices=n_devices, pages_per_device=2048)
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects, store,
        InterObjectClustering(
            cluster_pages=64, disk_order=db.type_ids_depth_first()
        ),
        shared=db.shared_pool,
    )
    injector = None
    if config is not None:
        injector = FaultInjector(config).attach(disk)
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        make_template(db),
        window_size=4 * n_devices,
        scheduler=MultiDeviceScheduler(disk),
        retry_policy=op_retry,
    )
    engine = AsyncIOEngine(disk, CostModel())
    driver = PipelinedAssembly(
        operator, engine, issue_depth=2, batch_pages=4,
        retry_policy=issue_retry,
    )
    return injector, engine, driver, operator, store


class TestDeviceDown:
    def test_outage_requeues_quarantines_and_recovers(self):
        outage = DownInterval(device=1, start=0.0, end=500.0)
        injector, engine, driver, operator, store = build(
            config=FaultConfig(down_intervals=(outage,)),
            issue_retry=RetryPolicy(max_retries=2),
            op_retry=RetryPolicy(max_retries=2),
        )
        emitted = driver.run()
        assert len(emitted) == 40
        assert injector.stats.down_rejections > 0
        assert driver.stats.fault_requeues > 0
        assert driver.health.total_quarantines() >= 1
        # The successful post-recovery read closed the breaker again.
        assert driver.health.available(1, engine.clock.now)
        # The run could not finish before the outage lifted.
        assert engine.elapsed > 500.0
        assert store.buffer.pinned_pages == 0

    def test_waiting_out_an_outage_when_nothing_else_pends(self):
        """With every pending device down, the driver advances the
        event clock to the recovery instead of spinning or dying."""
        outage = DownInterval(device=0, start=0.0, end=300.0)
        injector, engine, driver, _operator, _store = build(
            n=10, n_devices=1,
            config=FaultConfig(down_intervals=(outage,)),
            issue_retry=RetryPolicy(max_retries=2),
            op_retry=RetryPolicy(max_retries=2),
        )
        emitted = driver.run()
        assert len(emitted) == 10
        assert driver.stats.quarantine_wait_ms > 0
        assert engine.wait_time > 0
        assert engine.elapsed >= 300.0

    def test_output_matches_fault_free_run(self):
        _inj, _eng, clean_driver, _op, _store = build()
        expected = sorted(c.root_oid for c in clean_driver.run())
        outage = DownInterval(device=1, start=0.0, end=400.0)
        _inj2, _eng2, driver, _op2, _store2 = build(
            config=FaultConfig(down_intervals=(outage,)),
            issue_retry=RetryPolicy(max_retries=2),
            op_retry=RetryPolicy(max_retries=2),
        )
        assert sorted(c.root_oid for c in driver.run()) == expected


class TestExhaustedIssueRetries:
    def test_sync_fallback_lets_the_operator_policy_decide(self):
        """Zero issue-time retries force the synchronous fallback,
        where the operator's own (generous) policy still recovers."""
        injector, _engine, driver, operator, store = build(
            config=FaultConfig(
                seed=9, read_error_rate=0.1, max_consecutive_failures=2
            ),
            issue_retry=RetryPolicy(max_retries=0),
            op_retry=RetryPolicy(max_retries=3),
        )
        emitted = driver.run()
        assert len(emitted) == 40
        assert injector.stats.transient_errors > 0
        assert driver.stats.fault_fallbacks > 0
        assert operator.stats.fault_retries > 0
        assert store.buffer.pinned_pages == 0

    def test_issue_time_retries_absorb_faults(self):
        injector, _engine, driver, operator, store = build(
            config=FaultConfig(
                seed=9, read_error_rate=0.1, max_consecutive_failures=2
            ),
            issue_retry=RetryPolicy(max_retries=3),
            op_retry=RetryPolicy(max_retries=3),
        )
        emitted = driver.run()
        assert len(emitted) == 40
        assert driver.stats.fault_retries > 0
        # Generous issue-time retries mean no fallback was needed.
        assert driver.stats.fault_fallbacks == 0
        assert store.buffer.pinned_pages == 0
