"""The fault injector itself: gating, determinism, disk invariants."""

from __future__ import annotations

import pytest

from repro.errors import (
    DeviceDownError,
    DiskError,
    TransientReadError,
)
from repro.storage.costmodel import CostModel
from repro.storage.disk import SimulatedDisk
from repro.storage.events import AsyncIOEngine
from repro.storage.faults import DownInterval, FaultConfig, FaultInjector
from repro.storage.multidisk import MultiDeviceDisk


def make_disk(n_pages=64):
    return SimulatedDisk(n_pages=n_pages)


class TestConfig:
    def test_validation(self):
        with pytest.raises(DiskError):
            FaultConfig(read_error_rate=1.5)
        with pytest.raises(DiskError):
            FaultConfig(latency_spike_rate=-0.1)
        with pytest.raises(DiskError):
            FaultConfig(latency_spike_ms=-1.0)
        with pytest.raises(DiskError):
            FaultConfig(max_consecutive_failures=0)
        with pytest.raises(DiskError):
            DownInterval(device=0, start=5.0, end=5.0)
        with pytest.raises(DiskError):
            DownInterval(device=-1, start=0.0, end=1.0)

    def test_enabled(self):
        assert not FaultConfig().enabled
        assert FaultConfig(read_error_rate=0.1).enabled
        assert FaultConfig(always_fail_pages=frozenset({3})).enabled
        assert FaultConfig(
            down_intervals=(DownInterval(0, 0.0, 2.0),)
        ).enabled


class TestAttachment:
    def test_attach_detach(self):
        disk = make_disk()
        injector = FaultInjector(FaultConfig()).attach(disk)
        assert disk.fault_injector is injector
        injector.detach()
        assert disk.fault_injector is None

    def test_double_attach_rejected(self):
        disk = make_disk()
        FaultInjector(FaultConfig()).attach(disk)
        with pytest.raises(DiskError):
            FaultInjector(FaultConfig()).attach(disk)

    def test_detached_disk_is_fault_free(self):
        disk = make_disk()
        injector = FaultInjector(
            FaultConfig(always_fail_pages=frozenset({1}))
        ).attach(disk)
        with pytest.raises(TransientReadError):
            disk.read(1)
        injector.detach()
        disk.read(1)  # no longer gated


class TestNoOpAtRateZero:
    def test_idle_injector_changes_nothing(self):
        """An attached injector with all rates zero is invisible:
        identical stats, head positions and page payloads."""
        plain = make_disk()
        gated = make_disk()
        injector = FaultInjector(FaultConfig()).attach(gated)
        sequence = [5, 17, 3, 40, 3, 22]
        for page in sequence:
            a = plain.read(page)
            b = gated.read(page)
            assert a.page_id == b.page_id
        assert plain.stats.read_seeks == gated.stats.read_seeks
        assert plain.head_position == gated.head_position
        assert injector.stats.reads_seen == len(sequence)
        assert injector.stats.transient_errors == 0
        assert injector.injected_ms_total == 0.0
        assert injector.schedule == []


class TestFailedAttemptLeavesDiskUntouched:
    def test_no_seek_no_stats_on_fault(self):
        disk = make_disk()
        FaultInjector(
            FaultConfig(always_fail_pages=frozenset({30}))
        ).attach(disk)
        disk.read(10)
        head = disk.head_position
        stats = disk.stats.snapshot()
        with pytest.raises(TransientReadError):
            disk.read(30)
        assert disk.head_position == head
        assert disk.stats.reads == stats.reads
        assert disk.stats.read_seek_total == stats.read_seek_total

    def test_retried_read_charges_the_original_seek(self):
        plain = make_disk()
        gated = make_disk()
        FaultInjector(
            FaultConfig(read_error_rate=0.4, seed=7)
        ).attach(gated)
        for page in [9, 41, 2, 33, 12]:
            plain.read(page)
            while True:
                try:
                    gated.read(page)
                    break
                except TransientReadError:
                    continue
        assert gated.stats.read_seeks == plain.stats.read_seeks


class TestConsecutiveBound:
    def test_bound_forces_success(self):
        disk = make_disk()
        injector = FaultInjector(
            FaultConfig(
                always_fail_pages=frozenset({5}),
                max_consecutive_failures=3,
            )
        ).attach(disk)
        failures = 0
        for _ in range(10):
            try:
                disk.read(5)
                break
            except TransientReadError:
                failures += 1
        assert failures == 3
        assert injector.stats.transient_errors == 3
        # After the success the counter resets: it can fail again.
        with pytest.raises(TransientReadError):
            disk.read(5)

    def test_unbounded_always_fails(self):
        disk = make_disk()
        FaultInjector(
            FaultConfig(
                always_fail_pages=frozenset({5}),
                max_consecutive_failures=None,
            )
        ).attach(disk)
        for _ in range(20):
            with pytest.raises(TransientReadError):
                disk.read(5)

    def test_error_carries_page_and_attempt(self):
        disk = make_disk()
        FaultInjector(
            FaultConfig(always_fail_pages=frozenset({5}))
        ).attach(disk)
        with pytest.raises(TransientReadError) as first:
            disk.read(5)
        with pytest.raises(TransientReadError) as second:
            disk.read(5)
        assert first.value.page_id == 5
        assert first.value.attempt == 1
        assert second.value.attempt == 2


class TestDownIntervals:
    def test_outage_rejects_then_expires_on_op_clock(self):
        """Without a bound clock the injector counts attempts, so an
        outage ends after enough (failed) attempts."""
        disk = make_disk()
        injector = FaultInjector(
            FaultConfig(down_intervals=(DownInterval(0, 0.0, 4.0),))
        ).attach(disk)
        rejections = 0
        for _ in range(10):
            try:
                disk.read(7)
            except DeviceDownError as exc:
                assert exc.device == 0
                assert exc.retry_after == 4.0
                rejections += 1
        assert rejections == 3  # ops 1..3 fall inside [0, 4)
        assert injector.stats.down_rejections == 3

    def test_outage_scoped_to_one_device(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=32)
        FaultInjector(
            FaultConfig(down_intervals=(DownInterval(1, 0.0, 100.0),))
        ).attach(disk)
        disk.read(0)  # device 0 unaffected
        with pytest.raises(DeviceDownError):
            disk.read(disk.pages_per_device)  # first page of device 1

    def test_next_recovery(self):
        injector = FaultInjector(
            FaultConfig(down_intervals=(DownInterval(0, 2.0, 9.0),))
        )
        assert injector.next_recovery(0, 5.0) == 9.0
        assert injector.next_recovery(0, 9.0) is None
        assert injector.next_recovery(1, 5.0) is None


class TestSpikesAndEngine:
    def test_spikes_accumulate_injected_time(self):
        disk = make_disk()
        injector = FaultInjector(
            FaultConfig(latency_spike_rate=1.0, latency_spike_ms=10.0)
        ).attach(disk)
        for page in range(5):
            disk.read(page)
        assert injector.stats.latency_spikes == 5
        assert injector.injected_ms_total == 50.0

    def test_engine_folds_spikes_into_elapsed(self):
        def run(spike_rate):
            disk = make_disk()
            injector = FaultInjector(
                FaultConfig(
                    latency_spike_rate=spike_rate, latency_spike_ms=10.0
                )
            ).attach(disk)
            engine = AsyncIOEngine(disk, CostModel())
            for page in range(5):
                engine.issue(
                    0, lambda p=page: [disk.read(p)], payload=None
                )
            while not engine.idle():
                engine.wait_next()
            return engine, injector

        clean, _ = run(0.0)
        spiky, injector = run(1.0)
        assert injector.stats.latency_spikes == 5
        assert spiky.elapsed == clean.elapsed + 50.0

    def test_engine_binds_the_event_clock(self):
        disk = make_disk()
        injector = FaultInjector(FaultConfig()).attach(disk)
        assert injector.now == 0.0
        engine = AsyncIOEngine(disk, CostModel())
        engine.issue(0, lambda: [disk.read(3)], payload=None)
        while not engine.idle():
            engine.wait_next()
        assert injector.now == engine.clock.now > 0.0

    def test_charge_backoff_validates(self):
        injector = FaultInjector(FaultConfig())
        with pytest.raises(DiskError):
            injector.charge_backoff(-1.0)
        injector.charge_backoff(2.5)
        assert injector.stats.backoff_ms == 2.5
        assert injector.injected_ms_total == 2.5
