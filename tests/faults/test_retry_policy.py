"""The retry policy: bounds, backoff pricing, validation."""

from __future__ import annotations

import pytest

from repro.errors import DiskError
from repro.storage.costmodel import CostModel
from repro.storage.faults import RetryPolicy


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(DiskError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(DiskError):
            RetryPolicy(base_backoff_ms=-0.5)
        with pytest.raises(DiskError):
            RetryPolicy(backoff_multiplier=0.5)

    def test_zero_retries_is_legal(self):
        policy = RetryPolicy(max_retries=0)
        assert not policy.should_retry(0)


class TestBounds:
    def test_should_retry_counts_zero_based_attempts(self):
        policy = RetryPolicy(max_retries=3)
        assert policy.should_retry(0)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)


class TestBackoff:
    def test_explicit_base_grows_exponentially(self):
        policy = RetryPolicy(base_backoff_ms=4.0, backoff_multiplier=2.0)
        assert policy.backoff_ms(0) == 4.0
        assert policy.backoff_ms(1) == 8.0
        assert policy.backoff_ms(2) == 16.0

    def test_default_base_priced_through_the_cost_model(self):
        """base_backoff_ms=None derives settle + rotational latency
        from the model supplied at call time."""
        policy = RetryPolicy()
        model = CostModel()
        expected = model.settle + model.rotational_latency
        assert policy.backoff_ms(0, model) == expected
        assert policy.backoff_ms(1, model) == expected * 2.0
        # No model: falls back to the default CostModel.
        assert policy.backoff_ms(0) == expected

    def test_custom_model_changes_the_price(self):
        policy = RetryPolicy()
        slow = CostModel(settle=5.0, rotational_latency=20.0)
        assert policy.backoff_ms(0, slow) == 25.0

    def test_flat_backoff_with_multiplier_one(self):
        policy = RetryPolicy(base_backoff_ms=3.0, backoff_multiplier=1.0)
        assert policy.backoff_ms(5) == 3.0
