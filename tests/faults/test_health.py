"""The per-device circuit breaker."""

from __future__ import annotations

import pytest

from repro.errors import DiskError
from repro.storage.faults import DeviceHealthTracker


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(DiskError):
            DeviceHealthTracker(failure_threshold=0)
        with pytest.raises(DiskError):
            DeviceHealthTracker(cooldown=-1.0)


class TestBreaker:
    def test_threshold_opens_the_breaker(self):
        tracker = DeviceHealthTracker(
            n_devices=2, failure_threshold=3, cooldown=10.0
        )
        for _ in range(2):
            tracker.record_failure(0, now=5.0)
        assert tracker.available(0, 5.0)
        tracker.record_failure(0, now=5.0)
        assert not tracker.available(0, 5.0)
        assert tracker.quarantined_until(0) == 15.0
        # The cooldown expires on the clock, not on calls.
        assert tracker.available(0, 15.0)
        # The untouched device was never affected.
        assert tracker.available(1, 5.0)

    def test_success_closes_the_breaker(self):
        tracker = DeviceHealthTracker(failure_threshold=2, cooldown=50.0)
        tracker.record_failure(0, now=0.0)
        tracker.record_failure(0, now=0.0)
        assert not tracker.available(0, 1.0)
        tracker.record_success(0)
        assert tracker.available(0, 1.0)
        # And the consecutive count restarts from zero.
        tracker.record_failure(0, now=1.0)
        assert tracker.available(0, 1.0)

    def test_explicit_retry_after_opens_immediately(self):
        tracker = DeviceHealthTracker(failure_threshold=99)
        tracker.record_failure(0, now=2.0, retry_after=30.0)
        assert not tracker.available(0, 2.0)
        assert tracker.quarantined_until(0) == 30.0
        assert tracker.total_quarantines() == 1

    def test_shorter_retry_after_never_shrinks_quarantine(self):
        tracker = DeviceHealthTracker()
        tracker.record_failure(0, retry_after=40.0)
        tracker.record_failure(0, retry_after=10.0)
        assert tracker.quarantined_until(0) == 40.0
        assert tracker.total_quarantines() == 1

    def test_unknown_devices_created_on_first_touch(self):
        tracker = DeviceHealthTracker(n_devices=1)
        assert tracker.available(7, 0.0)
        tracker.record_failure(7, retry_after=5.0)
        assert not tracker.available(7, 0.0)


class TestRecoveryAndSnapshot:
    def test_next_recovery_is_the_earliest_reopening(self):
        tracker = DeviceHealthTracker(n_devices=3)
        assert tracker.next_recovery(0.0) is None
        tracker.record_failure(0, retry_after=20.0)
        tracker.record_failure(2, retry_after=8.0)
        assert tracker.next_recovery(0.0) == 8.0
        assert tracker.next_recovery(9.0) == 20.0
        assert tracker.next_recovery(25.0) is None

    def test_snapshot_shape(self):
        tracker = DeviceHealthTracker(n_devices=2)
        tracker.record_success(0)
        tracker.record_failure(1, retry_after=3.0)
        snap = tracker.snapshot()
        assert set(snap) == {0, 1}
        for record in snap.values():
            assert set(record) == {
                "consecutive_failures",
                "failures",
                "successes",
                "quarantines",
                "quarantined_until",
            }
        assert snap[0]["successes"] == 1
        assert snap[1]["quarantines"] == 1
