"""The device server under faults: sync sweep and overlapped runs."""

from __future__ import annotations

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering
from repro.service.device_server import DeviceServer
from repro.storage.buffer import BufferManager
from repro.storage.faults import (
    DownInterval,
    FaultConfig,
    FaultInjector,
    RetryPolicy,
)
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.store import ObjectStore
from repro.workloads.acob import generate_acob, make_template


def build_striped(n=40, n_devices=4, batch_pages=4, config=None,
                  register_kwargs=None):
    db = generate_acob(n, seed=2)
    disk = MultiDeviceDisk(
        n_devices=n_devices,
        pages_per_device=(7 * 64) // n_devices + 128,
    )
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects,
        store,
        InterObjectClustering(
            cluster_pages=64, disk_order=db.type_ids_depth_first()
        ),
        shared=db.shared_pool,
    )
    injector = None
    if config is not None:
        injector = FaultInjector(config).attach(disk)
    server = DeviceServer(store, batch_pages=batch_pages)
    template = make_template(db)
    kwargs = register_kwargs or {}
    half = n // 2
    first = server.register(layout.root_order[:half], template, **kwargs)
    second = server.register(layout.root_order[half:], template, **kwargs)
    return injector, store, server, first, second


class TestSynchronousSweep:
    def test_transient_faults_retried_same_results(self):
        _inj, _store, server, first, second = build_striped()
        server.run()
        expected = sorted(c.root.oid for c in first.output + second.output)

        injector, store, server, first, second = build_striped(
            config=FaultConfig(
                seed=3, read_error_rate=0.1, max_consecutive_failures=2
            ),
            register_kwargs=dict(retry_policy=RetryPolicy(max_retries=2)),
        )
        server.run()
        assert injector.stats.transient_errors > 0
        assert first.finished and second.finished
        got = sorted(c.root.oid for c in first.output + second.output)
        assert got == expected
        # Faults were absorbed somewhere: either a coalesced prefetch
        # fell back, or a per-reference fetch retried.
        retried = (
            first.assembly.stats.fault_retries
            + second.assembly.stats.fault_retries
        )
        assert retried + server.prefetch_fault_fallbacks > 0
        assert store.buffer.pinned_pages == 0

    def test_outage_waited_out_on_the_op_clock(self):
        """On the synchronous path only attempts tick the injector's
        op clock, so a retry budget covering the outage length ends
        it — each rejected probe advances the clock by one."""
        injector, store, server, first, second = build_striped(
            config=FaultConfig(
                down_intervals=(DownInterval(device=1, start=0.0, end=40.0),)
            ),
            register_kwargs=dict(retry_policy=RetryPolicy(max_retries=60)),
        )
        server.run()
        assert first.finished and second.finished
        assert len(first.output) + len(second.output) == 40
        assert injector.stats.down_rejections > 0
        assert store.buffer.pinned_pages == 0

    def test_queries_share_one_health_tracker(self):
        _inj, _store, server, first, second = build_striped()
        assert first.assembly._health is server.health
        assert second.assembly._health is server.health


class TestOverlapped:
    def test_transient_retries_on_device_timelines(self):
        _inj, _store, server, first, second = build_striped()
        server.run()
        expected = sorted(c.root.oid for c in first.output + second.output)

        injector, store, server, first, second = build_striped(
            config=FaultConfig(
                seed=3, read_error_rate=0.1, max_consecutive_failures=2
            ),
            register_kwargs=dict(retry_policy=RetryPolicy(max_retries=2)),
        )
        report = server.run_overlapped(
            issue_depth=2, retry_policy=RetryPolicy(max_retries=2)
        )
        assert first.finished and second.finished
        got = sorted(c.root.oid for c in first.output + second.output)
        assert got == expected
        assert injector.stats.transient_errors > 0
        assert report.fault_retries + report.fault_fallbacks > 0
        # The injected backoff landed on the device timelines.
        assert report.elapsed_ms > 0
        assert store.buffer.pinned_pages == 0

    def test_outage_requeues_and_waits_out_the_quarantine(self):
        injector, store, server, first, second = build_striped(
            config=FaultConfig(
                down_intervals=(
                    DownInterval(device=0, start=0.0, end=200.0),
                ),
            ),
            register_kwargs=dict(retry_policy=RetryPolicy(max_retries=2)),
        )
        report = server.run_overlapped(
            issue_depth=2, retry_policy=RetryPolicy(max_retries=2)
        )
        assert first.finished and second.finished
        assert len(first.output) + len(second.output) == 40
        assert injector.stats.down_rejections > 0
        assert report.fault_requeues > 0
        assert report.quarantines >= 1
        assert report.elapsed_ms >= 200.0
        assert store.buffer.pinned_pages == 0

    def test_fault_counters_fold_into_service_metrics(self):
        from repro.service.metrics import ServiceMetrics

        _injector, _store, server, _first, _second = build_striped(
            config=FaultConfig(
                seed=3, read_error_rate=0.1, max_consecutive_failures=2
            ),
            register_kwargs=dict(retry_policy=RetryPolicy(max_retries=2)),
        )
        report = server.run_overlapped(
            issue_depth=2, retry_policy=RetryPolicy(max_retries=2)
        )
        metrics = ServiceMetrics()
        metrics.record_overlap(report)
        assert metrics.fault_retries == report.fault_retries
        assert metrics.snapshot()["fault_retries"] == report.fault_retries
