"""The assembly operator under injected faults: retry and degradation."""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentConfig, build_layout
from repro.core.assembly import FAIL_FAST, PARTIAL, SKIP_OBJECT, Assembly
from repro.errors import AssemblyError, FaultError, RetriesExhaustedError
from repro.service.server import AssemblyService
from repro.storage.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.volcano.iterator import ListSource
from repro.workloads.acob import make_template


def build(n=30):
    config = ExperimentConfig(
        n_complex_objects=n,
        clustering="inter-object",
        scheduler="elevator",
        window_size=8,
        cluster_pages=64,
    )
    return build_layout(config)


def operator_for(db, layout, **kwargs):
    return Assembly(
        ListSource(layout.root_order),
        layout.store,
        make_template(db),
        window_size=8,
        scheduler="elevator",
        **kwargs,
    )


def leaf_only_page(db, layout):
    """A page holding only non-root components (degradable subtrees)."""
    store = layout.store
    roots = {co.root for co in db.complex_objects}
    by_page = {}
    oids = [oid for co in db.complex_objects for oid in co.objects]
    oids.extend(db.shared_pool)
    for oid in oids:
        by_page.setdefault(store.page_of(oid), set()).add(oid)
    for page, members in sorted(by_page.items()):
        if not members & roots:
            return page
    raise AssertionError("no root-free page in this layout")


class TestValidation:
    def test_unknown_mode_rejected(self):
        db, layout = build(n=3)
        with pytest.raises(AssemblyError):
            operator_for(db, layout, on_fault="explode")


class TestRetriesMaskFaults:
    def test_output_identical_to_fault_free_run(self):
        db, layout = build()
        expected = [c.root.oid for c in operator_for(db, layout).execute()]

        db2, layout2 = build()
        injector = FaultInjector(
            FaultConfig(seed=5, read_error_rate=0.15)
        ).attach(layout2.store.disk)
        operator = operator_for(
            db2, layout2, retry_policy=RetryPolicy(max_retries=3)
        )
        emitted = operator.execute()
        assert [c.root.oid for c in emitted] == expected
        for cobj in emitted:
            cobj.verify_swizzled()
        assert injector.stats.transient_errors > 0
        assert operator.stats.fault_retries > 0
        assert operator.stats.fault_retries == injector.stats.transient_errors
        assert operator.stats.fault_backoff_ms == injector.stats.backoff_ms
        assert operator.stats.fault_skipped == 0
        assert layout2.store.buffer.pinned_pages == 0

    def test_seek_accounting_unchanged_by_retries(self):
        """Failed attempts never move the head: the faulted-but-retried
        run charges exactly the seeks of the fault-free run."""
        db, layout = build()
        operator_for(db, layout).execute()
        clean = layout.store.disk.stats

        db2, layout2 = build()
        FaultInjector(
            FaultConfig(seed=5, read_error_rate=0.15)
        ).attach(layout2.store.disk)
        operator_for(
            db2, layout2, retry_policy=RetryPolicy(max_retries=3)
        ).execute()
        faulted = layout2.store.disk.stats
        assert faulted.read_seeks == clean.read_seeks
        assert faulted.reads == clean.reads
        assert faulted.pages_read == clean.pages_read


class TestFailFast:
    def test_no_policy_raises_the_fault(self):
        db, layout = build(n=10)
        FaultInjector(
            FaultConfig(seed=5, read_error_rate=0.3)
        ).attach(layout.store.disk)
        operator = operator_for(db, layout)  # no retry policy
        with pytest.raises(FaultError):
            operator.execute()

    def test_exhausted_retries_raise_with_context(self):
        db, layout = build(n=10)
        page = leaf_only_page(db, layout)
        FaultInjector(
            FaultConfig(
                always_fail_pages=frozenset({page}),
                max_consecutive_failures=None,
            )
        ).attach(layout.store.disk)
        operator = operator_for(
            db, layout, retry_policy=RetryPolicy(max_retries=2)
        )
        with pytest.raises(RetriesExhaustedError) as caught:
            operator.execute()
        assert caught.value.page_id == page
        assert caught.value.retries == 2


class TestSkipObject:
    def test_faulted_objects_skipped_rest_emitted(self):
        db, layout = build()
        page = leaf_only_page(db, layout)
        FaultInjector(
            FaultConfig(
                always_fail_pages=frozenset({page}),
                max_consecutive_failures=None,
            )
        ).attach(layout.store.disk)
        operator = operator_for(
            db, layout,
            retry_policy=RetryPolicy(max_retries=1),
            on_fault=SKIP_OBJECT,
        )
        emitted = operator.execute()
        stats = operator.stats
        assert stats.fault_skipped > 0
        assert len(emitted) + stats.fault_skipped == db.n_complex_objects
        assert stats.fault_skipped == stats.aborted
        # Skipped is all-or-nothing: nothing emitted is degraded.
        assert all(not c.degraded for c in emitted)
        for cobj in emitted:
            cobj.verify_swizzled()
        assert layout.store.buffer.pinned_pages == 0


class TestPartial:
    def test_degraded_objects_emitted_with_markers(self):
        db, layout = build()
        page = leaf_only_page(db, layout)
        FaultInjector(
            FaultConfig(
                always_fail_pages=frozenset({page}),
                max_consecutive_failures=None,
            )
        ).attach(layout.store.disk)
        operator = operator_for(
            db, layout,
            retry_policy=RetryPolicy(max_retries=1),
            on_fault=PARTIAL,
        )
        emitted = operator.execute()
        stats = operator.stats
        # Only non-root, predicate-free subtrees degrade; the faulted
        # page holds no roots, so every object still comes out.
        assert len(emitted) == db.n_complex_objects
        assert stats.degraded_emitted > 0
        assert stats.missing_components >= stats.degraded_emitted
        assert stats.fault_skipped == 0
        degraded = [c for c in emitted if c.degraded]
        assert len(degraded) == stats.degraded_emitted
        for cobj in degraded:
            assert cobj.missing_components > 0
        for cobj in emitted:
            if not cobj.degraded:
                assert cobj.missing_components == 0
                cobj.verify_swizzled()
        assert layout.store.buffer.pinned_pages == 0

    def test_partial_on_root_falls_back_to_skip(self):
        """A faulted root has no parent to hang a partial result on:
        the object is skipped even in partial mode."""
        db, layout = build(n=10)
        root_page = layout.store.page_of(db.complex_objects[0].root)
        FaultInjector(
            FaultConfig(
                always_fail_pages=frozenset({root_page}),
                max_consecutive_failures=None,
            )
        ).attach(layout.store.disk)
        operator = operator_for(
            db, layout,
            retry_policy=RetryPolicy(max_retries=1),
            on_fault=PARTIAL,
        )
        emitted = operator.execute()
        assert operator.stats.fault_skipped > 0
        assert (
            len(emitted) + operator.stats.fault_skipped
            == db.n_complex_objects
        )


class TestServiceIntegration:
    def test_degraded_results_surface_but_are_not_cached(self):
        db, layout = build()
        page = leaf_only_page(db, layout)
        FaultInjector(
            FaultConfig(
                always_fail_pages=frozenset({page}),
                max_consecutive_failures=None,
            )
        ).attach(layout.store.disk)
        service = AssemblyService(layout.store)
        template = make_template(db)
        kwargs = dict(
            retry_policy=RetryPolicy(max_retries=1), on_fault=PARTIAL
        )
        first = service.submit(layout.root_order, template, **kwargs)
        results = service.result(first)
        assert any(c.degraded for c in results)
        snapshot = service.metrics.snapshot()
        assert snapshot["objects_degraded"] > 0
        assert snapshot["fault_retries"] > 0
        assert service.request_metrics(first).degraded > 0

        # Degraded objects never entered the cache: resubmitting the
        # same roots misses for every degraded root.
        degraded_roots = {c.root_oid for c in results if c.degraded}
        second = service.submit(layout.root_order, template, **kwargs)
        service.result(second)
        hits = service.request_metrics(second).cache_hits
        assert hits == len(layout.root_order) - len(degraded_roots)
