"""Load shedding: SLO breaches bound the tail, overload counts too."""

from __future__ import annotations

import dataclasses

from repro.fabric import (
    PoissonArrivals,
    SheddingPolicy,
    build_sharded_fabric,
    open_loop_workload,
)
from repro.workloads.acob import generate_acob


def build(shedding, n=40, **kwargs):
    db = generate_acob(n, seed=2)
    kwargs.setdefault("n_shards", 1)
    kwargs.setdefault("replicas_per_shard", 1)
    # A bounded buffer budget makes admission serialize the backlog, so
    # completions (and therefore SLO observations) interleave with the
    # remaining arrivals instead of all landing after the last one.
    kwargs.setdefault("buffer_capacity", 64)
    kwargs.setdefault("max_waiting", 10_000)
    # No result cache: the workload wraps around the root population,
    # and zero-latency cache hits would mask the overload signal.
    kwargs.setdefault("cache_capacity", 0)
    return build_sharded_fabric(db, shedding=shedding, **kwargs)


def overload_specs(fabric, count=100, rate=10.0):
    """Arrivals ~2x faster than one replica serves, over a horizon
    long enough that completions interleave with later arrivals."""
    return open_loop_workload(
        fabric, PoissonArrivals(rate, seed=7), count, seed=7
    )


TIGHT = SheddingPolicy(target_ms=150.0, window=16, min_samples=8)


class TestSheddingUnderOverload:
    def test_breach_sheds_and_the_books_balance(self):
        fabric = build(TIGHT)
        specs = overload_specs(fabric)
        report = fabric.run(specs)
        assert report.shed_fraction > 0.0
        assert report.fleet.requests_shed == len(report.shed)
        assert all(r.shed_reason == "slo" for r in report.shed)
        assert all(r.results == [] for r in report.shed)
        slo = report.per_shard[0]["slo"]
        assert slo["breached"] or slo["recoveries"] > 0
        assert slo["breaches"] >= 1
        assert slo["observed"] == report.fleet.requests_completed

    def test_shedding_bounds_the_served_tail(self):
        shed = build(TIGHT)
        shed_report = shed.run(overload_specs(shed))
        plain = build(None)
        plain_report = plain.run(overload_specs(plain))
        assert plain_report.shed_fraction == 0.0
        assert shed_report.shed_fraction > 0.0
        assert shed_report.percentile_latency_ms(
            0.99
        ) < plain_report.percentile_latency_ms(0.99)

    def test_light_load_sheds_nothing(self):
        fabric = build(SheddingPolicy(target_ms=60_000.0))
        specs = open_loop_workload(
            fabric, PoissonArrivals(0.5, seed=3), 10, seed=3
        )
        report = fabric.run(specs)
        assert report.shed_fraction == 0.0
        slo = report.per_shard[0]["slo"]
        assert slo["breaches"] == 0 and not slo["breached"]


class TestPriorityExemption:
    def test_priority_requests_ride_out_the_breach(self):
        fabric = build(TIGHT)  # shed_priority defaults to False
        specs = [
            dataclasses.replace(spec, priority=(index % 2 == 1))
            for index, spec in enumerate(overload_specs(fabric))
        ]
        report = fabric.run(specs)
        slo_shed = [r for r in report.shed if r.shed_reason == "slo"]
        assert slo_shed  # the breach really happened
        assert all(not r.spec.priority for r in slo_shed)

    def test_shed_priority_flag_drops_priority_traffic_too(self):
        policy = dataclasses.replace(TIGHT, shed_priority=True)
        fabric = build(policy)
        specs = [
            dataclasses.replace(spec, priority=True)
            for spec in overload_specs(fabric)
        ]
        report = fabric.run(specs)
        assert any(
            r.spec.priority and r.shed_reason == "slo" for r in report.shed
        )


class TestAdmissionOverloadCountsAsShed:
    def test_wait_queue_overflow_sheds_with_the_overload_reason(self):
        """No SLO policy at all: a full admission wait queue still turns
        requests away, and the fabric books them as sheds."""
        fabric = build(
            None, buffer_capacity=64, max_waiting=1, n_shards=1
        )
        specs = open_loop_workload(
            fabric, [0.0] * 30, roots_per_request=2, seed=1
        )
        report = fabric.run(specs)
        overloaded = [
            r for r in report.shed if r.shed_reason == "overload"
        ]
        assert overloaded
        assert report.fleet.requests_shed == len(report.shed)
        # The replica's own admission metrics saw the rejections.
        assert report.replicas.requests_rejected == len(overloaded)
