"""Hedged requests: pricing, firing, winning, and loser cleanup."""

from __future__ import annotations

import pytest

from repro.errors import FabricError
from repro.fabric import (
    HedgePolicy,
    PoissonArrivals,
    build_sharded_fabric,
    open_loop_workload,
)
from repro.storage.costmodel import CostModel
from repro.workloads.acob import generate_acob

#: Round-robin placement on a shard whose replica 0 runs 6x slower:
#: half the primaries land on bad hardware, the hedge's bread and
#: butter.  Shortest-queue placement would route around the straggler
#: on its own, hiding exactly the pathology hedging exists for.
SLOW_PRIMARY = {(0, 0): 6.0}


def build(hedging, n=40, **kwargs):
    db = generate_acob(n, seed=2)
    kwargs.setdefault("n_shards", 1)
    kwargs.setdefault("replicas_per_shard", 2)
    kwargs.setdefault("placement", "round-robin")
    kwargs.setdefault("speed_factors", SLOW_PRIMARY)
    return build_sharded_fabric(db, hedging=hedging, **kwargs)


def run(fabric, count=16, rate=2.0):
    specs = open_loop_workload(
        fabric, PoissonArrivals(rate, seed=5), count, seed=5
    )
    return fabric.run(specs)


class TestHedgePolicy:
    def test_delay_is_priced_from_the_cost_model(self):
        model = CostModel()
        policy = HedgePolicy(
            multiplier=2.0, reads_per_object=7, seek_hint_pages=8
        )
        per_read = model.run_service_time(8, 1)
        assert policy.delay_ms(3, model) == pytest.approx(
            2.0 * 3 * 7 * per_read
        )

    def test_validation(self):
        with pytest.raises(FabricError):
            HedgePolicy(multiplier=0.0)
        with pytest.raises(FabricError):
            HedgePolicy(reads_per_object=0)


class TestHedgedRuns:
    def test_hedges_fire_win_and_cancel_their_losers(self):
        fabric = build(HedgePolicy(multiplier=1.0))
        report = run(fabric)
        fleet = report.fleet
        assert fleet.hedge_fired > 0
        assert fleet.hedge_won > 0
        assert fleet.hedge_won <= fleet.hedge_fired
        # Every fired hedge races two copies; exactly one loses and is
        # cancelled on the event clock (budget released, refs retracted).
        assert report.replicas.requests_cancelled == fleet.hedge_fired
        # Cleanup: nothing left outstanding, nothing left pinned.
        for shard in fabric.shards:
            for replica in shard.replicas:
                assert replica.depth == 0
                assert replica.store.buffer.pinned_pages == 0

    def test_hedging_cuts_the_tail_on_a_heterogeneous_shard(self):
        hedged = run(build(HedgePolicy(multiplier=1.0)))
        plain = run(build(None))
        assert plain.fleet.hedge_fired == 0
        # Same specs, same roots -> same content either way.
        for a, b in zip(hedged.requests, plain.requests):
            assert {c.root_oid for c in a.results} == {
                c.root_oid for c in b.results
            }
        assert hedged.percentile_latency_ms(
            0.99
        ) < plain.percentile_latency_ms(0.99)

    def test_hedged_results_are_complete(self):
        report = run(build(HedgePolicy(multiplier=1.0)))
        for request in report.served:
            assert {c.root_oid for c in request.results} == set(
                request.spec.roots
            )

    def test_single_replica_never_hedges(self):
        fabric = build(
            HedgePolicy(multiplier=1.0),
            replicas_per_shard=1,
            speed_factors=None,
        )
        report = run(fabric, count=10)
        assert report.fleet.hedge_fired == 0
        assert report.replicas.requests_cancelled == 0

    def test_won_by_hedge_marks_only_hedge_winners(self):
        report = run(build(HedgePolicy(multiplier=1.0)))
        for request in report.served:
            if request.won_by_hedge:
                assert request.hedged
                assert len(request.attempts) == 2
        assert (
            sum(1 for r in report.served if r.won_by_hedge)
            == report.fleet.hedge_won
        )

    def test_hedging_is_deterministic(self):
        def one():
            report = run(build(HedgePolicy(multiplier=1.0)))
            return (
                report.latencies_ms(),
                report.fleet.hedge_fired,
                report.fleet.hedge_won,
            )

        assert one() == one()
