"""Fabric run-loop behavior: routing, accounting, caching, determinism."""

from __future__ import annotations

import pytest

from repro.errors import FabricError
from repro.fabric import (
    PoissonArrivals,
    RequestSpec,
    build_sharded_fabric,
    open_loop_workload,
)
from repro.workloads.acob import generate_acob


def build(n=40, **kwargs):
    db = generate_acob(n, seed=2)
    return build_sharded_fabric(db, **kwargs)


def workload(fabric, rate=5.0, count=20, seed=0, **kwargs):
    return open_loop_workload(
        fabric, PoissonArrivals(rate, seed=seed), count, seed=seed, **kwargs
    )


class TestRouting:
    def test_requests_land_on_the_shard_owning_their_roots(self):
        fabric = build(n_shards=3, replicas_per_shard=1)
        report = fabric.run(workload(fabric, count=24))
        for request in report.served:
            for root in request.spec.roots:
                assert fabric.router.shard_of(root) == request.shard_id

    def test_open_loop_workload_never_spans_shards(self):
        fabric = build(n_shards=4, replicas_per_shard=1)
        specs = workload(fabric, count=40, roots_per_request=(1, 3))
        for spec in specs:
            owners = {fabric.router.shard_of(root) for root in spec.roots}
            assert len(owners) == 1

    def test_cross_shard_request_is_rejected(self):
        fabric = build(n_shards=2, replicas_per_shard=1)
        a = fabric.shards[0].roots[0]
        b = fabric.shards[1].roots[0]
        with pytest.raises(FabricError, match="spans shards"):
            fabric.run([RequestSpec(roots=(a, b))])

    def test_router_shard_mismatch_is_rejected_at_construction(self):
        fabric = build(n_shards=2, replicas_per_shard=1)
        from repro.fabric import ConsistentHashRouter, ServiceFabric

        with pytest.raises(FabricError, match="router spans"):
            ServiceFabric(
                fabric.shards, ConsistentHashRouter(3), fabric.template
            )


class TestAccounting:
    def test_submitted_splits_into_completed_plus_shed(self):
        fabric = build(n_shards=2, replicas_per_shard=2)
        specs = workload(fabric, count=30)
        report = fabric.run(specs)
        assert report.fleet.requests_submitted == len(specs)
        assert (
            report.fleet.requests_completed + report.fleet.requests_shed
            == len(specs)
        )
        assert len(report.served) == report.fleet.requests_completed
        assert report.fleet.latency_hist.count == len(report.served)

    def test_elapsed_is_the_furthest_replica_clock(self):
        fabric = build(n_shards=2, replicas_per_shard=2)
        report = fabric.run(workload(fabric, count=16))
        clocks = [
            r.clock for s in fabric.shards for r in s.replicas
        ]
        assert report.elapsed_ms == max(clocks)
        assert report.fleet.elapsed_ms == report.elapsed_ms

    def test_latencies_are_positive_and_the_report_sorts_them(self):
        fabric = build(n_shards=1, replicas_per_shard=1)
        report = fabric.run(workload(fabric, count=12))
        latencies = report.latencies_ms()
        assert latencies == sorted(latencies)
        assert all(lat >= 0 for lat in latencies)
        assert report.percentile_latency_ms(0.5) in latencies
        assert report.percentile_latency_ms(1.0) == latencies[-1]

    def test_per_shard_snapshots_cover_every_shard(self):
        fabric = build(n_shards=3, replicas_per_shard=2)
        report = fabric.run(workload(fabric, count=18))
        assert [view["shard"] for view in report.per_shard] == [0, 1, 2]
        for view in report.per_shard:
            assert view["slo"] is None  # no shedding policy configured
            assert view["replica_depths"] == [0, 0]  # drained
        assert sum(
            view["requests_submitted"] for view in report.per_shard
        ) == 18

    def test_empty_run(self):
        fabric = build(n=20, n_shards=2, replicas_per_shard=1)
        report = fabric.run([])
        assert report.requests == []
        assert report.elapsed_ms == 0.0
        assert report.shed_fraction == 0.0
        assert report.latencies_ms() == []


class TestResultCache:
    def test_repeat_request_is_served_on_arrival_from_the_cache(self):
        fabric = build(n_shards=1, replicas_per_shard=1)
        roots = tuple(fabric.shards[0].roots[:2])
        report = fabric.run(
            [
                RequestSpec(roots=roots, arrival_ms=0.0),
                RequestSpec(roots=roots, arrival_ms=1e6),
            ]
        )
        first, second = report.requests
        assert first.latency_ms > 0
        assert second.latency_ms == 0.0  # pure cache hit: done on arrival
        assert second.complete_ms == 1e6
        replica = fabric.shards[0].replicas[0]
        assert replica.service.metrics.cache_hits == len(roots)


class TestDeterminism:
    def test_identical_fabrics_produce_identical_reports(self):
        def run():
            fabric = build(n_shards=2, replicas_per_shard=2)
            report = fabric.run(
                workload(fabric, rate=10.0, count=25, seed=9)
            )
            return (
                report.latencies_ms(),
                report.per_shard,
                report.fleet.snapshot(),
                report.replicas.snapshot(),
            )

        assert run() == run()


class TestValidation:
    def test_request_spec_needs_roots_and_a_nonnegative_arrival(self):
        fabric = build(n=10, n_shards=1, replicas_per_shard=1)
        root = fabric.shards[0].roots[0]
        with pytest.raises(FabricError):
            RequestSpec(roots=())
        with pytest.raises(FabricError):
            RequestSpec(roots=(root,), arrival_ms=-1.0)

    def test_builder_rejects_nonpositive_replicas(self):
        db = generate_acob(10, seed=2)
        with pytest.raises(FabricError):
            build_sharded_fabric(db, replicas_per_shard=0)

    def test_builder_rejects_unknown_clustering_and_placement(self):
        db = generate_acob(10, seed=2)
        with pytest.raises(FabricError):
            build_sharded_fabric(db, clustering="zigzag")
        with pytest.raises(FabricError):
            build_sharded_fabric(db, placement="random")

    def test_workload_needs_a_count_with_a_process(self):
        fabric = build(n=10, n_shards=1, replicas_per_shard=1)
        with pytest.raises(FabricError):
            open_loop_workload(fabric, PoissonArrivals(1.0))
        with pytest.raises(FabricError):
            open_loop_workload(fabric, [0.0, 1.0], n_requests=3)
