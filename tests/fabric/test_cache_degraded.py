"""Degraded results never poison any cache, anywhere in the fabric.

PR 4's guarantee — a partially-assembled (degraded) object is returned
to its caller but never enters the result cache — re-proved across the
router path: a faulty replica serving hedged duplicates and primaries
under ``on_fault="partial"`` hands degraded objects to the fabric, and
every replica's LRU stays clean.
"""

from __future__ import annotations

from repro.fabric import (
    HedgePolicy,
    PoissonArrivals,
    RequestSpec,
    build_sharded_fabric,
    open_loop_workload,
)
from repro.storage.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.workloads.acob import generate_acob


def build_faulty_fabric(n=40, fault_seed=7):
    """1 shard x 2 replicas; replica 1 has a flaky disk and degrades
    on fault-budget exhaustion, replica 0 is slow enough that hedges
    (and half the round-robin primaries) land on the flaky one."""
    db = generate_acob(n, seed=2)
    fabric = build_sharded_fabric(
        db,
        n_shards=1,
        replicas_per_shard=2,
        placement="round-robin",
        speed_factors={(0, 0): 4.0},
        hedging=HedgePolicy(multiplier=1.0),
        max_waiting=10_000,
    )
    flaky = fabric.shards[0].replicas[1]
    injector = FaultInjector(
        FaultConfig(
            seed=fault_seed,
            read_error_rate=0.35,
            max_consecutive_failures=4,
        )
    ).attach(flaky.store.disk)
    flaky.submit_kwargs = {
        "retry_policy": RetryPolicy(max_retries=1),
        "on_fault": "partial",
    }
    return fabric, injector


def cache_entries(fabric):
    for shard in fabric.shards:
        for replica in shard.replicas:
            cache = replica.service.cache
            assert cache is not None
            yield from cache._entries.values()


class TestDegradedNeverCachedAcrossTheFabric:
    def test_faulty_hedged_run_keeps_every_cache_clean(self):
        fabric, injector = build_faulty_fabric()
        specs = open_loop_workload(
            fabric, PoissonArrivals(3.0, seed=5), 16, seed=5
        )
        report = fabric.run(specs)

        # Vacuity guards: faults fired, degraded objects were emitted,
        # hedges actually raced, and clean results did get cached.
        assert injector.stats.transient_errors > 0
        assert report.replicas.objects_degraded > 0
        assert report.fleet.hedge_fired > 0
        assert any(
            c.degraded for r in report.served for c in r.results
        )
        entries = list(cache_entries(fabric))
        assert entries

        for entry in entries:
            assert not entry.value.degraded

    def test_resubmitted_roots_are_reassembled_not_served_degraded(self):
        fabric, _injector = build_faulty_fabric()
        first = fabric.run(
            open_loop_workload(
                fabric, PoissonArrivals(3.0, seed=5), 16, seed=5
            )
        )
        degraded_roots = {
            cobj.root_oid
            for request in first.served
            for cobj in request.results
            if cobj.degraded
        }
        assert degraded_roots
        base = fabric.elapsed_ms + 1.0
        replay = [
            RequestSpec(roots=(root,), arrival_ms=base + i)
            for i, root in enumerate(sorted(degraded_roots, key=repr))
        ]
        second = fabric.run(replay)
        # A degraded answer was never cached, so the replay could not
        # have been served a stale degraded copy: anything that comes
        # back clean now proves re-assembly; anything degraded again
        # came from the still-flaky disk, not from a cache.
        for request in second.served:
            assert len(request.results) == 1
        for entry in cache_entries(fabric):
            assert not entry.value.degraded
