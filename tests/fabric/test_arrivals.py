"""Open-loop arrival processes: determinism, rates, burstiness."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.errors import FabricError
from repro.fabric.arrivals import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)


def gaps(times):
    return [b - a for a, b in zip([0.0] + times[:-1], times)]


class TestCommonContract:
    @pytest.mark.parametrize(
        "process",
        [
            PoissonArrivals(10.0, seed=3),
            MMPPArrivals(2.0, 80.0, seed=3),
            DiurnalArrivals(10.0, seed=3),
        ],
        ids=["poisson", "mmpp", "diurnal"],
    )
    def test_times_are_positive_increasing_and_replayable(self, process):
        times = process.times(200)
        assert len(times) == 200
        assert all(t > 0 for t in times)
        assert times == sorted(times)
        # times() restarts from the seed: same object, same stream.
        assert process.times(200) == times
        assert process.times(50) == times[:50]

    def test_different_seeds_differ(self):
        assert (
            PoissonArrivals(10.0, seed=1).times(50)
            != PoissonArrivals(10.0, seed=2).times(50)
        )

    def test_negative_count_rejected(self):
        with pytest.raises(FabricError):
            PoissonArrivals(1.0).times(-1)

    def test_zero_count_is_empty(self):
        assert PoissonArrivals(1.0).times(0) == []


class TestPoisson:
    def test_mean_gap_tracks_the_rate(self):
        rate = 20.0  # requests/s -> 50 ms mean gap
        times = PoissonArrivals(rate, seed=7).times(2000)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1000.0 / rate, rel=0.15)

    def test_rate_must_be_positive(self):
        with pytest.raises(FabricError):
            PoissonArrivals(0.0)


class TestMMPP:
    def test_burstier_than_poisson(self):
        """Gap coefficient of variation > 1: the signature of a
        Markov-modulated process with far-apart state rates (a plain
        Poisson stream has CoV == 1)."""
        times = MMPPArrivals(
            1.0, 100.0, mean_quiet_s=2.0, mean_burst_s=0.5, seed=11
        ).times(2000)
        gs = gaps(times)
        cov = statistics.pstdev(gs) / statistics.mean(gs)
        assert cov > 1.2

    def test_mean_rate_between_the_state_rates(self):
        times = MMPPArrivals(2.0, 50.0, seed=5).times(2000)
        rate = len(times) / (times[-1] / 1000.0)
        assert 2.0 < rate < 50.0

    def test_parameter_validation(self):
        with pytest.raises(FabricError):
            MMPPArrivals(0.0, 10.0)
        with pytest.raises(FabricError):
            MMPPArrivals(1.0, 10.0, mean_quiet_s=0.0)


class TestDiurnal:
    def test_rate_curve_peaks_and_troughs(self):
        process = DiurnalArrivals(10.0, amplitude=0.8, period_s=60.0)
        assert process.rate_at(15_000.0) == pytest.approx(18.0)  # peak
        assert process.rate_at(45_000.0) == pytest.approx(2.0)  # trough
        assert process.rate_at(0.0) == pytest.approx(10.0)

    def test_arrivals_follow_the_curve(self):
        """More arrivals land in high-rate half-periods than low-rate
        ones — the thinning actually thins."""
        process = DiurnalArrivals(
            10.0, amplitude=0.9, period_s=60.0, seed=13
        )
        high = low = 0
        for t in process.times(2000):
            phase = math.sin(2.0 * math.pi * (t / 1000.0) / 60.0)
            if phase > 0:
                high += 1
            else:
                low += 1
        assert high > 2 * low

    def test_amplitude_must_leave_a_positive_trough(self):
        with pytest.raises(FabricError):
            DiurnalArrivals(10.0, amplitude=1.0)
        with pytest.raises(FabricError):
            DiurnalArrivals(10.0, amplitude=-0.1)
