"""Fabric exactness: the sharded path degenerates to the plain service.

The acceptance anchor for the fabric layer, in the style of the event
engine and chaos exactness suites:

* With one shard, one replica, hedging off and every arrival at t=0,
  a fabric run is **bit-identical** to driving the underlying
  :class:`AssemblyService` directly — same per-request results, same
  disk statistics, same service-metrics snapshot.  Property-tested
  across clusterings, window sizes, batch sizes and database sizes.
* Arrival *timing* never changes *content*: the same specs delivered
  open-loop at Poisson times emit the same objects per request as the
  all-at-t=0 run (latencies differ, payloads do not).
* Sharding never changes content either: a 2-shard fabric covering
  every root emits the same set of assembled objects as a bare
  :class:`Assembly` operator over the unsharded layout, for every
  scheduler x clustering combination.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.layout import layout_database
from repro.core.assembly import Assembly
from repro.core.schedulers import make_scheduler
from repro.fabric import (
    PoissonArrivals,
    build_sharded_fabric,
    open_loop_workload,
)
from repro.fabric.builder import _make_policy
from repro.service.server import AssemblyService
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template

from tests.faults.test_chaos_property import (
    CLUSTERINGS,
    SCHEDULERS,
    fingerprint,
)

MAX_WAITING = 10_000  # keep admission out of the comparison


def build_direct(db, clustering, cluster_pages, buffer_capacity, batch_pages):
    """The unsharded reference: the builder's construction, by hand."""
    disk = SimulatedDisk()
    store = ObjectStore(disk, BufferManager(disk, capacity=buffer_capacity))
    layout = layout_database(
        list(db.complex_objects),
        store,
        _make_policy(clustering, cluster_pages, db),
        shared=db.shared_pool,
        seed=0,
        validate=False,
    )
    service = AssemblyService(
        store,
        cache_capacity=256,
        starvation_bound=64,
        max_waiting=MAX_WAITING,
        min_window=1,
        batch_pages=batch_pages,
    )
    return store, layout, service


def content_fingerprint(emitted):
    """Logical object content only — no serials, no fetch accounting —
    comparable across different layouts and drive orders."""
    out = []
    for cobj in emitted:
        walk = tuple(
            (obj.oid, obj.ints, obj.ref_oids, tuple(sorted(obj.children)))
            for obj in cobj.root.walk()
        )
        out.append((cobj.root_oid, cobj.degraded, walk))
    return sorted(out, key=repr)


@settings(max_examples=8, deadline=None)
@given(
    clustering=st.sampled_from(CLUSTERINGS),
    window=st.integers(min_value=1, max_value=8),
    batch_pages=st.sampled_from((1, 2, 4)),
    n=st.integers(min_value=10, max_value=30),
    buffer_capacity=st.sampled_from((None, 200)),
)
def test_degenerate_fabric_is_bit_identical_to_the_plain_service(
    clustering, window, batch_pages, n, buffer_capacity
):
    db = generate_acob(n, seed=2)
    fabric = build_sharded_fabric(
        db,
        n_shards=1,
        replicas_per_shard=1,
        clustering=clustering,
        cluster_pages=64,
        buffer_capacity=buffer_capacity,
        batch_pages=batch_pages,
        max_waiting=MAX_WAITING,
    )
    specs = open_loop_workload(
        fabric,
        [0.0] * (n // 2),
        roots_per_request=2,
        window_size=window,
        seed=3,
    )
    report = fabric.run(specs)
    assert not report.shed

    store, _layout, service = build_direct(
        db, clustering, 64, buffer_capacity, batch_pages
    )
    template = make_template(db)
    ids = [
        service.submit(
            list(spec.roots), template, window_size=spec.window_size
        )
        for spec in specs
    ]
    service.run()

    replica = fabric.shards[0].replicas[0]
    for request, request_id in zip(report.requests, ids):
        assert fingerprint(request.results) == fingerprint(
            service.result(request_id)
        )
    assert replica.store.disk.stats.snapshot() == store.disk.stats.snapshot()
    assert replica.service.metrics.snapshot() == service.metrics.snapshot()
    assert replica.store.buffer.pinned_pages == 0
    assert store.buffer.pinned_pages == 0


@settings(max_examples=6, deadline=None)
@given(
    clustering=st.sampled_from(CLUSTERINGS),
    window=st.integers(min_value=1, max_value=8),
    n=st.integers(min_value=12, max_value=30),
    rate=st.sampled_from((2.0, 20.0)),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_arrival_timing_never_changes_request_content(
    clustering, window, n, rate, seed
):
    def run(arrivals):
        db = generate_acob(n, seed=2)
        fabric = build_sharded_fabric(
            db,
            n_shards=1,
            replicas_per_shard=1,
            clustering=clustering,
            cluster_pages=64,
            max_waiting=MAX_WAITING,
        )
        specs = open_loop_workload(
            fabric,
            arrivals,
            roots_per_request=2,
            window_size=window,
            seed=4,
        )
        report = fabric.run(specs)
        assert not report.shed
        return report

    k = n // 2
    timed = run(PoissonArrivals(rate, seed=seed).times(k))
    batched = run([0.0] * k)
    for a, b in zip(timed.requests, batched.requests):
        assert a.spec.roots == b.spec.roots
        assert fingerprint(a.results, ordered=False) == fingerprint(
            b.results, ordered=False
        )


@settings(max_examples=8, deadline=None)
@given(
    scheduler=st.sampled_from(SCHEDULERS),
    clustering=st.sampled_from(CLUSTERINGS),
    window=st.integers(min_value=1, max_value=8),
    n=st.integers(min_value=10, max_value=24),
)
def test_sharded_content_matches_a_bare_assembly_run(
    scheduler, clustering, window, n
):
    """Full coverage through a 2-shard fabric emits exactly the objects
    a single bare Assembly operator emits over the unsharded layout,
    whatever core scheduler that operator uses."""
    db = generate_acob(n, seed=2)
    fabric = build_sharded_fabric(
        db,
        n_shards=2,
        replicas_per_shard=1,
        clustering=clustering,
        cluster_pages=64,
        max_waiting=MAX_WAITING,
    )
    specs = []
    from repro.fabric import RequestSpec

    for shard in fabric.shards:
        for i in range(0, len(shard.roots), 2):
            specs.append(
                RequestSpec(
                    roots=tuple(shard.roots[i : i + 2]),
                    window_size=window,
                )
            )
    report = fabric.run(specs)
    assert not report.shed
    fabric_objects = [
        cobj for request in report.served for cobj in request.results
    ]
    assert len(fabric_objects) == n

    db2 = generate_acob(n, seed=2)
    disk = SimulatedDisk()
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        list(db2.complex_objects),
        store,
        _make_policy(clustering, 64, db2),
        shared=db2.shared_pool,
        seed=0,
        validate=False,
    )
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        make_template(db2),
        window_size=window,
        scheduler=make_scheduler(
            scheduler,
            head_fn=lambda: disk.head_position,
            resident_fn=store.buffer.is_resident,
        ),
    )
    assert content_fingerprint(fabric_objects) == content_fingerprint(
        operator.execute()
    )
