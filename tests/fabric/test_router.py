"""Consistent-hash router: stability, balance, bounded key movement."""

from __future__ import annotations

import pytest

from repro.errors import FabricError
from repro.fabric.router import ConsistentHashRouter
from repro.workloads.acob import generate_acob


def root_oids(n=120):
    db = generate_acob(n, seed=2)
    return [cobj.root for cobj in db.complex_objects]


class TestDeterminism:
    def test_identical_routers_agree_on_every_oid(self):
        oids = root_oids()
        first = ConsistentHashRouter(4)
        second = ConsistentHashRouter(4)
        assert [first.shard_of(o) for o in oids] == [
            second.shard_of(o) for o in oids
        ]

    def test_placement_is_independent_of_query_order(self):
        oids = root_oids()
        router = ConsistentHashRouter(3)
        forward = {o: router.shard_of(o) for o in oids}
        backward = {o: router.shard_of(o) for o in reversed(oids)}
        assert forward == backward

    def test_salt_changes_the_ring(self):
        oids = root_oids()
        default = ConsistentHashRouter(4)
        salted = ConsistentHashRouter(4, salt=b"other-ring")
        assert [default.shard_of(o) for o in oids] != [
            salted.shard_of(o) for o in oids
        ]


class TestPartition:
    def test_partition_is_exhaustive_and_disjoint(self):
        oids = root_oids()
        parts = ConsistentHashRouter(4).partition(oids)
        assert len(parts) == 4
        assert sum(len(p) for p in parts) == len(oids)
        seen = [o for part in parts for o in part]
        assert sorted(seen, key=repr) == sorted(oids, key=repr)

    def test_partition_preserves_input_order(self):
        oids = root_oids()
        router = ConsistentHashRouter(3)
        for shard_id, part in enumerate(router.partition(oids)):
            expected = [o for o in oids if router.shard_of(o) == shard_id]
            assert part == expected

    def test_single_shard_partition_is_the_input_list(self):
        """The exactness anchor: one shard owns everything, in order."""
        oids = root_oids()
        parts = ConsistentHashRouter(1).partition(oids)
        assert parts == [oids]

    def test_empty_input(self):
        router = ConsistentHashRouter(2)
        assert router.partition([]) == [[], []]
        assert router.shares([]) == [0.0, 0.0]


class TestBalance:
    def test_shares_sum_to_one_and_no_shard_starves(self):
        shares = ConsistentHashRouter(4).shares(root_oids(240))
        assert sum(shares) == pytest.approx(1.0)
        # Virtual nodes keep every shard within a loose band of 1/4.
        for share in shares:
            assert 0.05 < share < 0.55

    def test_more_vnodes_do_not_break_coverage(self):
        oids = root_oids()
        shares = ConsistentHashRouter(4, vnodes=256).shares(oids)
        assert all(share > 0 for share in shares)


class TestBoundedMovement:
    def test_growing_the_ring_moves_few_keys(self):
        """N -> N+1 shards relocates roughly 1/(N+1) of keys, not all
        of them the way ``hash % N`` would."""
        oids = root_oids(240)
        before = ConsistentHashRouter(3)
        after = ConsistentHashRouter(4)
        moved = sum(
            1 for o in oids if before.shard_of(o) != after.shard_of(o)
        )
        assert moved / len(oids) < 0.5  # ideal ~0.25; generous bound
        # Every key that moved, moved *to* the new shard.
        for o in oids:
            if before.shard_of(o) != after.shard_of(o):
                assert after.shard_of(o) == 3


class TestValidation:
    def test_rejects_nonpositive_shards_and_vnodes(self):
        with pytest.raises(FabricError):
            ConsistentHashRouter(0)
        with pytest.raises(FabricError):
            ConsistentHashRouter(2, vnodes=0)
