"""Static audit: the trace-kind registry and its call sites agree.

``AssemblyTracer.record`` rejects unknown kinds at runtime, but only
on paths a test happens to execute.  This audit walks every source
file's AST instead: every ``trace.<CONST>`` the code mentions must be
registered in ``KINDS``, and every registered kind must actually be
emitted by some ``record(...)`` call — no typo'd constants, no dead
registry entries.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.core import trace

SRC = Path(__file__).parent.parent.parent / "src" / "repro"


def iter_source_trees():
    """(path, parsed module) for every file under src/repro."""
    for path in sorted(SRC.rglob("*.py")):
        yield path, ast.parse(path.read_text(), filename=str(path))


def trace_constants_used():
    """Every UPPERCASE attribute read off the ``trace`` module."""
    used = {}
    for path, tree in iter_source_trees():
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "trace"
                and node.attr.isupper()
            ):
                used.setdefault(node.attr, []).append(
                    f"{path.name}:{node.lineno}"
                )
    return used


def recorded_kinds():
    """Kind constants passed as the first argument of a record() call."""
    emitted = set()
    for _path, tree in iter_source_trees():
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "record"
                and node.args
            ):
                continue
            first = node.args[0]
            if (
                isinstance(first, ast.Attribute)
                and isinstance(first.value, ast.Name)
                and first.value.id == "trace"
            ):
                emitted.add(first.attr)
            elif isinstance(first, ast.IfExp):
                for branch in (first.body, first.orelse):
                    if isinstance(branch, ast.Attribute):
                        emitted.add(branch.attr)
    return emitted


class TestKindsAudit:
    def test_registry_matches_module_constants(self):
        """KINDS lists exactly the module's uppercase string constants."""
        declared = {
            name
            for name, value in vars(trace).items()
            if name.isupper() and isinstance(value, str) and name != "KINDS"
        }
        assert {getattr(trace, name) for name in declared} == set(trace.KINDS)
        assert len(trace.KINDS) == len(set(trace.KINDS))

    def test_every_used_constant_is_registered(self):
        used = trace_constants_used()
        unknown = {
            name: sites
            for name, sites in used.items()
            if getattr(trace, name, None) not in trace.KINDS
        }
        assert not unknown, f"unregistered trace kinds referenced: {unknown}"

    def test_every_registered_kind_is_emitted(self):
        emitted = {getattr(trace, name) for name in recorded_kinds()}
        dead = set(trace.KINDS) - emitted
        assert not dead, (
            f"kinds registered in core/trace.py but never passed to a "
            f"record() call anywhere in src: {sorted(dead)}"
        )
