"""Tests for the disk observer tap and per-device I/O timelines."""

import pytest

from repro.errors import ReproError
from repro.obs.devices import DeviceIOTimeline, IOSample
from repro.obs.spans import SpanRecorder
from repro.storage.disk import SimulatedDisk
from repro.storage.multidisk import MultiDeviceDisk


class TestIoObserverTap:
    def test_observer_sees_start_distance_pages(self):
        disk = SimulatedDisk()
        seen = []
        disk.add_io_observer(lambda s, d, n: seen.append((s, d, n)))
        disk.read(5)
        disk.read_run(10, 3)
        assert seen == [(5, 5, 1), (10, 10 - 5, 3)]

    def test_observers_are_additive_and_removable(self):
        disk = SimulatedDisk()
        first, second = [], []
        keep = disk.add_io_observer(lambda s, d, n: first.append(s))
        drop = disk.add_io_observer(lambda s, d, n: second.append(s))
        disk.read(1)
        disk.remove_io_observer(drop)
        disk.read(2)
        assert first == [1, 2] and second == [1]

    def test_observer_coexists_with_exclusive_listener(self):
        disk = SimulatedDisk()
        listened, observed = [], []
        disk.set_io_listener(lambda d, n: listened.append((d, n)))
        disk.add_io_observer(lambda s, d, n: observed.append((s, d, n)))
        disk.read(4)
        assert listened == [(4, 1)]
        assert observed == [(4, 4, 1)]

    def test_observing_changes_no_accounting(self):
        bare, tapped = SimulatedDisk(), SimulatedDisk()
        tapped.add_io_observer(lambda s, d, n: None)
        for disk in (bare, tapped):
            disk.read(7)
            disk.read_run(20, 4)
            disk.read(3)
        assert tapped.stats == bare.stats


class TestDeviceIOTimeline:
    def test_samples_single_device(self):
        disk = SimulatedDisk()
        with DeviceIOTimeline(disk) as timeline:
            disk.read(5)
            disk.read(9)
        disk.read(100)  # after detach: not sampled
        assert len(timeline) == 2
        assert timeline.devices() == [0]
        assert timeline.samples[0] == IOSample(
            at=0.0, device=0, start_page=5, distance=5, pages=1
        )

    def test_multidevice_attribution_per_chunk(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=8)
        timeline = DeviceIOTimeline(disk).attach()
        # A run crossing the device boundary splits into per-device
        # chunks; the observer sees each chunk's own start page.
        disk.read_run(6, 4)
        assert [s.device for s in timeline.samples] == [0, 1]
        assert [s.start_page for s in timeline.samples] == [6, 8]
        assert [s.pages for s in timeline.samples] == [2, 2]
        assert timeline.devices() == [0, 1]

    def test_attach_detach_idempotent(self):
        disk = SimulatedDisk()
        timeline = DeviceIOTimeline(disk).attach().attach()
        disk.read(1)
        assert len(timeline) == 1  # one tap, not two
        timeline.detach()
        timeline.detach()

    def test_clock_stamps_and_seek_timeline(self):
        disk = SimulatedDisk()
        clock = iter([10.0, 20.0])
        timeline = DeviceIOTimeline(disk, clock_fn=lambda: next(clock))
        timeline.attach()
        disk.read(3)
        disk.read(30)
        assert timeline.seek_timeline(0) == [(10.0, 3), (20.0, 27)]
        assert timeline.seek_timeline(1) == []

    def test_busy_and_utilization(self):
        disk = SimulatedDisk()
        clock = iter([0.0, 100.0])
        timeline = DeviceIOTimeline(disk, clock_fn=lambda: next(clock))
        timeline.attach()
        disk.read(3)
        disk.read(30)
        busy = timeline.busy_ms()
        assert busy > 0.0
        assert timeline.utilization() == {0: busy / 100.0}
        with pytest.raises(ReproError):
            timeline.utilization(span_ms=-1.0)

    def test_utilization_degenerate_span_uses_work_shares(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=8)
        timeline = DeviceIOTimeline(disk, clock_fn=lambda: 5.0).attach()
        disk.read(1)
        disk.read(9)
        shares = timeline.utilization()
        assert shares[0] > 0.0 and shares[1] > 0.0
        assert shares[0] + shares[1] == pytest.approx(1.0)

    def test_summary_rollup(self):
        disk = SimulatedDisk()
        timeline = DeviceIOTimeline(disk).attach()
        disk.read(5)
        disk.read_run(10, 3)
        summary = timeline.summary()
        assert set(summary) == {0}
        entry = summary[0]
        assert entry["reads"] == 2 and entry["pages"] == 4
        assert entry["seek_total"] == 5 + 5
        assert entry["avg_seek"] == pytest.approx(10 / 4)
        assert entry["busy_ms"] == timeline.busy_ms(0)

    def test_spans_tap_records_sample_spans(self):
        disk = SimulatedDisk()
        recorder = SpanRecorder(clock_fn=lambda: 1.0)
        timeline = DeviceIOTimeline(
            disk, clock_fn=lambda: 1.0, spans=recorder
        ).attach()
        disk.read(5)
        assert len(timeline) == 1
        (span,) = recorder.of_kind("device-io")
        assert span.name == "device-io-sample"
        assert span.attrs == {"page": 5, "seek": 5, "pages": 1}
