"""Golden-trace test: the paper's Figure 5 walkthrough, pinned.

Section 6.2's walkthrough — three complex objects assembled
depth-first through a window of two — is reproduced from the live
operator and compared *structurally* (kind, owner, object, template
label; never clock stamps or page ids, which are layout details) to a
committed fixture.  A change in admission, fetch or emission order
anywhere in the operator shows up here as a readable event-list diff.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.assembly import Assembly
from repro.core.trace import AssemblyTracer
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource

from tests.core.test_assembly import (
    figure4_database,
    figure4_template,
    lay_out_figure4,
)

FIXTURE = Path(__file__).parent / "fixtures" / "figure5_trace.json"


def run_walkthrough(clock_fn=None):
    """The Figure 5 configuration: 3 objects, depth-first, window 2."""
    store = ObjectStore(SimulatedDisk())
    builder = figure4_database(3)
    layout = lay_out_figure4(builder, store)
    tracer = AssemblyTracer(clock_fn=clock_fn)
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        figure4_template(),
        window_size=2,
        scheduler="depth-first",
        tracer=tracer,
    )
    emitted = operator.execute()
    return builder, emitted, tracer


def structural_rows(builder, tracer):
    """Fixture-comparable shape of a trace (no stamps, no pages)."""
    def name(oid):
        return f"{builder.registry.by_id(oid.type_id).name}{oid.serial}"

    return [
        {"kind": e.kind, "owner": e.owner, "object": name(e.oid),
         "label": e.label}
        for e in tracer
    ]


class TestGoldenFigure5:
    def test_walkthrough_matches_committed_fixture(self):
        builder, emitted, tracer = run_walkthrough()
        golden = json.loads(FIXTURE.read_text())
        assert len(emitted) == 3
        assert structural_rows(builder, tracer) == golden["events"]

    def test_fixture_tells_the_figure5_story(self):
        """Sanity-check the fixture itself: the walkthrough's shape is
        what Section 6.2 describes (fetch order A1 B1 D1 C1; window of
        two admitted before the first emission; one emission each)."""
        golden = json.loads(FIXTURE.read_text())["events"]
        fetches = [e["object"] for e in golden if e["kind"] == "fetched"]
        assert fetches[:4] == ["A1", "B1", "D1", "C1"]
        kinds = [e["kind"] for e in golden]
        assert kinds[:2] == ["admitted", "admitted"]  # window 2 fills
        assert kinds.count("emitted") == 3
        first_emit = kinds.index("emitted")
        assert kinds.index("admitted", 2) > first_emit - 1

    def test_clock_stamps_are_additive(self):
        """The same walkthrough with a bound clock carries monotone
        stamps and renders a time column — without one it stays the
        purely ordinal, historical trace."""
        ticks = iter(range(100))
        _b, _e, stamped = run_walkthrough(
            clock_fn=lambda: float(next(ticks))
        )
        stamps = [event.at for event in stamped]
        assert stamps == sorted(stamps) and stamps[0] == 0.0
        assert "t=" in stamped.summarize()
        _b2, _e2, plain = run_walkthrough()
        assert all(event.at == -1.0 for event in plain)
        assert "t=" not in plain.summarize()
        # Identical decision sequence either way.
        assert [e.kind for e in stamped] == [e.kind for e in plain]
