"""The observability layer's contract: watching changes nothing.

Property-tested the way the chaos suite tests fault tolerance: for
every scheduler, clustering, window size and fault rate, a run with a
span recorder attached (full or sampled) emits **bit-identical**
complex objects and leaves **bit-identical** disk statistics compared
to the bare run — and at the service level,
``ServiceMetrics.snapshot()`` (histograms included) is equal with
observability off, on, or sampled.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import ExperimentConfig, build_layout, run_experiment
from repro.cluster.layout import layout_database
from repro.core.assembly import Assembly
from repro.core.schedulers import make_scheduler
from repro.obs.spans import SpanRecorder
from repro.service.server import AssemblyService
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import CostedDisk
from repro.storage.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template

from tests.faults.test_chaos_property import (
    SCHEDULERS,
    CLUSTERINGS,
    fingerprint,
    make_policy,
)


def run_once(n, clustering, scheduler, window, recorder=None, fault_rate=0.0,
             fault_seed=0):
    """One assembly run, optionally instrumented and/or fault-injected.

    Returns ``(fingerprint, disk_stats)`` — everything observable.
    """
    db = generate_acob(n, seed=2)
    disk = CostedDisk(n_pages=4096)
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects, store, make_policy(clustering),
        shared=db.shared_pool,
    )
    retry = RetryPolicy(max_retries=2) if fault_rate else None
    if fault_rate:
        FaultInjector(
            FaultConfig(
                seed=fault_seed,
                read_error_rate=fault_rate,
                max_consecutive_failures=2,
            )
        ).attach(disk)
    kwargs = {}
    if recorder is not None:
        recorder.bind_clock(lambda: float(disk.stats.pages_read))
        kwargs["spans"] = recorder
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        make_template(db),
        window_size=window,
        scheduler=make_scheduler(
            scheduler,
            head_fn=lambda: disk.head_position,
            resident_fn=store.buffer.is_resident,
        ),
        retry_policy=retry,
        **kwargs,
    )
    return fingerprint(operator.execute()), disk.stats


@settings(max_examples=10, deadline=None)
@given(
    scheduler=st.sampled_from(SCHEDULERS),
    clustering=st.sampled_from(CLUSTERINGS),
    window=st.integers(min_value=1, max_value=10),
    n=st.integers(min_value=10, max_value=30),
    fault_rate=st.sampled_from((0.0, 0.15)),
    fault_seed=st.integers(min_value=0, max_value=2**16),
)
def test_tracing_never_changes_results_or_disk_stats(
    scheduler, clustering, window, n, fault_rate, fault_seed
):
    bare, bare_stats = run_once(
        n, clustering, scheduler, window,
        fault_rate=fault_rate, fault_seed=fault_seed,
    )
    full = SpanRecorder(sample_rate=1.0)
    traced, traced_stats = run_once(
        n, clustering, scheduler, window, recorder=full,
        fault_rate=fault_rate, fault_seed=fault_seed,
    )
    sampled = SpanRecorder(sample_rate=0.3)
    thinned, thinned_stats = run_once(
        n, clustering, scheduler, window, recorder=sampled,
        fault_rate=fault_rate, fault_seed=fault_seed,
    )
    # Bit-identical emissions and head movement, off / on / sampled.
    assert traced == bare and thinned == bare
    assert traced_stats == bare_stats and thinned_stats == bare_stats
    # The recorder actually observed the run, and sampling thinned it.
    assert full.of_kind("window-slot")
    assert len(sampled.of_kind("window-slot")) < len(
        full.of_kind("window-slot")
    )
    assert full.open_spans() == [] and sampled.open_spans() == []


def service_snapshot(recorder=None):
    """One deterministic multi-request service run; its observables."""
    config = ExperimentConfig(
        n_complex_objects=24,
        clustering="inter-object",
        scheduler="elevator",
        window_size=4,
        cluster_pages=64,
    )
    db, layout = build_layout(config)
    service = AssemblyService(layout.store, span_recorder=recorder)
    template = make_template(db)
    roots = layout.root_order
    first = service.submit(roots[:8], template, window_size=4)
    second = service.submit(roots[8:16], template, window_size=4)
    third = service.submit(roots[:8], template, window_size=4)  # cache path
    results = [
        fingerprint(service.result(request_id))
        for request_id in (first, second, third)
    ]
    per_request = [
        service.request_metrics(request_id).as_dict()
        for request_id in (first, second, third)
    ]
    return (
        results,
        per_request,
        service.metrics.snapshot(),
        layout.store.disk.stats,
    )


def test_service_snapshot_identical_off_on_sampled():
    """`ServiceMetrics.snapshot()` — streaming histograms included — is
    equal whether observability is off, fully on, or sampled down."""
    off = service_snapshot()
    on = service_snapshot(SpanRecorder(sample_rate=1.0))
    sampled = service_snapshot(SpanRecorder(sample_rate=0.25))
    assert on == off
    assert sampled == off
    snapshot = off[2]
    assert snapshot["latency_hist"]["count"] == 3
    assert snapshot["p99_latency"] is not None


def test_run_experiment_metrics_identical_with_recorder():
    """The bench harness path keeps the guarantee end to end."""
    config = ExperimentConfig(
        n_complex_objects=40, window_size=6, scheduler="elevator"
    )
    bare = run_experiment(config)
    recorder = SpanRecorder()
    traced = run_experiment(config, spans=recorder)
    assert traced == bare
    assert recorder.of_kind("assembly") and recorder.open_spans() == []
