"""Unit tests for the streaming histogram: accuracy, merge, identity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.obs.histograms import StreamingHistogram


class TestRecording:
    def test_empty_reads_as_none(self):
        histogram = StreamingHistogram()
        assert histogram.count == 0
        assert histogram.mean is None and histogram.p50 is None
        assert histogram.min is None and histogram.max is None

    def test_rejects_negative_and_nan(self):
        histogram = StreamingHistogram()
        with pytest.raises(ReproError):
            histogram.record(-1.0)
        with pytest.raises(ReproError):
            histogram.record(float("nan"))

    def test_rejects_bad_subbuckets(self):
        with pytest.raises(ReproError):
            StreamingHistogram(subbuckets=0)

    def test_exact_tails(self):
        histogram = StreamingHistogram()
        for value in [3.0, 100.0, 7.0, 0.0, 55.5]:
            histogram.record(value)
        assert histogram.min == 0.0
        assert histogram.max == 55.5 or histogram.max == 100.0
        assert histogram.max == 100.0
        assert histogram.percentile(1.0) == 100.0
        assert histogram.mean == pytest.approx(33.1)

    def test_zero_has_its_own_bucket(self):
        histogram = StreamingHistogram()
        for _ in range(10):
            histogram.record(0.0)
        histogram.record(1000.0)
        assert histogram.p50 == 0.0
        assert histogram.max == 1000.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=100),
           st.sampled_from((0.5, 0.9, 0.99)))
    def test_bounded_relative_error(self, values, fraction):
        """Interior quantiles land within the HDR error bound of the
        exact order statistic (tails are exact by construction)."""
        import math

        histogram = StreamingHistogram()
        for value in values:
            histogram.record(value)
        rank = max(1, math.ceil(fraction * len(values)))
        exact = sorted(values)[rank - 1]
        estimate = histogram.percentile(fraction)
        if exact == 0.0:
            assert estimate == 0.0
        else:
            bound = exact / (2 * histogram.subbuckets)
            assert abs(estimate - exact) <= bound * (1 + 1e-9)

    def test_subunit_values_sort_above_the_zero_bucket(self):
        """Regression: values below 0.5 have negative frexp exponents;
        without the exponent bias their buckets sorted *below* the
        reserved zero bucket and percentiles came out misordered."""
        histogram = StreamingHistogram()
        for value in (0.0, 0.25, 1.0):
            histogram.record(value)
        assert histogram.percentile(0.5) == pytest.approx(0.25, rel=0.04)

    def test_percentile_fraction_validation(self):
        histogram = StreamingHistogram()
        histogram.record(1.0)
        with pytest.raises(ReproError):
            histogram.percentile(0.0)
        with pytest.raises(ReproError):
            histogram.percentile(1.5)


class TestMergeAndIdentity:
    def test_merge_equals_single_stream(self):
        whole = StreamingHistogram()
        left, right = StreamingHistogram(), StreamingHistogram()
        for i in range(100):
            value = float(i * i % 97)
            whole.record(value)
            (left if i % 2 else right).record(value)
        left.merge(right)
        assert left == whole
        assert left.snapshot() == whole.snapshot()

    def test_merge_requires_same_geometry(self):
        with pytest.raises(ReproError):
            StreamingHistogram(subbuckets=8).merge(StreamingHistogram())

    def test_identical_streams_compare_bit_equal(self):
        """The non-interference suite leans on this: same inputs, same
        insertion order or not, identical histogram state."""
        a, b = StreamingHistogram(), StreamingHistogram()
        values = [0.0, 1.5, 1.5, 200.25, 3.0, 17.0]
        for value in values:
            a.record(value)
        for value in reversed(values):
            b.record(value)
        assert a == b

    def test_eq_against_other_types(self):
        assert StreamingHistogram() != "histogram"

    def test_to_dict_from_dict_round_trip(self):
        histogram = StreamingHistogram(subbuckets=8)
        for value in [0.0, 0.5, 12.0, 12.0, 9999.0]:
            histogram.record(value)
        clone = StreamingHistogram.from_dict(histogram.to_dict())
        assert clone == histogram
        assert clone.snapshot() == histogram.snapshot()

    def test_snapshot_keys(self):
        snapshot = StreamingHistogram().snapshot()
        assert set(snapshot) == {
            "count", "total", "mean", "min", "max", "p50", "p90", "p99",
        }
