"""Tests for the trace exporters, summaries, diffs, and the obs CLI."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.export import (
    chrome_trace_document,
    diff_spans,
    read_jsonl,
    render_summary,
    span_to_trace_event,
    summarize_spans,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.spans import Span, SpanRecorder


def sample_spans():
    recorder = SpanRecorder()
    with recorder.span("request", kind="request") as request:
        with recorder.span("fetch", parent=request, kind="fetch"):
            pass
    recorder.add("io", start=1.0, end=4.0, kind="device-io", device=2,
                 pages=3)
    recorder.begin("dangling")  # stays open
    return recorder.spans


class TestChromeExport:
    def test_event_shape(self):
        span = Span(name="s", span_id=4, parent_id=2, start=2.0, end=5.0,
                    kind="fetch", attrs={"oid": "A1"})
        event = span_to_trace_event(span)
        assert event["ph"] == "X"
        assert event["ts"] == 2000.0 and event["dur"] == 3000.0
        assert event["cat"] == "fetch" and event["tid"] == 0
        assert event["args"] == {"oid": "A1", "span_id": 4, "parent_id": 2}

    def test_device_becomes_track(self):
        span = Span(name="io", span_id=0, parent_id=None, start=0.0,
                    end=1.0, device=3)
        assert span_to_trace_event(span)["tid"] == 3

    def test_open_span_refuses_event_export(self):
        span = Span(name="open", span_id=0, parent_id=None, start=0.0)
        with pytest.raises(ReproError):
            span_to_trace_event(span)

    def test_document_skips_open_spans_visibly(self):
        document = chrome_trace_document(sample_spans())
        assert len(document["traceEvents"]) == 3
        assert document["otherData"]["open_spans_skipped"] == 1
        assert validate_chrome_trace(document) == []

    def test_write_and_validate_round_trip(self, tmp_path):
        path = write_chrome_trace(sample_spans(), tmp_path / "t.json")
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []

    def test_validator_reports_problems(self):
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"
        ]
        broken = {"traceEvents": [{"ph": "X", "dur": -1}]}
        problems = validate_chrome_trace(broken)
        assert any("missing" in p for p in problems)
        assert any("negative duration" in p for p in problems)


class TestJsonl:
    def test_round_trip_is_lossless(self, tmp_path):
        spans = sample_spans()
        path = write_jsonl(spans, tmp_path / "t.jsonl")
        assert read_jsonl(path) == spans

    def test_blank_lines_skipped_garbage_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("\n" + json.dumps(
            Span(name="s", span_id=0, parent_id=None, start=0.0,
                 end=1.0).to_dict()
        ) + "\n")
        assert len(read_jsonl(path)) == 1
        path.write_text("{not json}\n")
        with pytest.raises(ReproError, match="not a span record"):
            read_jsonl(path)


class TestSummaries:
    def test_summarize_counts_and_open(self):
        summary = summarize_spans(sample_spans())
        assert summary["request"]["count"] == 1
        assert summary["dangling"]["open"] == 1
        assert summary["dangling"]["count"] == 0
        assert summary["io"]["p50"] == 3.0

    def test_render_summary_table(self):
        text = render_summary(sample_spans())
        assert "request" in text and "dangling" in text
        assert render_summary([]) == "(no spans)"


class TestDiff:
    def test_equivalent_traces_have_no_diff(self):
        assert diff_spans(sample_spans(), sample_spans()) == []

    def test_ids_do_not_matter_structure_does(self):
        a = [Span(name="s", span_id=10, parent_id=None, start=0.0, end=1.0)]
        b = [Span(name="s", span_id=99, parent_id=None, start=5.0, end=6.0)]
        assert diff_spans(a, b) == []
        assert diff_spans(a, b, with_timing=True) != []

    def test_structural_difference_and_count_mismatch(self):
        a = sample_spans()
        b = sample_spans()
        b[1].name = "other"
        differences = diff_spans(a, b)
        assert any("span 1" in line for line in differences)
        assert any("count differs" in line
                   for line in diff_spans(a, b[:-1]))

    def test_limit_caps_output(self):
        a = [Span(name=f"a{i}", span_id=i, parent_id=None, start=0.0,
                  end=1.0) for i in range(5)]
        b = [Span(name=f"b{i}", span_id=i, parent_id=None, start=0.0,
                  end=1.0) for i in range(5)]
        differences = diff_spans(a, b, limit=2)
        assert len(differences) == 3
        assert "more difference" in differences[-1]


class TestCli:
    def run(self, *argv):
        from repro.obs.__main__ import main

        return main(list(argv))

    def test_render_summarize_diff_pipeline(self, tmp_path, capsys):
        log = tmp_path / "t.jsonl"
        write_jsonl(sample_spans(), log)
        out = tmp_path / "t.json"
        assert self.run("render", str(log), "-o", str(out)) == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []
        assert self.run("summarize", str(log)) == 0
        assert "request" in capsys.readouterr().out
        assert self.run("diff", str(log), str(log)) == 0

    def test_diff_exits_nonzero_on_difference(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        spans = sample_spans()
        write_jsonl(spans, a)
        spans[0].name = "mutated"
        write_jsonl(spans, b)
        assert self.run("diff", str(a), str(b)) == 1
