"""Unit tests for the span recorder: nesting, clocks, sampling."""

import pytest

from repro.errors import ReproError
from repro.obs.spans import NULL_SPAN, Span, SpanRecorder


class TestSpanBasics:
    def test_begin_end_stamps_and_duration(self):
        clock = iter([10.0, 17.0])
        recorder = SpanRecorder(clock_fn=lambda: next(clock))
        span = recorder.begin("work", kind="request")
        assert not span.finished and span.duration == 0.0
        recorder.end(span, outcome="done")
        assert span.finished
        assert (span.start, span.end) == (10.0, 17.0)
        assert span.duration == 7.0
        assert span.attrs["outcome"] == "done"

    def test_parenting(self):
        recorder = SpanRecorder()
        parent = recorder.begin("outer")
        child = recorder.begin("inner", parent=parent)
        assert child.parent_id == parent.span_id
        assert recorder.children_of(parent) == [child]
        assert recorder.roots() == [parent]

    def test_double_end_rejected(self):
        recorder = SpanRecorder()
        span = recorder.begin("once")
        recorder.end(span)
        with pytest.raises(ReproError):
            recorder.end(span)

    def test_context_manager_closes_on_exception(self):
        recorder = SpanRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("risky"):
                raise RuntimeError("boom")
        assert recorder.open_spans() == []
        assert recorder.spans[0].finished

    def test_fallback_clock_is_a_step_counter(self):
        recorder = SpanRecorder()
        first = recorder.begin("a")
        second = recorder.begin("b")
        assert not recorder.clock_bound
        assert second.start == first.start + 1

    def test_bind_clock_first_binding_wins(self):
        recorder = SpanRecorder()
        recorder.bind_clock(lambda: 5.0)
        recorder.bind_clock(lambda: 99.0)
        assert recorder.now() == 5.0
        recorder.bind_clock(lambda: 99.0, force=True)
        assert recorder.now() == 99.0

    def test_add_records_explicit_stamps(self):
        recorder = SpanRecorder(clock_fn=lambda: 0.0)
        span = recorder.add("io", start=3.0, end=9.5, kind="device-io",
                            device=2, pages=4)
        assert span.finished and span.duration == 6.5
        assert span.device == 2 and span.attrs["pages"] == 4

    def test_event_is_zero_duration(self):
        recorder = SpanRecorder(clock_fn=lambda: 42.0)
        span = recorder.event("retry", kind="retry")
        assert span.start == span.end == 42.0

    def test_queries_and_clear(self):
        recorder = SpanRecorder()
        with recorder.span("a", kind="x"):
            pass
        recorder.begin("b", kind="y")
        assert len(recorder) == 2
        assert [s.name for s in recorder.finished()] == ["a"]
        assert [s.name for s in recorder.of_kind("y")] == ["b"]
        assert [s.name for s in recorder.of_name("a")] == ["a"]
        assert recorder.phase_totals() == {"a": 1.0}
        recorder.clear()
        assert len(recorder) == 0 and recorder.sample_candidates == 0

    def test_to_dict_from_dict_round_trip(self):
        span = Span(name="s", span_id=3, parent_id=1, start=1.0, end=2.0,
                    kind="k", device=1, attrs={"n": 7})
        assert Span.from_dict(span.to_dict()) == span


class TestSampling:
    def test_rate_validation(self):
        with pytest.raises(ReproError):
            SpanRecorder(sample_rate=1.5)

    def test_quarter_rate_keeps_every_fourth_deterministically(self):
        recorder = SpanRecorder(sample_rate=0.25)
        kept = [recorder.begin("slot", sample=True) is not NULL_SPAN
                for _ in range(16)]
        assert kept.count(True) == 4
        # Counter-based, not random: a second recorder agrees exactly.
        again = SpanRecorder(sample_rate=0.25)
        assert kept == [again.begin("slot", sample=True) is not NULL_SPAN
                        for _ in range(16)]
        assert recorder.sampled_out == 12

    def test_zero_rate_drops_all_full_rate_keeps_all(self):
        nothing = SpanRecorder(sample_rate=0.0)
        assert all(nothing.begin("s", sample=True) is NULL_SPAN
                   for _ in range(5))
        everything = SpanRecorder(sample_rate=1.0)
        assert all(everything.begin("s", sample=True) is not NULL_SPAN
                   for _ in range(5))

    def test_null_span_drops_whole_subtree(self):
        recorder = SpanRecorder(sample_rate=0.0)
        dropped = recorder.begin("slot", sample=True)
        child = recorder.begin("fetch", parent=dropped)
        grandchild = recorder.begin("io", parent=child)
        assert dropped is child is grandchild is NULL_SPAN
        recorder.end(grandchild)  # all no-ops
        recorder.end(child)
        recorder.end(dropped)
        assert len(recorder) == 0

    def test_unsampled_structural_spans_never_dropped(self):
        recorder = SpanRecorder(sample_rate=0.0)
        assert recorder.begin("request") is not NULL_SPAN
        assert recorder.event("e", parent=NULL_SPAN) is NULL_SPAN
