"""SLOTracker: windowed percentiles, hysteresis, counters."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.obs.slo import SLOTracker


def tracker(**kwargs):
    kwargs.setdefault("target_ms", 100.0)
    kwargs.setdefault("window", 8)
    kwargs.setdefault("min_samples", 8)
    return SLOTracker(**kwargs)


class TestWarmup:
    def test_silent_below_min_samples(self):
        t = tracker()
        for _ in range(7):
            assert t.observe(10_000.0) is False
        assert t.current() is None
        assert not t.breached
        assert t.breaches == 0

    def test_observed_counts_lifetime_not_window(self):
        t = tracker(window=4, min_samples=4)
        for _ in range(20):
            t.observe(1.0)
        assert t.observed == 20
        assert len(t._recent) == 4


class TestBreachAndRecovery:
    def test_slow_window_trips_exactly_once(self):
        t = tracker()
        states = [t.observe(150.0) for _ in range(12)]
        assert states[:7] == [False] * 7  # warming up
        assert all(states[7:])  # tripped at min_samples, stays tripped
        assert t.breaches == 1
        assert t.recoveries == 0

    def test_hysteresis_holds_the_breach_in_the_gray_zone(self):
        """Target 100, recover_ratio 0.8: a windowed percentile of 90
        is below target but above the recovery bar — still breached."""
        t = tracker(recover_ratio=0.8)
        for _ in range(8):
            t.observe(150.0)
        assert t.breached
        for _ in range(8):  # the window is now entirely 90s
            t.observe(90.0)
        assert t.breached
        assert t.recoveries == 0

    def test_recovery_below_the_bar(self):
        t = tracker(recover_ratio=0.8)
        for _ in range(8):
            t.observe(150.0)
        for _ in range(8):
            t.observe(10.0)
        assert not t.breached
        assert t.breaches == 1 and t.recoveries == 1

    def test_fresh_tracker_never_recovers_without_a_breach(self):
        t = tracker()
        for _ in range(20):
            t.observe(1.0)
        assert t.recoveries == 0 and t.breaches == 0


class TestPercentile:
    def test_windowed_percentile_is_exact_over_the_ring(self):
        t = tracker(percentile=0.5, window=9, min_samples=9)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0):
            t.observe(value)
        assert t.current() == 5.0
        t.observe(100.0)  # pushes 1.0 out of the window
        assert t.current() == 6.0

    def test_old_samples_age_out(self):
        t = tracker(window=8, min_samples=8)
        for _ in range(8):
            t.observe(1_000.0)
        for _ in range(8):
            t.observe(1.0)
        assert t.current() == 1.0


class TestSnapshotAndValidation:
    def test_snapshot_surface(self):
        t = tracker()
        t.observe(50.0)
        snap = t.snapshot()
        assert snap == {
            "target_ms": 100.0,
            "percentile": 0.99,
            "window": 8,
            "current": None,
            "breached": False,
            "observed": 1,
            "breaches": 0,
            "recoveries": 0,
        }

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            SLOTracker(target_ms=0.0)
        with pytest.raises(ReproError):
            SLOTracker(target_ms=1.0, percentile=1.5)
        with pytest.raises(ReproError):
            SLOTracker(target_ms=1.0, window=0)
        with pytest.raises(ReproError):
            SLOTracker(target_ms=1.0, recover_ratio=0.0)
        with pytest.raises(ReproError):
            SLOTracker(target_ms=1.0, min_samples=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ReproError):
            tracker().observe(-1.0)
