"""Operator-level spans: observability flows through the plan layer.

The assembly operator forwards every engine knob to the inner engine,
including the span recorder — so a plan-wrapped assembly is observable
exactly like the bare driver, and parallel assembly records one
assembly span per partition.  The non-interference contract from the
obs layer must hold at operator level too: recording spans leaves row
output and disk accounting bit-identical.
"""

from __future__ import annotations

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering
from repro.fabric.parallel import build_replica_partitions
from repro.obs.spans import SpanRecorder
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.assembly import AssemblyOperator, ParallelAssembly
from repro.volcano.filters import Filter
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template


def laid_out_store():
    db = generate_acob(10, seed=11)
    store = ObjectStore(SimulatedDisk())
    layout = layout_database(
        db.complex_objects,
        store,
        InterObjectClustering(cluster_pages=32),
        shared=db.shared_pool,
    )
    return db, store, layout


def stats_tuple(disk):
    stats = disk.stats
    return (
        stats.reads,
        stats.pages_read,
        stats.read_seek_total,
        stats.run_reads,
        stats.busy_ms,
    )


class TestOperatorSpans:
    def test_plan_wrapped_assembly_records_spans(self):
        db, store, layout = laid_out_store()
        recorder = SpanRecorder()
        plan = Filter(
            AssemblyOperator(
                ListSource(layout.root_order),
                store,
                make_template(db),
                window_size=2,
                spans=recorder,
            ),
            lambda _row: True,
        )
        rows = plan.execute()
        assert len(rows) == 10
        assert recorder.of_kind("assembly")
        assert recorder.open_spans() == []

    def test_reopen_records_a_fresh_assembly_span(self):
        db, store, layout = laid_out_store()
        recorder = SpanRecorder()
        operator = AssemblyOperator(
            ListSource(layout.root_order),
            store,
            make_template(db),
            window_size=2,
            spans=recorder,
        )
        operator.execute()
        operator.execute()
        assert len(recorder.of_kind("assembly")) == 2

    def test_parallel_assembly_spans_one_per_partition(self):
        db, store, layout = laid_out_store()
        replicas = build_replica_partitions(layout, 3, costed=False)
        recorder = SpanRecorder()
        parallel = ParallelAssembly(
            ListSource(layout.root_order),
            [replica.store for replica in replicas],
            make_template(db),
            window_size=2,
            spans=recorder,
        )
        rows = parallel.execute()
        assert len(rows) == 10
        assert len(recorder.of_kind("assembly")) == 3
        assert recorder.open_spans() == []

    def test_recording_does_not_perturb_rows_or_stats(self):
        def run(recorder):
            db, store, layout = laid_out_store()
            kwargs = dict(window_size=2)
            if recorder is not None:
                kwargs["spans"] = recorder
            rows = AssemblyOperator(
                ListSource(layout.root_order),
                store,
                make_template(db),
                **kwargs,
            ).execute()
            return (
                [row.root_oid for row in rows],
                stats_tuple(store.disk),
            )

        assert run(None) == run(SpanRecorder())
