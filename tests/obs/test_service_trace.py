"""End-to-end span traces through the service and device server."""

import json

import pytest

from repro.bench.harness import ExperimentConfig, build_layout
from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering
from repro.core.assembly import Assembly
from repro.core.tuning import pin_bound
from repro.errors import ServiceStateError
from repro.obs.demo import demo_service_run
from repro.obs.export import read_jsonl, validate_chrome_trace
from repro.obs.spans import SpanRecorder
from repro.service.device_server import DeviceServer
from repro.service.server import AssemblyService
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template


def build_service(recorder, n=20, **service_kwargs):
    config = ExperimentConfig(
        n_complex_objects=n, window_size=4, cluster_pages=64
    )
    db, layout = build_layout(config)
    service = AssemblyService(
        layout.store, span_recorder=recorder, **service_kwargs
    )
    return db, layout, service


class TestServiceSpans:
    def test_request_assembly_slot_hierarchy(self):
        recorder = SpanRecorder()
        db, layout, service = build_service(recorder)
        template = make_template(db)
        request = service.submit(layout.root_order[:6], template,
                                 window_size=3)
        service.result(request)
        (request_span,) = recorder.of_kind("request")
        assert request_span.attrs["request_id"] == request
        assert request_span.attrs["outcome"] == "done"
        (assembly_span,) = recorder.of_kind("assembly")
        assert assembly_span.parent_id == request_span.span_id
        assert assembly_span.attrs["window"] == 3
        slots = recorder.of_kind("window-slot")
        assert len(slots) == 6
        assert all(s.parent_id == assembly_span.span_id for s in slots)
        assert all(s.attrs["outcome"] == "emitted" for s in slots)
        assert recorder.of_kind("scheduler-pop")
        assert recorder.of_kind("fetch")
        assert recorder.open_spans() == []
        # Stamped on the service's resolution clock, monotonically.
        assert request_span.start == 0.0
        assert request_span.end == float(service.clock)

    def test_queue_wait_span_measures_admission_delay(self):
        recorder = SpanRecorder()
        config = ExperimentConfig(n_complex_objects=20, cluster_pages=64)
        db, layout = build_layout(config)
        template = make_template(db)
        service = AssemblyService(
            layout.store,
            span_recorder=recorder,
            budget_pages=pin_bound(8, template),
            max_waiting=2,
            min_window=8,
        )
        service.submit(layout.root_order[:10], template)
        queued = service.submit(layout.root_order[10:], template)
        service.run()
        service.result(queued)
        (wait,) = recorder.of_kind("queue-wait")
        assert wait.finished and wait.duration > 0
        assert wait.duration == service.request_metrics(queued).queue_wait

    def test_rejected_request_closes_its_span(self):
        from repro.errors import ServiceOverloadError

        recorder = SpanRecorder()
        config = ExperimentConfig(n_complex_objects=20, cluster_pages=64)
        db, layout = build_layout(config)
        template = make_template(db)
        service = AssemblyService(
            layout.store,
            span_recorder=recorder,
            budget_pages=pin_bound(8, template),
            max_waiting=0,
            min_window=8,
        )
        service.submit(layout.root_order[:10], template)
        with pytest.raises(ServiceOverloadError):
            service.submit(layout.root_order[10:], template)
        rejected = [s for s in recorder.of_kind("request")
                    if s.attrs.get("outcome") == "rejected"]
        assert len(rejected) == 1 and rejected[0].finished

    def test_export_trace_both_formats(self, tmp_path):
        recorder = SpanRecorder()
        db, layout, service = build_service(recorder, n=10)
        service.result(
            service.submit(layout.root_order, make_template(db))
        )
        chrome = service.export_trace(str(tmp_path / "t.json"))
        document = json.loads(open(chrome).read())
        assert validate_chrome_trace(document) == []
        assert document["traceEvents"]
        jsonl = service.export_trace(
            str(tmp_path / "t.jsonl"), fmt="jsonl"
        )
        assert read_jsonl(jsonl) == recorder.spans
        with pytest.raises(ServiceStateError):
            service.export_trace(str(tmp_path / "x"), fmt="xml")

    def test_export_trace_requires_a_recorder(self, tmp_path):
        config = ExperimentConfig(n_complex_objects=5, cluster_pages=64)
        _db, layout = build_layout(config)
        service = AssemblyService(layout.store)
        with pytest.raises(ServiceStateError):
            service.export_trace(str(tmp_path / "t.json"))


class TestEngineSpans:
    def build_striped_server(self, recorder):
        db = generate_acob(24, seed=2)
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=2048)
        store = ObjectStore(disk, BufferManager(disk))
        layout = layout_database(
            db.complex_objects, store,
            InterObjectClustering(
                cluster_pages=64, disk_order=db.type_ids_depth_first()
            ),
            shared=db.shared_pool,
        )
        server = DeviceServer(store, spans=recorder)
        recorder.bind_clock(lambda: float(server.resolutions))
        query = server.register(layout.root_order, make_template(db))
        return server, query

    def test_overlapped_run_emits_device_io_spans(self):
        recorder = SpanRecorder()
        server, query = self.build_striped_server(recorder)
        report = server.run_overlapped(issue_depth=2)
        assert query.finished
        ios = recorder.of_kind("device-io")
        assert ios
        # Event-clock stamps: spans end within the run's elapsed time,
        # across both devices, and durations are the modelled service
        # times (positive).
        assert {span.device for span in ios} == {0, 1}
        assert all(span.duration > 0 for span in ios)
        assert all(span.end <= report.elapsed_ms + 1e-9 for span in ios)
        assert all("physical_reads" in span.attrs for span in ios)


class TestRetrySpans:
    def test_fault_retries_leave_retry_events(self):
        db = generate_acob(20, seed=2)
        disk = SimulatedDisk()
        store = ObjectStore(disk, BufferManager(disk))
        layout = layout_database(db.complex_objects, store,
                                 InterObjectClustering(cluster_pages=64))
        recorder = SpanRecorder(
            clock_fn=lambda: float(disk.stats.pages_read)
        )
        injector = FaultInjector(
            FaultConfig(seed=11, read_error_rate=0.3,
                        max_consecutive_failures=2)
        ).attach(disk)
        operator = Assembly(
            ListSource(layout.root_order),
            store,
            make_template(db),
            window_size=4,
            retry_policy=RetryPolicy(max_retries=2),
            spans=recorder,
        )
        operator.execute()
        retries = recorder.of_kind("retry")
        assert len(retries) == operator.stats.fault_retries > 0
        assert all(span.start == span.end for span in retries)


class TestDemoRun:
    def test_demo_is_deterministic_and_complete(self):
        first, _service = demo_service_run(n_objects=30, n_clients=2,
                                           requests_per_client=1)
        second, _service = demo_service_run(n_objects=30, n_clients=2,
                                            requests_per_client=1)
        from repro.obs.export import diff_spans

        assert diff_spans(first.spans, second.spans, with_timing=True) == []
        assert first.open_spans() == []
        kinds = {span.kind for span in first.spans}
        assert {"request", "assembly", "window-slot", "fetch",
                "device-io"} <= kinds

    def test_demo_sampling_thins_slot_detail(self):
        full, _ = demo_service_run(n_objects=30, n_clients=2,
                                   requests_per_client=1)
        sampled, _ = demo_service_run(n_objects=30, n_clients=2,
                                      requests_per_client=1,
                                      sample_rate=0.25)
        assert len(sampled.of_kind("window-slot")) < len(
            full.of_kind("window-slot")
        )
        assert len(sampled.of_kind("request")) == len(
            full.of_kind("request")
        )
