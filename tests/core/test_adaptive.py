"""Tests for the adaptive scheduler (Section 7's integrated algorithm)."""

import pytest

from repro.core.adaptive import AdaptiveElevatorScheduler
from repro.core.schedulers import make_scheduler
from repro.errors import SchedulerError

from tests.core.test_schedulers import drain, ref


class TestBufferAwareness:
    def test_resident_pages_served_first(self):
        resident = {7}
        s = AdaptiveElevatorScheduler(
            head_fn=lambda: 0, resident_fn=lambda p: p in resident
        )
        s.add(ref(1, page=2))
        s.add(ref(2, page=7))  # resident: free, despite being farther
        assert s.pop().oid.serial == 2
        assert s.resident_hits == 1
        assert s.pop().oid.serial == 1

    def test_no_residents_behaves_like_elevator(self):
        head = [5]
        s = AdaptiveElevatorScheduler(head_fn=lambda: head[0], detour_pages=0)
        for serial, page in ((1, 2), (2, 7), (3, 9)):
            s.add(ref(serial, page=page))
        assert s.pop().oid.serial == 2
        head[0] = 7
        assert s.pop().oid.serial == 3
        head[0] = 9
        assert s.pop().oid.serial == 1


class TestPredicateDetours:
    def test_detour_to_likely_rejector(self):
        s = AdaptiveElevatorScheduler(head_fn=lambda: 0, detour_pages=100)
        s.add(ref(1, page=5, rejection=0.0, seq=1))
        s.add(ref(2, page=60, rejection=0.9, seq=2))  # extra 55 <= 90
        assert s.pop().oid.serial == 2
        assert s.detours == 1

    def test_detour_budget_respected(self):
        s = AdaptiveElevatorScheduler(head_fn=lambda: 0, detour_pages=10)
        s.add(ref(1, page=5, rejection=0.0, seq=1))
        s.add(ref(2, page=60, rejection=0.9, seq=2))  # extra 55 > 9
        assert s.pop().oid.serial == 1
        assert s.detours == 0

    def test_zero_detour_disables(self):
        s = AdaptiveElevatorScheduler(head_fn=lambda: 0, detour_pages=0)
        s.add(ref(1, page=5, rejection=0.0, seq=1))
        s.add(ref(2, page=6, rejection=1.0, seq=2))
        assert s.pop().oid.serial == 1

    def test_negative_detour_rejected(self):
        with pytest.raises(SchedulerError):
            AdaptiveElevatorScheduler(detour_pages=-1)


class TestPoolSemantics:
    def test_remove_owner(self):
        s = AdaptiveElevatorScheduler()
        s.add(ref(1, page=1, owner=0))
        s.add(ref(2, page=2, owner=1))
        removed = s.remove_owner(0)
        assert [r.oid.serial for r in removed] == [1]
        assert drain(s) == [2]

    def test_empty_pop(self):
        with pytest.raises(SchedulerError):
            AdaptiveElevatorScheduler().pop()

    def test_registry_wiring(self):
        resident = {3}
        s = make_scheduler(
            "adaptive",
            head_fn=lambda: 0,
            resident_fn=lambda p: p in resident,
        )
        s.add(ref(1, page=9))
        s.add(ref(2, page=3))
        assert s.pop().oid.serial == 2  # resident first


class TestEndToEnd:
    def test_assembles_correctly(self, small_acob, small_layout):
        from repro.core.assembly import Assembly
        from repro.volcano.iterator import ListSource
        from repro.workloads.acob import make_template

        op = Assembly(
            ListSource(small_layout.root_order),
            small_layout.store,
            make_template(small_acob),
            window_size=8,
            scheduler="adaptive",
        )
        emitted = op.execute()
        assert len(emitted) == 30
        for cobj in emitted:
            cobj.verify_swizzled()

    def test_never_worse_than_elevator_on_predicates(self):
        from repro.bench.harness import ExperimentConfig, run_experiment

        results = {}
        for scheduler in ("elevator", "adaptive"):
            results[scheduler] = run_experiment(
                ExperimentConfig(
                    n_complex_objects=300,
                    clustering="inter-object",
                    scheduler=scheduler,
                    window_size=30,
                    selectivity=0.3,
                    cluster_pages=64,
                )
            )
        assert results["adaptive"].emitted == results["elevator"].emitted
        assert (
            results["adaptive"].avg_seek
            <= results["elevator"].avg_seek * 1.05
        )
