"""Property-based tests for all reference schedulers.

Whatever the policy, a scheduler is a multiset with a removal rule:
everything added comes out exactly once (unless retracted), retraction
removes precisely one owner's references, and operation counters only
grow.  Hypothesis drives random add/pop/retract streams through every
scheduler and checks those contracts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveElevatorScheduler
from repro.core.multidevice import MultiDeviceScheduler
from repro.core.schedulers import (
    BreadthFirstScheduler,
    CScanScheduler,
    DepthFirstScheduler,
    ElevatorScheduler,
    UnresolvedReference,
)
from repro.core.template import TemplateNode
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.oid import Oid

NODE = TemplateNode("n")


def make_ref(serial, page, owner, seq):
    return UnresolvedReference(
        oid=Oid(1, serial),
        page_id=page,
        owner=owner,
        node=NODE,
        parent=None,
        parent_slot=-1,
        seq=seq,
    )


def make_schedulers():
    head = [0]
    disk = MultiDeviceDisk(n_devices=3, pages_per_device=40)
    return [
        DepthFirstScheduler(),
        BreadthFirstScheduler(),
        ElevatorScheduler(head_fn=lambda: head[0]),
        CScanScheduler(head_fn=lambda: head[0]),
        AdaptiveElevatorScheduler(head_fn=lambda: head[0]),
        MultiDeviceScheduler(disk),
    ]


@st.composite
def op_streams(draw):
    return draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("add"),
                    st.integers(0, 119),  # page within the multi-disk
                    st.integers(0, 4),    # owner
                ),
                st.tuples(st.just("pop"), st.just(0), st.just(0)),
                st.tuples(
                    st.just("retract"), st.just(0), st.integers(0, 4)
                ),
            ),
            max_size=80,
        )
    )


@settings(max_examples=40, deadline=None)
@given(op_streams())
def test_every_scheduler_is_a_faithful_multiset(ops):
    for scheduler in make_schedulers():
        added = []       # serials currently inside
        popped = []
        serial = 0
        seq = 0
        for op, page, owner in ops:
            if op == "add":
                serial += 1
                seq += 1
                scheduler.add(make_ref(serial, page, owner, seq))
                added.append((serial, owner))
            elif op == "pop" and len(scheduler):
                ref = scheduler.pop()
                popped.append(ref.oid.serial)
                added = [(s, o) for s, o in added if s != ref.oid.serial]
            elif op == "retract":
                removed = scheduler.remove_owner(owner)
                removed_serials = {r.oid.serial for r in removed}
                expected = {s for s, o in added if o == owner}
                assert removed_serials == expected
                added = [(s, o) for s, o in added if o != owner]
            assert len(scheduler) == len(added)
        # Drain: everything still inside comes out exactly once.
        drained = []
        while len(scheduler):
            drained.append(scheduler.pop().oid.serial)
        assert sorted(drained) == sorted(s for s, _o in added)
        # Nothing was ever duplicated or lost overall.
        assert len(set(popped + drained)) == len(popped) + len(drained)
        assert scheduler.ops >= len(popped) + len(drained)
