"""Tests for multi-device assembly (Section 7 future work)."""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering
from repro.core.assembly import Assembly
from repro.core.multidevice import MultiDeviceScheduler
from repro.core.schedulers import UnresolvedReference
from repro.core.template import TemplateNode
from repro.errors import SchedulerError
from repro.storage.buffer import BufferManager
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template

NODE = TemplateNode("n")


def ref(serial, page, owner=0, seq=0):
    from repro.storage.oid import Oid

    return UnresolvedReference(
        oid=Oid(1, serial),
        page_id=page,
        owner=owner,
        node=NODE,
        parent=None,
        parent_slot=-1,
        seq=seq,
    )


class TestScheduler:
    def make(self, n_devices=2, pages=100):
        disk = MultiDeviceDisk(n_devices=n_devices, pages_per_device=pages)
        return disk, MultiDeviceScheduler(disk)

    def test_routes_by_device(self):
        _disk, scheduler = self.make()
        scheduler.add(ref(1, page=5))
        scheduler.add(ref(2, page=105))
        assert scheduler.queue_depths() == [1, 1]

    def test_longest_queue_first(self):
        _disk, scheduler = self.make()
        scheduler.add(ref(1, page=5, seq=1))
        scheduler.add(ref(2, page=6, seq=2))
        scheduler.add(ref(3, page=105, seq=3))
        # Device 0 has the deeper queue: serve it first.
        assert scheduler.pop().page_id in (5, 6)

    def test_ties_rotate(self):
        _disk, scheduler = self.make()
        scheduler.add(ref(1, page=5, seq=1))
        scheduler.add(ref(2, page=105, seq=2))
        first = scheduler.pop()
        first_device = 0 if first.page_id < 100 else 1
        # Refill the served device; depths tie again at 1:1.
        scheduler.add(ref(3, page=first.page_id, seq=3))
        second = scheduler.pop()
        second_device = 0 if second.page_id < 100 else 1
        # The tie must go to the device not just served.
        assert second_device != first_device

    def test_each_device_sweeps_its_own_head(self):
        disk, scheduler = self.make()
        for serial, page in ((1, 10), (2, 90), (3, 110), (4, 190)):
            scheduler.add(ref(serial, page=page, seq=serial))
        order = []
        while len(scheduler):
            popped = scheduler.pop()
            disk.read(popped.page_id)
            order.append(popped.page_id)
        # Within each device, pages come in sweep order.
        dev0 = [p for p in order if p < 100]
        dev1 = [p for p in order if p >= 100]
        assert dev0 == sorted(dev0)
        assert dev1 == sorted(dev1)

    def test_remove_owner_spans_devices(self):
        _disk, scheduler = self.make()
        scheduler.add(ref(1, page=5, owner=7, seq=1))
        scheduler.add(ref(2, page=105, owner=7, seq=2))
        scheduler.add(ref(3, page=6, owner=8, seq=3))
        removed = scheduler.remove_owner(7)
        assert len(removed) == 2
        assert len(scheduler) == 1

    def test_empty_pop(self):
        _disk, scheduler = self.make()
        with pytest.raises(SchedulerError):
            scheduler.pop()


def run_assembly(n_devices, window, n=300):
    db = generate_acob(n, seed=2)
    disk = MultiDeviceDisk(
        n_devices=n_devices,
        pages_per_device=(7 * 64) // n_devices + 128,
    )
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects,
        store,
        InterObjectClustering(
            cluster_pages=64, disk_order=db.type_ids_depth_first()
        ),
        shared=db.shared_pool,
    )
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        make_template(db),
        window_size=window,
        scheduler=MultiDeviceScheduler(disk),
    )
    emitted = operator.execute()
    assert len(emitted) == n
    for cobj in emitted:
        cobj.verify_swizzled()
    return disk


class TestMultiDeviceAssembly:
    def test_correctness(self):
        disk = run_assembly(n_devices=3, window=10)
        assert sum(s.reads for s in disk.device_stats) == disk.stats.reads

    def test_parallelism_reduces_critical_path(self):
        """Striping across devices cuts the max per-device seek total —
        the wall-clock proxy when devices work concurrently."""
        single = run_assembly(n_devices=1, window=40)
        striped = run_assembly(n_devices=4, window=40)
        single_critical = max(
            s.read_seek_total for s in single.device_stats
        )
        striped_critical = max(
            s.read_seek_total for s in striped.device_stats
        )
        assert striped_critical < single_critical

    def test_reads_spread_across_devices(self):
        disk = run_assembly(n_devices=4, window=20)
        busy = [s.reads for s in disk.device_stats if s.reads > 0]
        assert len(busy) == 4
