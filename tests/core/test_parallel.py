"""Tests for parallel assembly and the exclusive-device problem."""

import pytest

from repro.core.parallel import DeviceServerAssembly, InterleavedAssemblies
from repro.errors import AssemblyError
from repro.workloads.acob import make_template

from repro.bench.harness import ExperimentConfig, build_layout


def build(n=200, scheduler="elevator"):
    config = ExperimentConfig(
        n_complex_objects=n,
        clustering="inter-object",
        scheduler=scheduler,
        window_size=48,
        cluster_pages=64,
    )
    db, layout = build_layout(config)
    return db, layout


class TestInterleavedAssemblies:
    def test_assembles_everything(self):
        db, layout = build()
        op = InterleavedAssemblies(
            layout.root_order, layout.store, make_template(db),
            n_partitions=4, window_size=48,
        )
        emitted = op.execute()
        assert len(emitted) == 200
        assert {c.root_oid for c in emitted} == set(layout.roots)
        for cobj in emitted:
            cobj.verify_swizzled()
        assert op.total_fetches() == 200 * 7

    def test_contention_grows_with_partitions(self):
        """Section 7: independent queues break the exclusive-control
        assumption; seeks degrade as partitions multiply."""
        seeks = {}
        for k in (1, 4):
            db, layout = build()
            op = InterleavedAssemblies(
                layout.root_order, layout.store, make_template(db),
                n_partitions=k, window_size=48,
            )
            op.execute()
            seeks[k] = layout.store.disk.stats.avg_seek_per_read
        assert seeks[4] > seeks[1] * 1.5

    def test_zero_partitions_rejected(self):
        db, layout = build(n=10)
        with pytest.raises(AssemblyError):
            InterleavedAssemblies(
                layout.root_order, layout.store, make_template(db),
                n_partitions=0,
            )

    def test_pins_released(self):
        db, layout = build(n=60)
        op = InterleavedAssemblies(
            layout.root_order, layout.store, make_template(db),
            n_partitions=3, window_size=12,
        )
        op.execute()
        assert layout.store.buffer.pinned_pages == 0


class TestDeviceServerAssembly:
    def test_assembles_everything(self):
        db, layout = build()
        op = DeviceServerAssembly(
            layout.root_order, layout.store, make_template(db),
            n_partitions=4, window_size=48,
        )
        emitted = op.execute()
        assert len(emitted) == 200
        assert op.total_fetches() == 200 * 7

    def test_server_restores_single_queue_performance(self):
        """The server-per-device architecture re-establishes exclusive
        control: K partitions cost the same as one."""
        db, layout = build()
        single = InterleavedAssemblies(
            layout.root_order, layout.store, make_template(db),
            n_partitions=1, window_size=48,
        )
        single.execute()
        single_seek = layout.store.disk.stats.avg_seek_per_read

        db, layout = build()
        server = DeviceServerAssembly(
            layout.root_order, layout.store, make_template(db),
            n_partitions=4, window_size=48,
        )
        server.execute()
        server_seek = layout.store.disk.stats.avg_seek_per_read

        db, layout = build()
        independent = InterleavedAssemblies(
            layout.root_order, layout.store, make_template(db),
            n_partitions=4, window_size=48,
        )
        independent.execute()
        independent_seek = layout.store.disk.stats.avg_seek_per_read

        assert server_seek <= single_seek * 1.1
        assert server_seek < independent_seek

    def test_round_robin_merge_preserves_all_roots(self):
        db, layout = build(n=33)
        op = DeviceServerAssembly(
            layout.root_order, layout.store, make_template(db),
            n_partitions=5, window_size=10,
        )
        emitted = op.execute()
        assert {c.root_oid for c in emitted} == set(layout.roots)
