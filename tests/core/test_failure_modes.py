"""Failure-injection tests: how assembly fails when things are wrong.

A production operator's error behaviour matters as much as its happy
path: dangling references, templates that do not match the data,
buffers too small for the window, and corrupted directories must fail
loudly and leave the buffer pool clean.
"""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import Unclustered
from repro.core.assembly import Assembly
from repro.core.template import Template, TemplateNode, binary_tree_template
from repro.errors import (
    AssemblyError,
    BufferFullError,
    StorageError,
    UnknownOidError,
)
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template


def load(n=10, buffer_capacity=None, seed=5):
    db = generate_acob(n, seed=seed)
    disk = SimulatedDisk()
    store = ObjectStore(disk, BufferManager(disk, capacity=buffer_capacity))
    layout = layout_database(
        db.complex_objects, store, Unclustered(), validate=False
    )
    return db, store, layout


class TestDanglingReferences:
    def test_unknown_root_oid(self):
        db, store, layout = load()
        ghost = Oid(1, 99999)
        op = Assembly(ListSource([ghost]), store, make_template(db))
        with pytest.raises(UnknownOidError):
            op.execute()

    def test_dangling_child_reference(self):
        """A stored reference to a never-stored OID fails at fetch."""
        db, store, layout = load()
        # Corrupt: repoint a root's left child to a ghost.
        root_oid = layout.roots[0]
        record = store.fetch(root_oid)
        record.refs[0] = Oid(2, 88888)
        rid = store.directory.lookup(root_oid)
        with store.buffer.fixed(rid.page_id, dirty=True) as page:
            page.update(rid.slot, root_oid.encode() + record.encode())
        store.buffer.flush_all()
        op = Assembly(
            ListSource([root_oid]), store, make_template(db), window_size=1,
            scheduler="depth-first",
        )
        with pytest.raises(UnknownOidError):
            op.execute()


class TestTemplateMismatch:
    def test_template_deeper_than_data_is_fine(self):
        """Null slots end recursion early: shallow data is legal."""
        db, store, layout = load()
        deep = binary_tree_template(5)  # data only has 3 levels
        op = Assembly(ListSource(layout.root_order), store, deep)
        emitted = op.execute()
        assert len(emitted) == 10
        assert all(c.object_count() == 7 for c in emitted)

    def test_template_shallower_than_data_is_fine(self):
        db, store, layout = load()
        shallow = binary_tree_template(2)
        op = Assembly(ListSource(layout.root_order), store, shallow)
        emitted = op.execute()
        assert all(c.object_count() == 3 for c in emitted)

    def test_template_wrong_slots_sees_nulls(self):
        """A template following unused slots assembles just the root."""
        db, store, layout = load()
        root = TemplateNode("root")
        root.child(6, "phantom")  # slot 6 is always null in ACOB data
        op = Assembly(ListSource(layout.root_order), store, Template(root))
        emitted = op.execute()
        assert all(c.object_count() == 1 for c in emitted)


class TestBufferPressure:
    def test_window_larger_than_buffer_fails_loudly(self):
        db, store, layout = load(n=40, buffer_capacity=16)
        op = Assembly(
            ListSource(layout.root_order), store, make_template(db),
            window_size=10,  # pin bound 61 > 16 frames
        )
        with pytest.raises(BufferFullError):
            op.execute()

    def test_unpinned_mode_survives_tiny_buffer(self):
        db, store, layout = load(n=40, buffer_capacity=4)
        op = Assembly(
            ListSource(layout.root_order), store, make_template(db),
            window_size=10, pin_pages=False,
        )
        emitted = op.execute()
        assert len(emitted) == 40
        assert store.buffer.stats.re_reads > 0

    def test_failed_run_leaves_no_pins_after_close(self):
        db, store, layout = load(n=40, buffer_capacity=16)
        op = Assembly(
            ListSource(layout.root_order), store, make_template(db),
            window_size=10,
        )
        with pytest.raises(BufferFullError):
            for _ in op.rows():
                pass
        # rows() closed the operator in its finally block.
        assert store.buffer.pinned_pages == 0


class TestDirectoryCorruption:
    def test_directory_slot_mismatch_detected(self):
        """If the directory points at the wrong slot, the stored-OID
        cross-check catches it instead of returning a wrong object."""
        db, store, layout = load()
        first, second = layout.roots[0], layout.roots[1]
        rid_second = store.directory.lookup(second)
        # Corrupt the directory: first now points at second's record.
        store.directory._entries[first] = rid_second
        with pytest.raises(StorageError):
            store.fetch(first)
        with pytest.raises(StorageError):
            store.fetch_pinned(first)
        assert store.buffer.pinned_pages == 0  # pin rolled back


class TestStalledAssembly:
    def test_stall_raises_instead_of_spinning(self):
        """A window with nothing schedulable raises AssemblyError."""
        from repro.core.window import Window

        db, store, layout = load()
        op = Assembly(ListSource([]), store, make_template(db))
        op.open()
        # Force an inconsistent state: occupied window, empty pool.
        op._window.admit(layout.roots[0], total_nodes=7, total_predicates=0)
        with pytest.raises(AssemblyError):
            op.next()
        op.close()
