"""Tests for the component iterator."""

import pytest

from repro.core.assembled import AssembledObject
from repro.core.component_iterator import ComponentIterator
from repro.core.predicates import always_true, int_less_than
from repro.core.template import Template, TemplateNode, binary_tree_template
from repro.errors import AssemblyError
from repro.storage.oid import NULL_OID, Oid
from repro.storage.record import ObjectRecord


def record(refs=None, ints=None):
    full_refs = [NULL_OID] * 8
    for slot, oid in (refs or {}).items():
        full_refs[slot] = oid
    full_ints = (ints or []) + [0] * (4 - len(ints or []))
    return ObjectRecord(ints=full_ints, refs=full_refs)


@pytest.fixture
def tree_ci():
    return ComponentIterator(binary_tree_template(3))


class TestMaterialize:
    def test_returns_object_and_children(self, tree_ci):
        template = tree_ci.template
        rec = record(refs={0: Oid(2, 1), 1: Oid(3, 1)}, ints=[7])
        assembled, children = tree_ci.materialize(Oid(1, 1), template.root, rec)
        assert assembled.ints[0] == 7
        assert [c.oid for c in children] == [Oid(2, 1), Oid(3, 1)]
        assert [c.node.label for c in children] == ["n1", "n2"]
        assert all(c.parent is assembled for c in children)

    def test_null_refs_skipped(self, tree_ci):
        template = tree_ci.template
        rec = record(refs={1: Oid(3, 1)})
        _obj, children = tree_ci.materialize(Oid(1, 1), template.root, rec)
        assert [c.slot for c in children] == [1]

    def test_leaf_has_no_children(self, tree_ci):
        template = tree_ci.template
        _obj, children = tree_ci.materialize(
            Oid(4, 1), template.node("n3"), record()
        )
        assert children == []

    def test_template_beyond_record_slots_rejected(self):
        root = TemplateNode("r")
        root.child(9, "far")  # slot 9 of an 8-ref record
        ci = ComponentIterator(Template(root))
        with pytest.raises(AssemblyError):
            ci.materialize(Oid(1, 1), ci.template.root, record(refs={0: Oid(1, 2)}))


class TestExpand:
    def test_already_swizzled_slots_skipped(self, tree_ci):
        template = tree_ci.template
        rec = record(refs={0: Oid(2, 1), 1: Oid(3, 1)})
        parent = AssembledObject(Oid(1, 1), template.root, rec)
        child = AssembledObject(Oid(2, 1), template.node("n1"), record())
        parent.swizzle(0, child)
        remaining = tree_ci.expand(parent)
        assert [c.slot for c in remaining] == [1]

    def test_expand_partial_walks_structure(self, tree_ci):
        template = tree_ci.template
        root_rec = record(refs={0: Oid(2, 1), 1: Oid(3, 1)})
        root = AssembledObject(Oid(1, 1), template.root, root_rec)
        left_rec = record(refs={0: Oid(4, 1), 1: Oid(5, 1)})
        left = AssembledObject(Oid(2, 1), template.node("n1"), left_rec)
        root.swizzle(0, left)
        refs = tree_ci.expand_partial(root)
        oids = sorted(c.oid for c in refs)
        # Missing: root's right (3,1) and left's two leaves.
        assert oids == [Oid(3, 1), Oid(4, 1), Oid(5, 1)]


class TestStatistics:
    def test_subtree_rejection_max_over_predicates(self):
        root = TemplateNode("root")
        a = root.child(0, "a", predicate=int_less_than(0, 5, 0.8))
        a.child(0, "a1", predicate=int_less_than(0, 5, 0.3))
        root.child(1, "b")
        ci = ComponentIterator(Template(root))
        assert ci.subtree_rejection(ci.template.node("a")) == pytest.approx(0.7)
        assert ci.subtree_rejection(ci.template.node("b")) == 0.0
        assert ci.subtree_rejection(ci.template.root) == pytest.approx(0.7)

    def test_rejection_cached(self):
        root = TemplateNode("root", predicate=int_less_than(0, 5, 0.5))
        ci = ComponentIterator(Template(root))
        assert ci.subtree_rejection(ci.template.root) == 0.5
        assert ci.subtree_rejection(ci.template.root) == 0.5

    def test_missing_subtree_counts(self, tree_ci):
        template = tree_ci.template
        # Root with only the right child present.
        rec = record(refs={1: Oid(3, 1)})
        assembled, children = tree_ci.materialize(Oid(1, 1), template.root, rec)
        nodes, predicates = tree_ci.missing_subtree_counts(assembled, children)
        assert nodes == 3  # the whole absent left subtree (n1, n3, n4)
        assert predicates == 0

    def test_missing_counts_with_predicates(self):
        root = TemplateNode("root")
        a = root.child(0, "a", predicate=always_true())
        a.child(0, "a1", predicate=always_true())
        ci = ComponentIterator(Template(root))
        rec = record()  # no children at all
        assembled, children = ci.materialize(Oid(1, 1), ci.template.root, rec)
        nodes, predicates = ci.missing_subtree_counts(assembled, children)
        assert nodes == 2
        assert predicates == 2
