"""Tests for the pointer-swizzled in-memory representation."""

import pytest

from repro.core.assembled import AssembledComplexObject, AssembledObject
from repro.core.template import Template, TemplateNode, binary_tree_template
from repro.errors import AssemblyError
from repro.storage.oid import NULL_OID, Oid
from repro.storage.record import ObjectRecord


def record(refs=None, ints=None):
    full_refs = [NULL_OID] * 8
    for slot, oid in (refs or {}).items():
        full_refs[slot] = oid
    return ObjectRecord(ints=(ints or [0] * 4), refs=full_refs)


@pytest.fixture
def template():
    return binary_tree_template(2)  # root + two leaves


def make_tree(template):
    root_oid, left_oid, right_oid = Oid(1, 1), Oid(2, 1), Oid(3, 1)
    root = AssembledObject(
        root_oid, template.root, record(refs={0: left_oid, 1: right_oid}, ints=[1, 0, 0, 0])
    )
    left = AssembledObject(left_oid, template.node("n1"), record(ints=[2, 0, 0, 0]))
    right = AssembledObject(right_oid, template.node("n2"), record(ints=[3, 0, 0, 0]))
    root.swizzle(0, left)
    root.swizzle(1, right)
    return root, left, right


class TestAssembledObject:
    def test_swizzle_and_child(self, template):
        root, left, right = make_tree(template)
        assert root.child(0) is left
        assert root.child(1) is right
        assert root.child(5) is None

    def test_swizzle_twice_rejected(self, template):
        root, left, _right = make_tree(template)
        with pytest.raises(AssemblyError):
            root.swizzle(0, left)

    def test_swizzle_bad_slot(self, template):
        root, left, _right = make_tree(template)
        with pytest.raises(AssemblyError):
            root.swizzle(99, left)

    def test_follow_path(self, template):
        root, left, _right = make_tree(template)
        assert root.follow(0) is left
        assert root.follow() is root

    def test_follow_missing_hop(self, template):
        root, _left, _right = make_tree(template)
        with pytest.raises(AssemblyError):
            root.follow(0, 0)

    def test_walk_preorder(self, template):
        root, left, right = make_tree(template)
        assert [o.ints[0] for o in root.walk()] == [1, 2, 3]

    def test_count_objects_dedupes_shared(self, template):
        root, left, _right = make_tree(template)
        # Simulate sharing: both slots point to the same child object.
        other = AssembledObject(Oid(1, 2), template.root, record(refs={0: left.oid, 1: left.oid}))
        other.swizzle(0, left)
        other.swizzle(1, left)
        assert other.count_objects() == 2

    def test_find_by_label(self, template):
        root, _left, right = make_tree(template)
        assert root.find("n2") is right
        assert root.find("nope") is None


class TestAssembledComplexObject:
    def test_metadata(self, template):
        root, *_ = make_tree(template)
        cobj = AssembledComplexObject(root=root, serial=0, fetches=3)
        assert cobj.root_oid == Oid(1, 1)
        assert cobj.object_count() == 3
        assert [o.oid for o in cobj.scan()][0] == Oid(1, 1)

    def test_verify_swizzled_passes_on_complete(self, template):
        root, *_ = make_tree(template)
        AssembledComplexObject(root=root, serial=0).verify_swizzled()

    def test_verify_swizzled_catches_dangling(self, template):
        root_oid = Oid(1, 1)
        root = AssembledObject(
            root_oid, template.root, record(refs={0: Oid(2, 1)})
        )
        cobj = AssembledComplexObject(root=root, serial=0)
        with pytest.raises(AssemblyError):
            cobj.verify_swizzled()

    def test_verify_swizzled_catches_wrong_target(self, template):
        root = AssembledObject(
            Oid(1, 1), template.root, record(refs={0: Oid(2, 1)})
        )
        imposter = AssembledObject(Oid(2, 99), template.node("n1"), record())
        root.children[0] = imposter  # bypass swizzle checks
        with pytest.raises(AssemblyError):
            AssembledComplexObject(root=root, serial=0).verify_swizzled()

    def test_null_refs_need_no_swizzle(self, template):
        root = AssembledObject(Oid(1, 1), template.root, record())
        AssembledComplexObject(root=root, serial=0).verify_swizzled()
