"""Tests for assembly templates."""

import pytest

from repro.core.predicates import always_true, int_less_than
from repro.core.template import Template, TemplateNode, binary_tree_template
from repro.errors import TemplateError


def simple_template():
    root = TemplateNode("root", type_name="A")
    root.child(0, "left", type_name="B")
    root.child(1, "right", type_name="C")
    return Template(root).finalize()


class TestTemplateNode:
    def test_child_attachment(self):
        root = TemplateNode("r")
        child = root.child(2, "c")
        assert root.children == {2: child}
        assert root.child_slots() == [2]

    def test_duplicate_slot_rejected(self):
        root = TemplateNode("r")
        root.child(0, "a")
        with pytest.raises(TemplateError):
            root.child(0, "b")

    def test_negative_slot_rejected(self):
        with pytest.raises(TemplateError):
            TemplateNode("r").child(-1, "c")

    def test_empty_label_rejected(self):
        with pytest.raises(TemplateError):
            TemplateNode("")

    def test_sharing_degree_requires_shared(self):
        with pytest.raises(TemplateError):
            TemplateNode("n", sharing_degree=0.5)

    def test_sharing_degree_bounds(self):
        with pytest.raises(TemplateError):
            TemplateNode("n", shared=True, sharing_degree=1.5)

    def test_walk_preorder(self):
        template = simple_template()
        assert [n.label for n in template.root.walk()] == [
            "root", "left", "right",
        ]


class TestFinalize:
    def test_annotations(self):
        template = simple_template()
        assert template.node_count == 3
        assert template.predicate_count == 0
        assert template.max_depth == 1
        assert template.root.subtree_nodes == 3
        assert template.node("left").subtree_nodes == 1
        assert template.node("left").depth == 1

    def test_predicate_counting(self):
        root = TemplateNode("root")
        root.child(0, "a", predicate=always_true())
        child = root.child(1, "b")
        child.child(0, "b1", predicate=always_true())
        template = Template(root).finalize()
        assert template.predicate_count == 2
        assert template.node("b").subtree_predicates == 1
        assert template.has_predicates()

    def test_duplicate_labels_rejected(self):
        root = TemplateNode("x")
        root.child(0, "x")
        with pytest.raises(TemplateError):
            Template(root).finalize()

    def test_unfinalized_queries_rejected(self):
        template = Template(TemplateNode("r"))
        with pytest.raises(TemplateError):
            _ = template.node_count

    def test_finalize_idempotent(self):
        template = simple_template()
        assert template.finalize() is template

    def test_reannotate_after_mutation(self):
        template = simple_template()
        template.node("left").predicate = int_less_than(0, 10, 0.5)
        assert template.predicate_count == 0  # stale until reannotate
        template.reannotate()
        assert template.predicate_count == 1
        assert template.node("left").subtree_predicates == 1

    def test_node_lookup_unknown(self):
        with pytest.raises(TemplateError):
            simple_template().node("ghost")

    def test_shared_labels(self):
        root = TemplateNode("root")
        root.child(0, "s", shared=True, sharing_degree=0.2)
        template = Template(root).finalize()
        assert template.shared_labels() == ["s"]

    def test_describe_renders_tree(self):
        text = simple_template().describe()
        assert "root: A" in text
        assert "[slot 0] left: B" in text


class TestRecursion:
    def test_single_level_unroll(self):
        person = TemplateNode("person")
        person.child(1, "home")
        person.recurse(0, "person", max_depth=1)
        template = Template(person).finalize()
        # person, home, father-copy(person), father's home.
        assert template.node_count == 4
        labels = [n.label for n in template.nodes()]
        assert labels[0] == "person"
        assert sum("person" in l for l in labels) == 2

    def test_two_level_unroll(self):
        node = TemplateNode("n")
        node.recurse(0, "n", max_depth=3)
        template = Template(node).finalize()
        # A chain of 4 nodes (root + 3 unrolled levels).
        assert template.node_count == 4
        assert template.max_depth == 3

    def test_zero_depth_ignored(self):
        node = TemplateNode("n")
        node.recurse(0, "n", max_depth=0)
        template = Template(node).finalize()
        assert template.node_count == 1

    def test_recurse_to_non_ancestor_rejected(self):
        root = TemplateNode("root")
        child = root.child(0, "child")
        sibling = root.child(1, "sibling")
        child.recurse(0, "sibling", max_depth=1)
        with pytest.raises(TemplateError):
            Template(root).finalize()

    def test_negative_depth_rejected(self):
        with pytest.raises(TemplateError):
            TemplateNode("n").recurse(0, "n", max_depth=-1)

    def test_recursion_copies_annotations(self):
        person = TemplateNode("person")
        person.child(1, "home", shared=True, sharing_degree=0.3)
        person.recurse(0, "person", max_depth=1)
        template = Template(person).finalize()
        shared = template.shared_labels()
        assert len(shared) == 2  # both residences marked shared

    def test_recursion_inside_branch(self):
        root = TemplateNode("root")
        branch = root.child(0, "branch")
        branch.recurse(1, "branch", max_depth=2)
        template = Template(root).finalize()
        assert template.node_count == 4  # root + branch chain of 3


class TestBinaryTreeTemplate:
    def test_three_levels_is_paper_object(self):
        template = binary_tree_template(3)
        assert template.node_count == 7
        assert template.max_depth == 2
        assert template.node("n0").child_slots() == [0, 1]
        assert template.node("n3").child_slots() == []

    def test_positional_labels(self):
        template = binary_tree_template(3)
        assert template.node("n0").children[0].label == "n1"
        assert template.node("n0").children[1].label == "n2"
        assert template.node("n1").children[0].label == "n3"

    def test_one_level(self):
        assert binary_tree_template(1).node_count == 1

    def test_bad_levels(self):
        with pytest.raises(TemplateError):
            binary_tree_template(0)
