"""Tests for selection predicates."""

import pytest

from repro.core.predicates import (
    Predicate,
    always_false,
    always_true,
    int_field_predicate,
    int_less_than,
)
from repro.errors import TemplateError
from repro.storage.record import ObjectRecord


def record(*ints):
    values = list(ints) + [0] * (4 - len(ints))
    return ObjectRecord(ints=values)


class TestPredicate:
    def test_evaluate(self):
        pred = Predicate("positive", lambda r: r.ints[0] > 0, selectivity=0.5)
        assert pred.evaluate(record(1))
        assert not pred.evaluate(record(-1))

    def test_rejection_probability(self):
        assert Predicate("p", lambda r: True, 0.3).rejection_probability == pytest.approx(0.7)

    def test_selectivity_bounds(self):
        with pytest.raises(TemplateError):
            Predicate("bad", lambda r: True, selectivity=1.5)
        with pytest.raises(TemplateError):
            Predicate("bad", lambda r: True, selectivity=-0.1)

    def test_str(self):
        assert "0.25" in str(Predicate("p", lambda r: True, 0.25))


class TestHelpers:
    def test_int_field_predicate(self):
        pred = int_field_predicate("even", 2, lambda v: v % 2 == 0, 0.5)
        assert pred.evaluate(record(0, 0, 4))
        assert not pred.evaluate(record(0, 0, 5))

    def test_int_field_negative_slot(self):
        with pytest.raises(TemplateError):
            int_field_predicate("bad", -1, lambda v: True, 0.5)

    def test_int_less_than(self):
        pred = int_less_than(0, 100, 0.1)
        assert pred.evaluate(record(99))
        assert not pred.evaluate(record(100))
        assert pred.selectivity == 0.1

    def test_always_true_false(self):
        assert always_true().evaluate(record(0))
        assert not always_false().evaluate(record(0))
        assert always_false().rejection_probability == 1.0


class TestConjunction:
    def test_ands_tests_and_multiplies_selectivities(self):
        from repro.core.predicates import conjunction

        both = conjunction(
            [int_less_than(0, 10, 0.5), int_field_predicate(
                "even", 0, lambda v: v % 2 == 0, 0.5
            )]
        )
        assert both.selectivity == pytest.approx(0.25)
        assert both.evaluate(record(4))
        assert not both.evaluate(record(5))   # odd
        assert not both.evaluate(record(12))  # too big
        assert "AND" in both.name

    def test_single_predicate_passthrough(self):
        from repro.core.predicates import conjunction

        single = int_less_than(0, 10, 0.5)
        assert conjunction([single]) is single

    def test_empty_rejected(self):
        from repro.core.predicates import conjunction

        with pytest.raises(TemplateError):
            conjunction([])


class TestDisjunction:
    def test_ors_tests_and_combines_selectivities(self):
        from repro.core.predicates import disjunction

        either = disjunction(
            [int_less_than(0, 3, 0.3), int_field_predicate(
                "big", 0, lambda v: v > 100, 0.2
            )]
        )
        assert either.selectivity == pytest.approx(1 - 0.7 * 0.8)
        assert either.evaluate(record(1))
        assert either.evaluate(record(200))
        assert not either.evaluate(record(50))
        assert "OR" in either.name

    def test_single_passthrough(self):
        from repro.core.predicates import disjunction

        single = int_less_than(0, 10, 0.5)
        assert disjunction([single]) is single

    def test_empty_rejected(self):
        from repro.core.predicates import disjunction

        with pytest.raises(TemplateError):
            disjunction([])
