"""Tests for stacked (bottom-up + top-down) assembly — Figure 17."""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import Unclustered
from repro.core.assembly import Assembly
from repro.core.stacking import StackedAssembly
from repro.core.template import Template, TemplateNode
from repro.errors import AssemblyError
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource

from tests.core.test_assembly import (
    figure4_database,
    figure4_template,
    lay_out_figure4,
)


def b_subtree_template():
    """Template for the bottom-up stage: B → D (Figure 17's Assembly1)."""
    b = TemplateNode("B", type_name="B")
    b.child(0, "D", type_name="D")
    return Template(b).finalize()


def build_stacked(n=5, window=2):
    store = ObjectStore(SimulatedDisk())
    builder = figure4_database(n)
    layout = lay_out_figure4(builder, store)
    b_roots = [
        cobj.objects[cobj.root].refs["b"]
        for cobj in builder.complex_objects
    ]
    op = StackedAssembly(
        lower_source=ListSource(b_roots),
        lower_template=b_subtree_template(),
        upper_source=ListSource(layout.root_order),
        upper_template=figure4_template(),
        store=store,
        window_size=window,
        scheduler="elevator",
    )
    return builder, store, layout, op


class TestStackedAssembly:
    def test_produces_same_objects_as_direct(self):
        builder, store, layout, stacked = build_stacked()
        stacked_out = {c.root_oid: c for c in stacked.execute()}

        direct_store = ObjectStore(SimulatedDisk())
        direct_layout = lay_out_figure4(figure4_database(5), direct_store)
        direct = Assembly(
            ListSource(direct_layout.root_order),
            direct_store,
            figure4_template(),
            window_size=2,
        )
        direct_out = {c.root_oid: c for c in direct.execute()}

        assert set(stacked_out) == set(direct_out)
        for oid, cobj in stacked_out.items():
            cobj.verify_swizzled()
            assert cobj.object_count() == direct_out[oid].object_count() == 4

    def test_upper_stage_links_not_fetches(self):
        _builder, _store, _layout, stacked = build_stacked()
        stacked.execute()
        # Lower fetched B and D (2 per complex object); upper fetched
        # only A and C; the B subtrees were linked via preassembled.
        assert stacked.lower.stats.fetches == 5 * 2
        assert stacked.upper.stats.fetches == 5 * 2

    def test_preassembled_table_exposed(self):
        _builder, _store, _layout, stacked = build_stacked()
        stacked.execute()
        assert len(stacked.preassembled) == 5
        for root in stacked.preassembled.values():
            assert root.node.label == "B"

    def test_upper_before_open_rejected(self):
        _builder, _store, _layout, stacked = build_stacked()
        with pytest.raises(AssemblyError):
            _ = stacked.upper

    def test_pins_released(self):
        _builder, store, _layout, stacked = build_stacked()
        stacked.execute()
        assert store.buffer.pinned_pages == 0

    def test_reopen(self):
        _builder, _store, _layout, stacked = build_stacked()
        assert len(stacked.execute()) == 5
        assert len(stacked.execute()) == 5


class TestPartialInputs:
    def test_assembly_accepts_partial_complex_objects(self):
        """Section 4: partially assembled inputs are completed."""
        store = ObjectStore(SimulatedDisk())
        builder = figure4_database(4)
        layout = lay_out_figure4(builder, store)

        # Stage 1: assemble only the A + C part (template without B).
        a_only = TemplateNode("A", type_name="A")
        a_only.child(1, "C", type_name="C")
        partial_op = Assembly(
            ListSource(layout.root_order),
            store,
            Template(a_only).finalize(),
            window_size=2,
        )
        partials = partial_op.execute()
        assert all(p.object_count() == 2 for p in partials)

        # Stage 2: feed the partial assemblies through the full
        # template; only B and D remain to fetch.
        # Re-key the partial roots to the full template's nodes.
        full = figure4_template()
        for partial in partials:
            partial.root.node = full.root
            partial.root.children[1].node = full.node("C")
        complete_op = Assembly(
            ListSource(partials), store, full, window_size=2
        )
        completed = complete_op.execute()
        assert len(completed) == 4
        for cobj in completed:
            cobj.verify_swizzled()
            assert cobj.object_count() == 4
        assert complete_op.stats.fetches == 4 * 2  # B and D only
