"""Equivalence of the optimized SweepPool against a naive reference.

The raw-speed pass gave :class:`~repro.core.schedulers.SweepPool` lazy
tombstones, an owner index, a per-page live counter, and incremental
residency tracking for the zero-seek probe.  None of that may change
*behaviour*: pop order, batch composition, and the page picked by
``take_resident_page`` must stay bit-identical to the obvious
implementation (one sorted list, full scans everywhere).

Hypothesis drives both pools through identical streams of adds,
elevator/C-SCAN pops, whole-page and run batches, owner retractions,
zero-seek probes, and buffer residency changes (reads after pops,
arbitrary evictions), asserting after every operation that the two
pools return the same references and hold the same live entries.

The residency model follows the buffer's real contract: a page can
*become* resident only after a read, and reads happen only to pages
just popped from the pool (or to pages with nothing pending, loaded by
some other consumer of the buffer); eviction can happen at any time.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedulers import SweepPool, UnresolvedReference
from repro.core.template import TemplateNode
from repro.storage.oid import Oid

NODE = TemplateNode("n")

#: Page-id range of the generated streams (small enough to collide).
N_PAGES = 48


def make_ref(serial, page, owner, rejection, seq):
    """One pool entry; ``rejection`` exercises the sort tie-break."""
    return UnresolvedReference(
        oid=Oid(1, serial),
        page_id=page,
        owner=owner,
        node=NODE,
        parent=None,
        parent_slot=-1,
        seq=seq,
        rejection=rejection,
    )


class NaiveSweepPool:
    """The obvious pool: one sorted list, linear scans, no caches.

    Implements exactly the SweepPool operations the suite compares,
    from the documented semantics — sorted by ``(page, -rejection,
    seq)``, elevator/C-SCAN positioning, whole-page batches, and a
    full-scan zero-seek probe.
    """

    def __init__(self):
        """Start empty."""
        self.entries = []

    def __len__(self):
        """Number of pending references."""
        return len(self.entries)

    def add(self, ref, seq):
        """Insert ``ref`` keeping the list sorted."""
        self.entries.append((ref.page_id, -ref.rejection, seq, ref))
        self.entries.sort(key=lambda entry: entry[:3])

    def remove_owner(self, owner):
        """Retract one owner's references, in insertion (seq) order."""
        removed = sorted(
            (entry for entry in self.entries if entry[3].owner == owner),
            key=lambda entry: entry[2],
        )
        self.entries = [
            entry for entry in self.entries if entry[3].owner != owner
        ]
        return [entry[3] for entry in removed]

    def _locate(self, head, direction):
        """SCAN positioning: next entry and possibly reversed direction."""
        above = [entry for entry in self.entries if entry[0] >= head]
        below = [entry for entry in self.entries if entry[0] < head]
        if direction > 0:
            if above:
                return min(above), direction
            return max(below), -1
        if below:
            return max(below), direction
        return min(above), 1

    def pop_next(self, head, direction):
        """Elevator pop: nearest entry in the sweep direction."""
        entry, direction = self._locate(head, direction)
        self.entries.remove(entry)
        return entry[3], direction

    def pop_cscan(self, head):
        """C-SCAN pop: upward only, wrapping to the lowest page."""
        above = [entry for entry in self.entries if entry[0] >= head]
        entry = min(above) if above else min(self.entries)
        self.entries.remove(entry)
        return entry[3]

    def take_page(self, page_id):
        """Remove and return every reference on one page, pool order."""
        taken = sorted(
            (entry for entry in self.entries if entry[0] == page_id),
            key=lambda entry: entry[:3],
        )
        self.entries = [
            entry for entry in self.entries if entry[0] != page_id
        ]
        return [entry[3] for entry in taken]

    def take_run(self, page_id, direction, max_pages):
        """Contiguous whole-page batch in the sweep direction."""
        refs = self.take_page(page_id)
        pages = 1
        while refs and pages < max_pages:
            next_page = page_id + direction * pages
            if next_page < 0:
                break
            more = self.take_page(next_page)
            if not more:
                break
            refs.extend(more)
            pages += 1
        return refs

    def take_resident_page(self, resident_fn):
        """Full scan: all refs of the lowest resident pending page."""
        pending = sorted({entry[0] for entry in self.entries})
        resident = [page for page in pending if resident_fn(page)]
        if not resident:
            return []
        return self.take_page(min(resident))

    def pop_batch_next(self, head, direction, max_pages):
        """Elevator batch: position, then take the run."""
        entry, direction = self._locate(head, direction)
        return self.take_run(entry[0], direction, max_pages), direction

    def pop_batch_cscan(self, head, max_pages):
        """C-SCAN batch: upward positioning, upward run."""
        above = [entry for entry in self.entries if entry[0] >= head]
        entry = min(above) if above else min(self.entries)
        return self.take_run(entry[0], 1, max_pages)

    def live_pages(self):
        """Set of pages with pending references."""
        return {entry[0] for entry in self.entries}


@st.composite
def pool_op_streams(draw):
    """Mixed maintenance/pop/probe/residency op streams.

    ``mark`` booleans on pop-style ops simulate the read that follows
    a pop (turning the popped pages buffer-resident) — the event the
    incremental residency tracking keys on.
    """
    mark = st.booleans()
    return draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("add"),
                    st.integers(0, N_PAGES - 1),   # page
                    st.integers(0, 4),             # owner
                    st.integers(0, 3),             # rejection grade
                ),
                st.tuples(st.just("pop"), mark),
                st.tuples(st.just("cscan"), mark),
                st.tuples(
                    st.just("take_page"), st.integers(0, N_PAGES - 1)
                ),
                st.tuples(st.just("batch"), st.integers(1, 4), mark),
                st.tuples(st.just("cbatch"), st.integers(1, 4), mark),
                st.tuples(st.just("retract"), st.integers(0, 4)),
                st.tuples(st.just("probe")),
                st.tuples(st.just("evict"), st.integers(0, 63)),
                st.tuples(
                    st.just("load"), st.integers(0, N_PAGES - 1)
                ),
            ),
            max_size=120,
        )
    )


def assert_same_refs(fast_refs, naive_refs):
    """Both pools must return the very same reference objects in order."""
    assert [id(ref) for ref in fast_refs] == [
        id(ref) for ref in naive_refs
    ]


def assert_same_state(pool, naive):
    """Live entries of the optimized pool match the naive list exactly."""
    fast_entries = [
        (page, neg_rej, seq, id(ref))
        for page, neg_rej, seq, ref in pool.live_entries()
    ]
    naive_entries = [
        (page, neg_rej, seq, id(ref))
        for page, neg_rej, seq, ref in naive.entries
    ]
    assert fast_entries == naive_entries
    assert len(pool) == len(naive)


@given(pool_op_streams())
@settings(max_examples=60, deadline=None)
def test_sweep_pool_matches_naive_reference(ops):
    """Every operation returns identical refs and leaves equal state."""
    pool = SweepPool()
    naive = NaiveSweepPool()
    resident = set()
    probes = 0
    head, direction = 0, 1
    serial = seq = 0

    def resident_fn(page_id):
        return page_id in resident

    def mark_read(refs):
        # The caller reads the pages it popped; their siblings (if any)
        # are now buffer-resident without any further pool event.
        for ref in refs:
            resident.add(ref.page_id)

    for op in ops:
        kind = op[0]
        if kind == "add":
            _, page, owner, grade = op
            serial += 1
            seq += 1
            ref = make_ref(serial, page, owner, grade / 4.0, seq)
            pool.add(ref)
            naive.add(ref, seq)
        elif kind == "pop" and len(naive):
            prev_direction = direction
            ref, direction = pool.pop_next(head, prev_direction)
            naive_ref, naive_dir = naive.pop_next(head, prev_direction)
            assert id(ref) == id(naive_ref)
            assert direction == naive_dir
            head = ref.page_id
            if op[1]:
                mark_read([ref])
        elif kind == "cscan" and len(naive):
            ref = pool.pop_cscan(head)
            naive_ref = naive.pop_cscan(head)
            assert id(ref) == id(naive_ref)
            head = ref.page_id
            if op[1]:
                mark_read([ref])
        elif kind == "take_page":
            assert_same_refs(
                pool.take_page(op[1]), naive.take_page(op[1])
            )
        elif kind == "batch" and len(naive):
            prev_direction = direction
            refs, direction = pool.pop_batch_next(head, prev_direction, op[1])
            naive_refs, naive_dir = naive.pop_batch_next(
                head, prev_direction, op[1]
            )
            assert_same_refs(refs, naive_refs)
            assert direction == naive_dir
            if refs:
                head = refs[-1].page_id
            if op[2]:
                mark_read(refs)
        elif kind == "cbatch" and len(naive):
            refs = pool.pop_batch_cscan(head, op[1])
            assert_same_refs(refs, naive.pop_batch_cscan(head, op[1]))
            if refs:
                head = refs[-1].page_id
            if op[2]:
                mark_read(refs)
        elif kind == "retract":
            assert_same_refs(
                pool.remove_owner(op[1]), naive.remove_owner(op[1])
            )
        elif kind == "probe":
            probes += 1
            refs = pool.take_resident_page(resident_fn)
            assert_same_refs(
                refs, naive.take_resident_page(resident_fn)
            )
            mark_read(refs)  # the batch's page stays in the buffer
        elif kind == "evict":
            # Bounded buffer: any page may leave at any time.
            if resident:
                victims = sorted(resident)
                resident.discard(victims[op[1] % len(victims)])
        elif kind == "load":
            # Some other consumer of the buffer reads a page this pool
            # has nothing pending on (a pending page can only turn
            # resident via a pool-visible event — see module docstring).
            if op[1] not in naive.live_pages():
                resident.add(op[1])
        assert_same_state(pool, naive)

    # Drain both pools; the remaining stream must also agree.
    while len(naive):
        prev_direction = direction
        ref, direction = pool.pop_next(head, prev_direction)
        naive_ref, _ = naive.pop_next(head, prev_direction)
        assert id(ref) == id(naive_ref)
        head = ref.page_id
    assert len(pool) == 0


@given(pool_op_streams())
@settings(max_examples=30, deadline=None)
def test_probe_after_every_op_matches_full_scan(ops):
    """A probe between every pair of ops still matches the full scan.

    This is the adversarial schedule for the incremental tracking: the
    ``_recent_pages`` flag set is cleared by each probe, so any missed
    flagging event would surface as a divergence on the very next one.
    """
    pool = SweepPool()
    naive = NaiveSweepPool()
    resident = set()
    head, direction = 0, 1
    serial = seq = 0

    def resident_fn(page_id):
        return page_id in resident

    for op in ops:
        kind = op[0]
        if kind == "add":
            _, page, owner, grade = op
            serial += 1
            seq += 1
            ref = make_ref(serial, page, owner, grade / 4.0, seq)
            pool.add(ref)
            naive.add(ref, seq)
        elif kind in ("pop", "cscan") and len(naive):
            if kind == "pop":
                prev_direction = direction
                ref, direction = pool.pop_next(head, prev_direction)
                naive_ref, _ = naive.pop_next(head, prev_direction)
            else:
                ref = pool.pop_cscan(head)
                naive_ref = naive.pop_cscan(head)
            assert id(ref) == id(naive_ref)
            head = ref.page_id
            if op[1]:
                resident.add(ref.page_id)
        elif kind == "retract":
            assert_same_refs(
                pool.remove_owner(op[1]), naive.remove_owner(op[1])
            )
        elif kind == "evict" and resident:
            victims = sorted(resident)
            resident.discard(victims[op[1] % len(victims)])
        elif kind == "load" and op[1] not in naive.live_pages():
            resident.add(op[1])
        # The adversarial part: probe after *every* operation.
        refs = pool.take_resident_page(resident_fn)
        assert_same_refs(refs, naive.take_resident_page(resident_fn))
        assert_same_state(pool, naive)
