"""Tests for scheduler batches: pop_batch, residency, owner index."""

import pytest

from repro.core.adaptive import AdaptiveElevatorScheduler
from repro.core.schedulers import (
    BreadthFirstScheduler,
    CScanScheduler,
    DepthFirstScheduler,
    ElevatorScheduler,
    UnresolvedReference,
    make_scheduler,
)
from repro.core.template import TemplateNode
from repro.errors import SchedulerError
from repro.storage.oid import Oid

NODE = TemplateNode("n")


def ref(name, page=0, owner=0, seq=0, rejection=0.0, is_root=False):
    """A labelled reference; ``name`` is carried in the Oid serial."""
    return UnresolvedReference(
        oid=Oid(1, name),
        page_id=page,
        owner=owner,
        node=NODE,
        parent=None,
        parent_slot=-1,
        seq=seq,
        rejection=rejection,
        is_root=is_root,
    )


def serials(refs):
    return [r.oid.serial for r in refs]


class TestElevatorPopBatch:
    def test_same_page_coalesced(self):
        s = ElevatorScheduler()
        s.add(ref(1, page=5, seq=0))
        s.add(ref(2, page=5, seq=1))
        s.add(ref(3, page=9, seq=2))
        batch = s.pop_batch(max_pages=1)
        assert serials(batch) == [1, 2]
        assert len(s) == 1

    def test_contiguous_run_up(self):
        s = ElevatorScheduler()
        for name, page in ((1, 5), (2, 6), (3, 7), (4, 9)):
            s.add(ref(name, page=page, seq=name))
        batch = s.pop_batch(max_pages=4)
        # Pages 5,6,7 are contiguous; 9 is a gap and stays queued.
        assert serials(batch) == [1, 2, 3]
        assert serials(s.pop_batch(max_pages=4)) == [4]

    def test_contiguous_run_down(self):
        head = [10]
        s = ElevatorScheduler(head_fn=lambda: head[0])
        for name, page in ((1, 8), (2, 7), (3, 2)):
            s.add(ref(name, page=page, seq=name))
        # head=10, nothing above: the sweep reverses and the batch
        # takes 8 then the adjacent 7, not the distant 2.
        batch = s.pop_batch(max_pages=2)
        assert serials(batch) == [1, 2]
        assert serials(s.pop_batch(max_pages=2)) == [3]

    def test_max_pages_bounds_pages_not_refs(self):
        s = ElevatorScheduler()
        for name, (page, seq) in enumerate(
            ((5, 0), (5, 1), (6, 2), (7, 3)), start=1
        ):
            s.add(ref(name, page=page, seq=seq))
        batch = s.pop_batch(max_pages=2)
        # Three refs but only two distinct pages (5, 5, 6).
        assert serials(batch) == [1, 2, 3]

    def test_batch_of_one_matches_pop(self):
        a = ElevatorScheduler()
        b = ElevatorScheduler()
        for name, page in ((1, 3), (2, 9), (3, 1)):
            a.add(ref(name, page=page, seq=name))
            b.add(ref(name, page=page, seq=name))
        popped = []
        while len(a):
            popped.append(a.pop().oid.serial)
        batched = []
        while len(b):
            batched.extend(serials(b.pop_batch(max_pages=1)))
        assert batched == popped

    def test_empty_raises(self):
        with pytest.raises(SchedulerError):
            ElevatorScheduler().pop_batch()

    def test_one_positioning_op_per_batch(self):
        s = ElevatorScheduler()
        s.add(ref(1, page=5, seq=0))
        s.add(ref(2, page=6, seq=1))
        ops_before = s.ops
        s.pop_batch(max_pages=2)
        assert s.ops == ops_before + 1


class TestElevatorResidency:
    def test_resident_page_served_first(self):
        s = ElevatorScheduler(resident_fn=lambda page: page == 40)
        s.add(ref(1, page=5, seq=0))
        s.add(ref(2, page=40, seq=1))
        batch = s.pop_batch(max_pages=1)
        # Page 40 is buffer-resident: serving it first costs no seek.
        assert serials(batch) == [2]
        assert s.resident_batches == 1

    def test_no_resident_pages_falls_back_to_sweep(self):
        s = ElevatorScheduler(resident_fn=lambda page: False)
        s.add(ref(1, page=5, seq=0))
        s.add(ref(2, page=40, seq=1))
        assert serials(s.pop_batch(max_pages=1)) == [1]
        assert s.resident_batches == 0

    def test_single_pop_ignores_residency(self):
        # The paper's pure SCAN: pop() must stay position-ordered even
        # when a resident page is pending (figure shapes depend on it).
        s = ElevatorScheduler(resident_fn=lambda page: page == 40)
        s.add(ref(1, page=5, seq=0))
        s.add(ref(2, page=40, seq=1))
        assert s.pop().oid.serial == 1

    def test_make_scheduler_wires_resident_fn(self):
        # Satellite: make_scheduler used to silently drop resident_fn
        # for non-adaptive schedulers.
        s = make_scheduler(
            "elevator",
            head_fn=lambda: 0,
            resident_fn=lambda page: page == 40,
        )
        s.add(ref(1, page=5, seq=0))
        s.add(ref(2, page=40, seq=1))
        assert serials(s.pop_batch(max_pages=1)) == [2]
        assert s.resident_batches == 1

    def test_make_scheduler_wires_cscan_too(self):
        s = make_scheduler(
            "cscan",
            head_fn=lambda: 0,
            resident_fn=lambda page: page == 40,
        )
        s.add(ref(1, page=5, seq=0))
        s.add(ref(2, page=40, seq=1))
        assert serials(s.pop_batch(max_pages=1)) == [2]


class TestCScanPopBatch:
    def test_run_never_reverses(self):
        head = [6]
        s = CScanScheduler(head_fn=lambda: head[0])
        for name, page in ((1, 7), (2, 8), (3, 5)):
            s.add(ref(name, page=page, seq=name))
        batch = s.pop_batch(max_pages=3)
        # Upward from 6: 7, 8 — then the sweep would wrap, so the
        # batch ends rather than extend downward through 5.
        assert serials(batch) == [1, 2]

    def test_wraps_to_lowest(self):
        head = [50]
        s = CScanScheduler(head_fn=lambda: head[0])
        for name, page in ((1, 3), (2, 4)):
            s.add(ref(name, page=page, seq=name))
        batch = s.pop_batch(max_pages=2)
        assert serials(batch) == [1, 2]


class TestDequeSchedulers:
    def test_default_pop_batch_is_single_pop(self):
        for cls in (DepthFirstScheduler, BreadthFirstScheduler):
            s = cls()
            s.add(ref(1, is_root=True))
            s.add(ref(2, is_root=True))
            assert len(s.pop_batch(max_pages=8)) == 1

    def test_remove_owner_ops_proportional_to_removed(self):
        s = DepthFirstScheduler()
        for name in range(1, 101):
            s.add(ref(name, owner=name % 2, is_root=True))
        ops_before = s.ops
        removed = s.remove_owner(1)
        assert len(removed) == 50
        assert s.ops == ops_before + 50
        assert len(s) == 50

    def test_pop_after_remove_owner_skips_tombstones(self):
        s = BreadthFirstScheduler()
        s.add(ref(1, owner=1, is_root=True))
        s.add(ref(2, owner=2, is_root=True))
        s.add(ref(3, owner=1, is_root=True))
        s.remove_owner(1)
        assert s.pop().oid.serial == 2
        assert len(s) == 0

    def test_readding_same_ref_object(self):
        s = DepthFirstScheduler()
        r = ref(1, owner=1, is_root=True)
        s.add(r)
        s.remove_owner(1)
        s.add(r)  # the tombstoned object comes back
        assert s.pop().oid.serial == 1


class TestAdaptivePopBatch:
    def test_coalesces_anchor_page(self):
        s = AdaptiveElevatorScheduler()
        s.add(ref(1, page=5, seq=0))
        s.add(ref(2, page=5, seq=1))
        s.add(ref(3, page=9, seq=2))
        assert serials(s.pop_batch(max_pages=1)) == [1, 2]

    def test_resident_anchor_does_not_extend(self):
        s = AdaptiveElevatorScheduler(resident_fn=lambda page: page == 5)
        s.add(ref(1, page=5, seq=0))
        s.add(ref(2, page=6, seq=1))
        # Page 5 is resident: fetching it is free, but its physically
        # adjacent page 6 is NOT at the head, so no run extension.
        assert serials(s.pop_batch(max_pages=4)) == [1]

    def test_run_extension_from_disk_anchor(self):
        s = AdaptiveElevatorScheduler()
        for name, page in ((1, 5), (2, 6), (3, 9)):
            s.add(ref(name, page=page, seq=name))
        assert serials(s.pop_batch(max_pages=4)) == [1, 2]


class TestOwnerIndexedPools:
    def test_elevator_remove_owner_ops(self):
        s = ElevatorScheduler()
        for name in range(1, 41):
            s.add(ref(name, page=name, owner=name % 4, seq=name))
        ops_before = s.ops
        removed = s.remove_owner(0)
        assert len(removed) == 10
        assert s.ops == ops_before + 10

    def test_elevator_sweep_unperturbed_by_removal(self):
        s = ElevatorScheduler()
        for name, page in ((1, 2), (2, 4), (3, 6)):
            s.add(ref(name, page=page, owner=name, seq=name))
        s.remove_owner(2)
        assert s.pop().oid.serial == 1
        assert s.pop().oid.serial == 3
