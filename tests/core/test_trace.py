"""Tests for assembly tracing."""

import pytest

from repro.core import trace
from repro.core.assembly import Assembly
from repro.core.trace import AssemblyTracer, TraceEvent
from repro.storage.oid import Oid
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template, payload_predicate

from tests.core.test_assembly import (
    figure4_database,
    figure4_template,
    lay_out_figure4,
)
from repro.cluster.layout import layout_database
from repro.cluster.policies import Unclustered
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore


class TestTracerBasics:
    def test_record_and_query(self):
        tracer = AssemblyTracer()
        tracer.record(trace.FETCHED, 0, Oid(1, 1), label="A", page_id=3)
        tracer.record(trace.EMITTED, 0, Oid(1, 1))
        assert len(tracer) == 2
        assert tracer.fetch_order() == [Oid(1, 1)]
        assert [e.kind for e in tracer.per_owner(0)] == [
            trace.FETCHED, trace.EMITTED,
        ]
        assert tracer.counts() == {trace.FETCHED: 1, trace.EMITTED: 1}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AssemblyTracer().record("teleported", 0, Oid(1, 1))

    def test_event_str(self):
        event = TraceEvent(trace.FETCHED, 2, Oid(1, 5), label="B", page_id=9)
        text = str(event)
        assert "#2" in text and "fetched" in text and "@page 9" in text

    def test_summarize_truncates(self):
        tracer = AssemblyTracer()
        for serial in range(5):
            tracer.record(trace.EMITTED, serial, Oid(1, serial + 1))
        text = tracer.summarize(max_events=2)
        assert "3 more events" in text

    def test_clear(self):
        tracer = AssemblyTracer()
        tracer.record(trace.EMITTED, 0, Oid(1, 1))
        tracer.clear()
        assert len(tracer) == 0


class TestTracedAssembly:
    def run_traced(self, scheduler="depth-first", window=2):
        store = ObjectStore(SimulatedDisk())
        builder = figure4_database(3)
        layout = lay_out_figure4(builder, store)
        tracer = AssemblyTracer()
        op = Assembly(
            ListSource(layout.root_order),
            store,
            figure4_template(),
            window_size=window,
            scheduler=scheduler,
            tracer=tracer,
        )
        emitted = op.execute()
        return builder, emitted, tracer

    def test_fetch_order_matches_figure5(self):
        """The tracer replays Section 6.2's depth-first order."""
        builder, _emitted, tracer = self.run_traced()
        labels = [
            f"{builder.registry.by_id(oid.type_id).name}{oid.serial}"
            for oid in tracer.fetch_order()
        ]
        assert labels[:4] == ["A1", "B1", "D1", "C1"]

    def test_every_object_emits_once(self):
        _builder, emitted, tracer = self.run_traced()
        assert len(tracer.of_kind(trace.EMITTED)) == len(emitted) == 3

    def test_admissions_precede_fetches_per_owner(self):
        _builder, _emitted, tracer = self.run_traced()
        for owner in range(3):
            kinds = [e.kind for e in tracer.per_owner(owner)]
            assert kinds[0] == trace.ADMITTED
            assert kinds[-1] == trace.EMITTED

    def test_tracing_does_not_change_results(self):
        _builder, traced_out, _tracer = self.run_traced("elevator", 2)
        store = ObjectStore(SimulatedDisk())
        builder = figure4_database(3)
        layout = lay_out_figure4(builder, store)
        plain = Assembly(
            ListSource(layout.root_order), store, figure4_template(),
            window_size=2, scheduler="elevator",
        ).execute()
        assert {c.root_oid for c in traced_out} == {c.root_oid for c in plain}

    def test_reopen_clears_trace(self):
        store = ObjectStore(SimulatedDisk())
        builder = figure4_database(2)
        layout = lay_out_figure4(builder, store)
        tracer = AssemblyTracer()
        op = Assembly(
            ListSource(layout.root_order), store, figure4_template(),
            window_size=1, tracer=tracer,
        )
        op.execute()
        first_len = len(tracer)
        op.execute()
        assert len(tracer) == first_len  # cleared, then refilled


class TestPredicateAndSharingEvents:
    def test_predicate_events_and_aborts(self):
        db = generate_acob(30, seed=3)
        store = ObjectStore(SimulatedDisk())
        layout = layout_database(db.complex_objects, store, Unclustered())
        tracer = AssemblyTracer()
        op = Assembly(
            ListSource(layout.root_order),
            store,
            make_template(
                db, predicate_position=1, predicate=payload_predicate(0.5)
            ),
            window_size=4,
            tracer=tracer,
        )
        emitted = op.execute()
        counts = tracer.counts()
        assert counts[trace.PREDICATE_PASSED] == len(emitted)
        assert counts[trace.PREDICATE_FAILED] == op.stats.aborted
        assert counts[trace.ABORTED] == op.stats.aborted
        assert counts.get(trace.DEFERRED, 0) > 0
        # Every emitted object's deferred refs were activated.
        assert counts.get(trace.ACTIVATED, 0) == counts[trace.DEFERRED] - sum(
            1
            for owner in range(30)
            if any(
                e.kind == trace.ABORTED for e in tracer.per_owner(owner)
            )
            for e in tracer.per_owner(owner)
            if e.kind == trace.DEFERRED
        )

    def test_shared_link_events(self):
        db = generate_acob(20, sharing=0.25, seed=4)
        store = ObjectStore(SimulatedDisk())
        layout = layout_database(
            db.complex_objects, store, Unclustered(), shared=db.shared_pool
        )
        tracer = AssemblyTracer()
        op = Assembly(
            ListSource(layout.root_order),
            store,
            make_template(db, sharing=0.25),
            window_size=5,
            tracer=tracer,
        )
        op.execute()
        assert len(tracer.of_kind(trace.LINKED_SHARED)) == op.stats.shared_links
        # Resolution order interleaves fetches and links.
        assert len(tracer.resolution_order()) == (
            op.stats.fetches + op.stats.shared_links
        )
