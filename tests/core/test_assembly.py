"""Tests for the assembly operator itself.

The first test class replays the paper's running example (Figures 4–5):
complex objects shaped A → {B → D, C}, assembled through a window of 2,
checking the exact resolution orders Section 6.2 lists for depth-first
and breadth-first scheduling.
"""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering, Unclustered
from repro.core.assembled import AssembledComplexObject
from repro.core.assembly import Assembly
from repro.core.predicates import Predicate, int_less_than
from repro.core.template import Template, TemplateNode, binary_tree_template
from repro.errors import AssemblyError
from repro.objects.builder import GraphBuilder
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template


def figure4_database(n=3):
    """The paper's example complex object: A → {B → D, C}."""
    builder = GraphBuilder()
    builder.define_type("A", int_fields=("id",), ref_fields=("b", "c"))
    builder.define_type("B", int_fields=("id",), ref_fields=("d",))
    builder.define_type("C", int_fields=("id",))
    builder.define_type("D", int_fields=("id",))
    for index in range(n):
        d = builder.new_object("D", ints={"id": index})
        b = builder.new_object("B", ints={"id": index}, refs={"d": d.oid})
        c = builder.new_object("C", ints={"id": index})
        a = builder.new_object(
            "A", ints={"id": index}, refs={"b": b.oid, "c": c.oid}
        )
        builder.complex_object(a, [b, c, d])
    builder.validate()
    return builder


def figure4_template():
    a = TemplateNode("A", type_name="A")
    b = a.child(0, "B", type_name="B")
    a.child(1, "C", type_name="C")
    b.child(0, "D", type_name="D")
    return Template(a).finalize()


def lay_out_figure4(builder, store):
    return layout_database(
        builder.complex_objects,
        store,
        Unclustered(),
        shared=builder.shared_objects,
        shuffle_roots=False,
    )


def spy_fetch_order(store):
    """Record the label-carrying serials of fetched objects, in order."""
    order = []
    original = store.fetch_pinned

    def spy(oid):
        order.append(oid)
        return original(oid)

    store.fetch_pinned = spy
    return order


def label_of(builder, oid):
    type_name = builder.registry.by_id(oid.type_id).name
    return f"{type_name}{oid.serial}"


class TestPaperExampleOrders:
    """Section 6.2's resolution orders, replayed exactly."""

    def run(self, scheduler, window, n=3):
        store = ObjectStore(SimulatedDisk())
        builder = figure4_database(n)
        layout = lay_out_figure4(builder, store)
        order = spy_fetch_order(store)
        op = Assembly(
            ListSource(layout.root_order),
            store,
            figure4_template(),
            window_size=window,
            scheduler=scheduler,
        )
        emitted = op.execute()
        assert len(emitted) == n
        return [label_of(builder, oid) for oid in order]

    def test_depth_first_window_2(self):
        """'A1, B1, D1, C1, A2, ...' — object-at-a-time despite W=2."""
        order = self.run("depth-first", window=2)
        assert order == [
            "A1", "B1", "D1", "C1",
            "A2", "B2", "D2", "C2",
            "A3", "B3", "D3", "C3",
        ]

    def test_breadth_first_window_2(self):
        """'A1, A2, B1, C1, B2, C2, D1, D2, A3, B3, C3, D3'."""
        order = self.run("breadth-first", window=2)
        assert order == [
            "A1", "A2", "B1", "C1", "B2", "C2", "D1", "D2",
            "A3", "B3", "C3", "D3",
        ]

    def test_depth_first_window_1_is_naive(self):
        order = self.run("depth-first", window=1)
        assert order == [
            "A1", "B1", "D1", "C1",
            "A2", "B2", "D2", "C2",
            "A3", "B3", "D3", "C3",
        ]


class TestCorrectness:
    @pytest.mark.parametrize("scheduler", ["depth-first", "breadth-first", "elevator"])
    @pytest.mark.parametrize("window", [1, 3, 10])
    def test_assembles_everything_swizzled(self, scheduler, window):
        db = generate_acob(25, seed=2)
        store = ObjectStore(SimulatedDisk())
        layout = layout_database(
            db.complex_objects, store, Unclustered(), shared=db.shared_pool
        )
        op = Assembly(
            ListSource(layout.root_order),
            store,
            make_template(db),
            window_size=window,
            scheduler=scheduler,
        )
        emitted = op.execute()
        assert len(emitted) == 25
        assert {e.root_oid for e in emitted} == set(layout.roots)
        for cobj in emitted:
            cobj.verify_swizzled()
            assert cobj.object_count() == 7

    def test_content_matches_database(self):
        db = generate_acob(10, seed=4)
        store = ObjectStore(SimulatedDisk())
        layout = layout_database(
            db.complex_objects, store, Unclustered(), shared=db.shared_pool
        )
        op = Assembly(
            ListSource(layout.root_order), store, make_template(db),
            window_size=4, scheduler="elevator",
        )
        by_root = {e.root_oid: e for e in op.execute()}
        for index, cobj in enumerate(db.complex_objects):
            assembled = by_root[cobj.root]
            for obj in assembled.scan():
                expected = cobj.objects[obj.oid]
                assert obj.ints[3] == expected.ints["payload"]

    def test_emits_promptly_not_batched(self):
        """'As soon as any one … becomes assembled and passed up the
        query tree, the operator retrieves another one.'"""
        db = generate_acob(6, seed=1)
        store = ObjectStore(SimulatedDisk())
        layout = layout_database(db.complex_objects, store, Unclustered())
        op = Assembly(
            ListSource(layout.root_order), store, make_template(db),
            window_size=2, scheduler="depth-first",
        )
        op.open()
        first = op.next()
        assert isinstance(first, AssembledComplexObject)
        # Only the first object's fetches (7) plus nothing else finished.
        assert op.stats.emitted == 1
        assert op.stats.fetches <= 7 + 6  # window lookahead is bounded
        op.close()

    def test_pins_released_after_run(self, small_acob, small_layout):
        store = small_layout.store
        op = Assembly(
            ListSource(small_layout.root_order),
            store,
            make_template(small_acob),
            window_size=5,
            scheduler="elevator",
        )
        op.execute()
        assert store.buffer.pinned_pages == 0

    def test_pins_released_on_early_close(self, small_acob, small_layout):
        store = small_layout.store
        op = Assembly(
            ListSource(small_layout.root_order),
            store,
            make_template(small_acob),
            window_size=5,
            scheduler="elevator",
        )
        op.open()
        op.next()  # one object out, others mid-assembly
        op.close()
        assert store.buffer.pinned_pages == 0

    def test_no_pinning_mode(self, small_acob, small_layout):
        store = small_layout.store
        op = Assembly(
            ListSource(small_layout.root_order),
            store,
            make_template(small_acob),
            window_size=5,
            pin_pages=False,
        )
        op.execute()
        assert op.stats.peak_pinned_pages <= 1

    def test_window_size_validation(self, small_acob, small_layout):
        with pytest.raises(AssemblyError):
            Assembly(
                ListSource([]), small_layout.store, make_template(small_acob),
                window_size=0,
            )

    def test_bad_input_type(self, small_acob, small_layout):
        op = Assembly(
            ListSource(["not an oid"]),
            small_layout.store,
            make_template(small_acob),
        )
        with pytest.raises(AssemblyError):
            op.execute()

    def test_empty_input(self, small_acob, small_layout):
        op = Assembly(
            ListSource([]), small_layout.store, make_template(small_acob)
        )
        assert op.execute() == []

    def test_stats_populated(self, small_acob, small_layout):
        op = Assembly(
            ListSource(small_layout.root_order),
            small_layout.store,
            make_template(small_acob),
            window_size=4,
        )
        op.execute()
        stats = op.stats
        assert stats.emitted == 30
        assert stats.fetches == 30 * 7
        assert stats.refs_resolved == 30 * 7
        assert stats.scheduler_ops > 0
        assert stats.peak_pinned_pages <= 6 * 3 + 7

    def test_reopen_reruns(self, small_acob, small_layout):
        op = Assembly(
            ListSource(small_layout.root_order),
            small_layout.store,
            make_template(small_acob),
            window_size=2,
        )
        assert len(op.execute()) == 30
        assert len(op.execute()) == 30


class TestSharing:
    def make(self, n=20, sharing=0.25, use_stats=True, window=5):
        db = generate_acob(n, sharing=sharing, seed=6)
        store = ObjectStore(SimulatedDisk())
        layout = layout_database(
            db.complex_objects, store, Unclustered(), shared=db.shared_pool
        )
        op = Assembly(
            ListSource(layout.root_order),
            store,
            make_template(db, sharing=sharing),
            window_size=window,
            scheduler="elevator",
            use_sharing_statistics=use_stats,
        )
        return db, store, op

    def test_shared_components_loaded_once(self):
        db, _store, op = self.make()
        emitted = op.execute()
        # Every reference beyond the first to a pool object is a link.
        from repro.workloads.sharing import measure_sharing

        profile = measure_sharing(db.complex_objects, db.shared_pool)
        assert op.stats.shared_links == profile.duplicate_references
        assert op.stats.fetches == 20 * 6 + profile.shared_objects

    def test_shared_objects_are_identical_in_memory(self):
        """Section 5: not 'loaded twice … into two different memory
        locations'."""
        _db, _store, op = self.make()
        emitted = op.execute()
        by_oid = {}
        for cobj in emitted:
            leaf = cobj.root.follow(1, 1)  # position 6 leaf (shared)
            by_oid.setdefault(leaf.oid, set()).add(id(leaf))
        assert all(len(ids) == 1 for ids in by_oid.values())

    def test_without_statistics_duplicates_load(self):
        db, _store, op = self.make(use_stats=False)
        op.execute()
        assert op.stats.shared_links == 0
        assert op.stats.fetches == 20 * 7  # every reference fetched

    def test_shared_pages_unpinned_when_last_referrer_leaves(self):
        _db, store, op = self.make()
        op.execute()
        assert store.buffer.pinned_pages == 0

    def test_swizzle_valid_with_sharing(self):
        _db, _store, op = self.make()
        for cobj in op.execute():
            cobj.verify_swizzled()


class TestPredicates:
    def make(self, n=40, selectivity=0.5, window=5, scheduler="elevator",
             selective=None, position=1):
        from repro.workloads.acob import payload_predicate

        db = generate_acob(n, seed=9)
        store = ObjectStore(SimulatedDisk())
        layout = layout_database(db.complex_objects, store, Unclustered())
        template = make_template(
            db,
            predicate_position=position,
            predicate=payload_predicate(selectivity),
        )
        op = Assembly(
            ListSource(layout.root_order), store, template,
            window_size=window, scheduler=scheduler, selective=selective,
        )
        return db, op

    def oracle(self, db, selectivity, position=1):
        from repro.workloads.acob import PAYLOAD_RANGE

        bound = int(selectivity * PAYLOAD_RANGE)
        return sum(
            1 for payloads in db.payloads if payloads[position] < bound
        )

    def test_emits_only_satisfying_objects(self):
        db, op = self.make(selectivity=0.5)
        emitted = op.execute()
        assert len(emitted) == self.oracle(db, 0.5)
        assert op.stats.aborted == 40 - len(emitted)

    def test_rejected_objects_fetch_only_predicate_path(self):
        """Section 6.5: wasted fetches are eliminated."""
        db, op = self.make(selectivity=0.3)
        emitted = op.execute()
        assert op.stats.fetches == len(emitted) * 7 + op.stats.aborted * 2

    def test_unselective_mode_fetches_more(self):
        db, op = self.make(selectivity=0.3, selective=False)
        emitted = op.execute()
        # Without deferral, sibling subtrees race the predicate fetch.
        assert op.stats.fetches > len(emitted) * 7 + op.stats.aborted * 2

    def test_zero_selectivity_emits_nothing(self):
        _db, op = self.make(selectivity=0.0)
        assert op.execute() == []
        assert op.stats.aborted == 40

    def test_full_selectivity_emits_everything(self):
        _db, op = self.make(selectivity=1.0)
        assert len(op.execute()) == 40
        assert op.stats.aborted == 0

    def test_predicate_on_root(self):
        db, op = self.make(selectivity=0.4, position=0)
        emitted = op.execute()
        assert len(emitted) == self.oracle(db, 0.4, position=0)
        # Rejection at the root costs exactly one fetch.
        assert op.stats.fetches == len(emitted) * 7 + op.stats.aborted * 1

    def test_predicate_on_leaf(self):
        db, op = self.make(selectivity=0.5, position=6)
        emitted = op.execute()
        assert len(emitted) == self.oracle(db, 0.5, position=6)
        # Path to position 6: n0 -> n2 -> n6 = 3 fetches per rejection.
        assert op.stats.fetches == len(emitted) * 7 + op.stats.aborted * 3

    def test_aborts_release_pins(self):
        _db, op = self.make(selectivity=0.2)
        op.execute()
        assert op.stats.aborted > 0

    def test_deferred_refs_scheduled_after_pass(self):
        _db, op = self.make(selectivity=1.0)
        op.execute()
        assert op.stats.deferred_scheduled > 0

    @pytest.mark.parametrize("scheduler", ["depth-first", "breadth-first", "elevator"])
    def test_every_scheduler_agrees_on_results(self, scheduler):
        db, op = self.make(selectivity=0.6, scheduler=scheduler)
        emitted = op.execute()
        assert len(emitted) == self.oracle(db, 0.6)
        for cobj in emitted:
            cobj.verify_swizzled()
