"""Tests for the bounded shared-component table."""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import Unclustered
from repro.core.assembly import Assembly
from repro.errors import AssemblyError
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template


def build(n=40, sharing=0.25, capacity=None, seed=11):
    db = generate_acob(n, sharing=sharing, seed=seed)
    store = ObjectStore(SimulatedDisk())
    layout = layout_database(
        db.complex_objects, store, Unclustered(), shared=db.shared_pool
    )
    op = Assembly(
        ListSource(layout.root_order),
        store,
        make_template(db, sharing=sharing),
        window_size=4,
        scheduler="elevator",
        shared_table_capacity=capacity,
    )
    return db, store, op


class TestBoundedSharedTable:
    def test_bad_capacity(self):
        db, store, _op = build()
        with pytest.raises(AssemblyError):
            Assembly(
                ListSource([]), store, make_template(db),
                shared_table_capacity=0,
            )

    def test_unbounded_never_evicts(self):
        _db, _store, op = build(capacity=None)
        op.execute()
        assert op.stats.shared_evictions == 0

    def test_tiny_table_evicts_and_refetches(self):
        _db, _store, unbounded = build(capacity=None)
        unbounded.execute()

        _db, _store, bounded = build(capacity=1)
        emitted = bounded.execute()
        assert len(emitted) == 40
        assert bounded.stats.shared_evictions > 0
        # Evicted components must be fetched again when re-referenced.
        assert bounded.stats.fetches > unbounded.stats.fetches
        assert bounded.stats.shared_links < unbounded.stats.shared_links

    def test_results_identical_under_bound(self):
        _db, _store, unbounded = build(capacity=None)
        expected = {c.root_oid for c in unbounded.execute()}
        _db, _store, bounded = build(capacity=2)
        got = {c.root_oid for c in bounded.execute()}
        assert got == expected

    def test_swizzling_valid_under_bound(self):
        _db, _store, bounded = build(capacity=1)
        for cobj in bounded.execute():
            cobj.verify_swizzled()

    def test_pins_released_under_bound(self):
        _db, store, bounded = build(capacity=1)
        bounded.execute()
        assert store.buffer.pinned_pages == 0

    def test_in_use_entries_survive(self):
        """With a window holding referrers, live entries never drop."""
        _db, _store, op = build(capacity=1)
        op.open()
        first = op.next()
        assert first is not None
        # Any entry still referenced by an in-window object remains.
        for entry in op._shared.values():
            if entry.refcount > 0:
                assert entry.assembled is not None
        op.close()
