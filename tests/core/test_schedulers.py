"""Tests for the three reference schedulers (paper Section 6.2)."""

import pytest

from repro.core.schedulers import (
    BreadthFirstScheduler,
    DepthFirstScheduler,
    ElevatorScheduler,
    UnresolvedReference,
    make_scheduler,
)
from repro.core.template import TemplateNode
from repro.errors import SchedulerError
from repro.storage.oid import Oid

NODE = TemplateNode("n")


def ref(name, page=0, owner=0, seq=0, rejection=0.0, is_root=False):
    """A labelled reference; ``name`` is carried in the Oid serial."""
    return UnresolvedReference(
        oid=Oid(1, name),
        page_id=page,
        owner=owner,
        node=NODE,
        parent=None,
        parent_slot=-1,
        seq=seq,
        rejection=rejection,
        is_root=is_root,
    )


def drain(scheduler):
    out = []
    while len(scheduler):
        out.append(scheduler.pop().oid.serial)
    return out


class TestDepthFirst:
    def test_lifo_for_children(self):
        s = DepthFirstScheduler()
        s.add(ref(1, is_root=True))
        popped = s.pop()
        assert popped.oid.serial == 1
        s.add_siblings([ref(2), ref(3)])  # children of 1, slot order
        assert s.pop().oid.serial == 2  # first-slot child pops first

    def test_roots_enter_at_bottom(self):
        s = DepthFirstScheduler()
        s.add(ref(1, is_root=True))
        s.add(ref(2, is_root=True))
        assert s.pop().oid.serial == 1
        s.add_siblings([ref(10), ref(11)])  # children of root 1
        # Entire subtree of root 1 drains before root 2.
        assert drain(s) == [10, 11, 2]

    def test_empty_pop(self):
        with pytest.raises(SchedulerError):
            DepthFirstScheduler().pop()

    def test_remove_owner(self):
        s = DepthFirstScheduler()
        s.add(ref(1, owner=0, is_root=True))
        s.add(ref(2, owner=1, is_root=True))
        s.add_siblings([ref(3, owner=1)])
        removed = s.remove_owner(1)
        assert sorted(r.oid.serial for r in removed) == [2, 3]
        assert drain(s) == [1]

    def test_ops_counted(self):
        s = DepthFirstScheduler()
        s.add(ref(1))
        s.pop()
        assert s.ops == 2


class TestBreadthFirst:
    def test_fifo_across_window(self):
        s = BreadthFirstScheduler()
        s.add(ref(1, is_root=True))
        s.add(ref(2, is_root=True))
        assert s.pop().oid.serial == 1
        s.add_siblings([ref(10), ref(11)])  # children of 1 queue behind 2
        assert drain(s) == [2, 10, 11]

    def test_remove_owner(self):
        s = BreadthFirstScheduler()
        for serial, owner in ((1, 0), (2, 1), (3, 0)):
            s.add(ref(serial, owner=owner))
        s.remove_owner(0)
        assert drain(s) == [2]


class TestElevator:
    def test_scan_upward_from_head(self):
        head = [5]
        s = ElevatorScheduler(head_fn=lambda: head[0])
        for serial, page in ((1, 2), (2, 7), (3, 9)):
            s.add(ref(serial, page=page))
        assert s.pop().oid.serial == 2  # first page >= 5
        head[0] = 7
        assert s.pop().oid.serial == 3  # continue upward
        head[0] = 9
        assert s.pop().oid.serial == 1  # reverse at the end

    def test_downward_sweep_continues(self):
        head = [10]
        s = ElevatorScheduler(head_fn=lambda: head[0])
        for serial, page in ((1, 8), (2, 4), (3, 12)):
            s.add(ref(serial, page=page))
        assert s.pop().oid.serial == 3  # up: page 12
        head[0] = 12
        # Nothing above: reverse, nearest below head.
        assert s.pop().oid.serial == 1
        head[0] = 8
        assert s.pop().oid.serial == 2

    def test_same_page_prefers_higher_rejection(self):
        """Section 5: equal cost => fetch the likelier rejector first."""
        s = ElevatorScheduler(head_fn=lambda: 0)
        s.add(ref(1, page=3, rejection=0.1, seq=1))
        s.add(ref(2, page=3, rejection=0.9, seq=2))
        assert s.pop().oid.serial == 2

    def test_same_page_ties_break_by_arrival(self):
        s = ElevatorScheduler(head_fn=lambda: 0)
        s.add(ref(1, page=3, seq=1))
        s.add(ref(2, page=3, seq=2))
        assert s.pop().oid.serial == 1

    def test_remove_owner(self):
        s = ElevatorScheduler(head_fn=lambda: 0)
        s.add(ref(1, page=1, owner=0))
        s.add(ref(2, page=2, owner=1))
        s.remove_owner(0)
        assert drain(s) == [2]

    def test_pop_empty(self):
        with pytest.raises(SchedulerError):
            ElevatorScheduler().pop()

    def test_total_seek_beats_fifo_order(self):
        """SCAN over a batch of scattered pages moves the head less
        than FIFO order — the operator's core advantage."""
        import random

        rng = random.Random(0)
        pages = [rng.randrange(1000) for _ in range(100)]

        def total_seek(order):
            head, total = 0, 0
            for page in order:
                total += abs(page - head)
                head = page
            return total

        head = [0]
        s = ElevatorScheduler(head_fn=lambda: head[0])
        for i, page in enumerate(pages):
            s.add(ref(i, page=page, seq=i))
        scan_order = []
        while len(s):
            popped = s.pop()
            head[0] = popped.page_id
            scan_order.append(popped.page_id)
        assert total_seek(scan_order) < total_seek(pages) / 5


class TestRegistry:
    def test_make_by_name(self):
        assert make_scheduler("depth-first").name == "depth-first"
        assert make_scheduler("breadth-first").name == "breadth-first"
        assert make_scheduler("elevator").name == "elevator"

    def test_elevator_gets_head_fn(self):
        head = [42]
        s = make_scheduler("elevator", head_fn=lambda: head[0])
        s.add(ref(1, page=50))
        s.add(ref(2, page=10))
        assert s.pop().oid.serial == 1  # respects head position

    def test_unknown_name(self):
        with pytest.raises(SchedulerError):
            make_scheduler("random")
