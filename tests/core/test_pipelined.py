"""The pipelined (completion-driven) assembly driver.

Two families of guarantees:

* **Equivalence** — the pipelined driver emits exactly what the
  synchronous loop emits, for every scheduler, clustering, issue depth
  and batch size (including selective assembly and the pin-bound
  fallback path).
* **Exactness** — with one device, issue depth 1 and batch 1 the event
  clock reproduces the synchronous :class:`CostedDisk` service-time
  total *bit-for-bit* (property-tested across schedulers and
  clusterings).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.layout import layout_database
from repro.cluster.policies import (
    InterObjectClustering,
    IntraObjectClustering,
    Unclustered,
)
from repro.core.assembly import Assembly
from repro.core.multidevice import MultiDeviceScheduler, PipelinedAssembly
from repro.core.schedulers import make_scheduler
from repro.errors import AssemblyError
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import CostedDisk, CostModel
from repro.storage.events import AsyncIOEngine
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import (
    generate_acob,
    make_template,
    payload_predicate,
)

SCHEDULERS = ("depth-first", "breadth-first", "elevator", "cscan")
CLUSTERINGS = ("inter-object", "intra-object", "unclustered")


def make_policy(name):
    if name == "inter-object":
        return InterObjectClustering(cluster_pages=64)
    if name == "intra-object":
        return IntraObjectClustering()
    return Unclustered()


def build_single(
    n=60, clustering="inter-object", scheduler="elevator",
    window=8, selectivity=None, buffer_capacity=None,
):
    db = generate_acob(n, seed=2)
    disk = CostedDisk(n_pages=4096)
    store = ObjectStore(disk, BufferManager(disk, capacity=buffer_capacity))
    layout = layout_database(
        db.complex_objects, store, make_policy(clustering),
        shared=db.shared_pool,
    )
    template = make_template(
        db,
        predicate_position=2 if selectivity is not None else None,
        predicate=(
            payload_predicate(selectivity)
            if selectivity is not None
            else None
        ),
    )
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        template,
        window_size=window,
        scheduler=make_scheduler(
            scheduler,
            head_fn=lambda: disk.head_position,
            resident_fn=store.buffer.is_resident,
        ),
    )
    return disk, store, operator


def pipelined(disk, operator, issue_depth=1, batch_pages=1, cpu=0.0):
    engine = AsyncIOEngine(disk, disk.cost_model)
    driver = PipelinedAssembly(
        operator,
        engine,
        issue_depth=issue_depth,
        batch_pages=batch_pages,
        cpu_ms_per_ref=cpu,
    )
    return engine, driver, driver.run()


class TestValidation:
    def test_bad_parameters(self):
        disk, _store, operator = build_single(n=5)
        engine = AsyncIOEngine(disk, disk.cost_model)
        with pytest.raises(AssemblyError):
            PipelinedAssembly(operator, engine, issue_depth=0)
        with pytest.raises(AssemblyError):
            PipelinedAssembly(operator, engine, batch_pages=0)
        with pytest.raises(AssemblyError):
            PipelinedAssembly(operator, engine, cpu_ms_per_ref=-1.0)

    def test_engine_must_drive_the_same_disk(self):
        disk, _store, operator = build_single(n=5)
        other = AsyncIOEngine(CostedDisk(n_pages=64))
        with pytest.raises(AssemblyError):
            PipelinedAssembly(operator, other)


class TestEquivalence:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_same_output_as_synchronous(self, scheduler):
        _disk, _store, sync_op = build_single(scheduler=scheduler)
        expected = sync_op.execute()
        disk, store, operator = build_single(scheduler=scheduler)
        _engine, _driver, emitted = pipelined(disk, operator)
        assert [c.root.oid for c in emitted] == [
            c.root.oid for c in expected
        ]
        for cobj in emitted:
            cobj.verify_swizzled()
        assert store.buffer.pinned_pages == 0

    def test_deep_issue_and_batching_same_objects(self):
        _disk, _store, sync_op = build_single()
        expected = sorted(c.root.oid for c in sync_op.execute())
        disk, store, operator = build_single()
        engine, driver, emitted = pipelined(
            disk, operator, issue_depth=3, batch_pages=4, cpu=0.1
        )
        assert sorted(c.root.oid for c in emitted) == expected
        assert driver.stats.max_in_flight > 1
        assert store.buffer.pinned_pages == 0

    def test_selective_assembly_same_survivors(self):
        _disk, _store, sync_op = build_single(selectivity=0.5)
        expected = sorted(c.root.oid for c in sync_op.execute())
        disk, _store2, operator = build_single(selectivity=0.5)
        _engine, _driver, emitted = pipelined(
            disk, operator, issue_depth=2, batch_pages=4
        )
        assert sorted(c.root.oid for c in emitted) == expected
        assert operator.stats.aborted > 0

    def test_pin_bound_fallback_still_correct(self):
        _disk, _store, sync_op = build_single(window=4)
        expected = sorted(c.root.oid for c in sync_op.execute())
        # A buffer barely above the window's pin bound: wide batches
        # cannot be admitted atomically and must fall back.
        disk, store, operator = build_single(window=4, buffer_capacity=30)
        _engine, driver, emitted = pipelined(
            disk, operator, issue_depth=2, batch_pages=16
        )
        assert sorted(c.root.oid for c in emitted) == expected
        assert store.buffer.pinned_pages == 0


class TestElapsedTime:
    def test_multi_device_overlap_beats_single(self):
        def run(n_devices):
            db = generate_acob(200, seed=2)
            disk = MultiDeviceDisk(
                n_devices=n_devices,
                pages_per_device=(7 * 64) // n_devices + 128,
            )
            store = ObjectStore(disk, BufferManager(disk))
            layout = layout_database(
                db.complex_objects, store,
                InterObjectClustering(
                    cluster_pages=64,
                    disk_order=db.type_ids_depth_first(),
                ),
                shared=db.shared_pool,
            )
            operator = Assembly(
                ListSource(layout.root_order),
                store,
                make_template(db),
                window_size=20 * n_devices,
                scheduler=MultiDeviceScheduler(disk),
            )
            engine = AsyncIOEngine(disk, CostModel())
            driver = PipelinedAssembly(
                operator, engine, issue_depth=2, batch_pages=4
            )
            emitted = driver.run()
            assert len(emitted) == 200
            return engine

        single = run(1)
        striped = run(4)
        assert striped.elapsed < single.elapsed
        # One device cannot overlap anything: elapsed == busy.
        assert single.elapsed == single.busy_time()
        # Four devices genuinely overlap: elapsed < summed busy time.
        assert striped.elapsed < striped.busy_time()

    def test_cpu_hidden_by_issue_depth(self):
        def run(depth):
            disk, _store, operator = build_single(n=80, window=12)
            engine, _driver, emitted = pipelined(
                disk, operator, issue_depth=depth, batch_pages=2, cpu=0.5
            )
            assert len(emitted) == 80
            return engine.elapsed

        assert run(2) < run(1)


class TestExactness:
    def test_elevator_matches_costed_disk_exactly(self):
        _disk, _store, sync_op = build_single(n=80)
        sync_out = sync_op.execute()
        sync_disk = _disk
        disk, _store2, operator = build_single(n=80)
        engine, _driver, emitted = pipelined(disk, operator)
        assert engine.elapsed == sync_disk.service_time_total
        assert disk.service_time_total == sync_disk.service_time_total
        assert len(emitted) == len(sync_out)

    @settings(max_examples=10, deadline=None)
    @given(
        scheduler=st.sampled_from(SCHEDULERS),
        clustering=st.sampled_from(CLUSTERINGS),
        window=st.integers(min_value=1, max_value=12),
        n=st.integers(min_value=10, max_value=40),
    )
    def test_depth_one_is_bitwise_synchronous(
        self, scheduler, clustering, window, n
    ):
        """One device, issue depth 1, batch 1: the event clock equals
        the synchronous service-time fold bit-for-bit."""
        sync_disk, _store, sync_op = build_single(
            n=n, clustering=clustering, scheduler=scheduler, window=window
        )
        sync_out = sync_op.execute()
        disk, store, operator = build_single(
            n=n, clustering=clustering, scheduler=scheduler, window=window
        )
        engine, _driver, emitted = pipelined(disk, operator)
        assert engine.elapsed == sync_disk.service_time_total
        assert disk.service_time_total == sync_disk.service_time_total
        assert [c.root.oid for c in emitted] == [
            c.root.oid for c in sync_out
        ]
        assert store.buffer.pinned_pages == 0
