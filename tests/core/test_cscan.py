"""Tests for the C-SCAN scheduler."""

import pytest

from repro.core.schedulers import CScanScheduler, make_scheduler
from repro.errors import SchedulerError

from tests.core.test_schedulers import drain, ref


class TestCScan:
    def test_sweeps_upward(self):
        head = [5]
        s = CScanScheduler(head_fn=lambda: head[0])
        for serial, page in ((1, 2), (2, 7), (3, 9)):
            s.add(ref(serial, page=page))
        assert s.pop().oid.serial == 2  # first page >= 5
        head[0] = 7
        assert s.pop().oid.serial == 3

    def test_wraps_to_lowest_instead_of_reversing(self):
        head = [10]
        s = CScanScheduler(head_fn=lambda: head[0])
        for serial, page in ((1, 2), (2, 8)):
            s.add(ref(serial, page=page))
        # Nothing at or above 10: wrap to the LOWEST page (2), not the
        # nearest below (8) as the elevator would.
        assert s.pop().oid.serial == 1

    def test_same_page_prefers_higher_rejection(self):
        s = CScanScheduler(head_fn=lambda: 0)
        s.add(ref(1, page=3, rejection=0.1, seq=1))
        s.add(ref(2, page=3, rejection=0.9, seq=2))
        assert s.pop().oid.serial == 2

    def test_remove_owner(self):
        s = CScanScheduler()
        s.add(ref(1, page=1, owner=0))
        s.add(ref(2, page=2, owner=1))
        s.remove_owner(0)
        assert drain(s) == [2]

    def test_empty_pop(self):
        with pytest.raises(SchedulerError):
            CScanScheduler().pop()

    def test_registry(self):
        head = [50]
        s = make_scheduler("cscan", head_fn=lambda: head[0])
        s.add(ref(1, page=10))
        s.add(ref(2, page=60))
        assert s.pop().oid.serial == 2  # upward from 50

    def test_competitive_with_elevator_end_to_end(self):
        """C-SCAN lands in the elevator's league on the main benchmark."""
        from repro.bench.harness import ExperimentConfig, run_experiment

        config = dict(
            n_complex_objects=400,
            clustering="inter-object",
            window_size=40,
            cluster_pages=64,
        )
        elevator = run_experiment(
            ExperimentConfig(scheduler="elevator", **config)
        )
        cscan = run_experiment(ExperimentConfig(scheduler="cscan", **config))
        depth_first = run_experiment(
            ExperimentConfig(scheduler="depth-first", **config)
        )
        assert cscan.avg_seek < depth_first.avg_seek / 2
        assert cscan.avg_seek < elevator.avg_seek * 3
