"""Property-based tests for templates: clone, annotations, recursion."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicates import always_true
from repro.core.template import Template, TemplateNode


@st.composite
def random_trees(draw):
    """Build a random template tree, returning (root, node_count)."""
    counter = [0]

    def build(depth):
        label = f"node{counter[0]}"
        counter[0] += 1
        node = TemplateNode(
            label,
            shared=draw(st.booleans()),
            predicate=always_true() if draw(st.booleans()) else None,
        )
        if depth < 3:
            n_children = draw(st.integers(0, 3))
            slots = draw(
                st.lists(
                    st.integers(0, 7),
                    min_size=n_children,
                    max_size=n_children,
                    unique=True,
                )
            )
            for slot in slots:
                node.attach(slot, build(depth + 1))
        return node

    root = build(0)
    return root, counter[0]


@settings(max_examples=50, deadline=None)
@given(random_trees())
def test_finalize_counts_every_node(tree):
    root, expected_nodes = tree
    template = Template(root).finalize()
    assert template.node_count == expected_nodes
    assert len(template.nodes()) == expected_nodes
    # Subtree counts are consistent: root's equals the total.
    assert template.root.subtree_nodes == expected_nodes
    # Predicate count equals nodes carrying one.
    assert template.predicate_count == sum(
        1 for n in template.nodes() if n.predicate is not None
    )


@settings(max_examples=50, deadline=None)
@given(random_trees())
def test_clone_is_deep_and_equal(tree):
    root, _count = tree
    template = Template(root).finalize()
    copy = template.clone()
    originals = template.nodes()
    copies = copy.nodes()
    assert len(originals) == len(copies)
    for original, cloned in zip(originals, copies):
        assert cloned is not original
        assert cloned.label == original.label
        assert cloned.shared == original.shared
        assert cloned.predicate is original.predicate
        assert cloned.child_slots() == original.child_slots()
        assert cloned.subtree_nodes == original.subtree_nodes
    # Mutating the clone does not touch the original.
    copies[0].predicate = always_true()
    copy.reannotate()
    assert template.predicate_count == sum(
        1 for n in template.nodes() if n.predicate is not None
    )


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 6), st.integers(0, 3))
def test_linear_recursion_node_count(depth, extra_children):
    """A self-recursive chain of depth d unrolls to d+1 nodes, each
    carrying its non-recursive children."""
    node = TemplateNode("n")
    for slot in range(extra_children):
        node.child(slot + 2, f"leaf{slot}")
    node.recurse(0, "n", max_depth=depth)
    template = Template(node).finalize()
    assert template.node_count == (depth + 1) * (1 + extra_children)
    expected_depth = depth + (1 if extra_children else 0)
    assert template.max_depth == expected_depth
