"""Tests for the sliding-window bookkeeping."""

import pytest

from repro.core.window import ComplexObjectState, Window
from repro.errors import WindowError
from repro.storage.oid import Oid


class TestWindow:
    def test_admit_until_full(self):
        window = Window(2)
        window.admit(Oid(1, 1), total_nodes=7, total_predicates=0)
        window.admit(Oid(1, 2), total_nodes=7, total_predicates=0)
        assert window.is_full
        with pytest.raises(WindowError):
            window.admit(Oid(1, 3), total_nodes=7, total_predicates=0)

    def test_serials_are_unique_and_increasing(self):
        window = Window(3)
        serials = [
            window.admit(Oid(1, s), 1, 0).serial for s in range(1, 4)
        ]
        assert serials == [0, 1, 2]

    def test_retire_frees_capacity(self):
        window = Window(1)
        state = window.admit(Oid(1, 1), 1, 0)
        window.retire(state.serial)
        assert window.is_empty
        window.admit(Oid(1, 2), 1, 0)

    def test_retire_unknown(self):
        with pytest.raises(WindowError):
            Window(1).retire(42)

    def test_get_unknown(self):
        with pytest.raises(WindowError):
            Window(1).get(0)

    def test_peak_occupancy(self):
        window = Window(3)
        a = window.admit(Oid(1, 1), 1, 0)
        b = window.admit(Oid(1, 2), 1, 0)
        window.retire(a.serial)
        window.admit(Oid(1, 3), 1, 0)
        assert window.peak_occupancy == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(WindowError):
            Window(0)

    def test_contains_and_states(self):
        window = Window(2)
        state = window.admit(Oid(1, 1), 1, 0)
        assert state.serial in window
        assert window.states() == [state]


class TestComplexObjectState:
    def test_completion_requires_root_and_zero_outstanding(self):
        state = ComplexObjectState(serial=0, root_oid=Oid(1, 1), outstanding_nodes=1)
        assert not state.is_complete()
        state.outstanding_nodes = 0
        assert not state.is_complete()  # still no root
        state.root = object()
        assert state.is_complete()

    def test_aborted_never_complete(self):
        state = ComplexObjectState(serial=0, root_oid=Oid(1, 1))
        state.root = object()
        state.aborted = True
        assert not state.is_complete()

    def test_gating(self):
        state = ComplexObjectState(
            serial=0, root_oid=Oid(1, 1), pending_predicates=2
        )
        assert state.gate_references()
        state.pending_predicates = 0
        assert not state.gate_references()
