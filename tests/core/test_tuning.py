"""Tests for window/buffer tuning."""

import pytest

from repro.core.template import Template, TemplateNode, binary_tree_template
from repro.core.tuning import (
    max_window_for_buffer,
    pin_bound,
    tune_window,
)
from repro.errors import AssemblyError


class TestPinBound:
    def test_paper_arithmetic(self):
        """Section 6.3.3: 6*(50-1) + 7 = 301 pages at window 50."""
        assert pin_bound(50) == 301
        assert pin_bound(1) == 7

    def test_custom_template(self):
        two_level = binary_tree_template(2)  # 3 nodes
        assert pin_bound(10, two_level) == 2 * 9 + 3

    def test_single_node_template(self):
        solo = Template(TemplateNode("only")).finalize()
        assert pin_bound(5, solo) == 1

    def test_bad_window(self):
        with pytest.raises(AssemblyError):
            pin_bound(0)

    def test_bound_matches_measurement(self):
        """The analytic bound is what assembly actually pins."""
        from repro.bench.harness import ExperimentConfig, run_experiment

        result = run_experiment(
            ExperimentConfig(
                n_complex_objects=150,
                clustering="inter-object",
                scheduler="elevator",
                window_size=10,
                cluster_pages=64,
            )
        )
        assert result.peak_pinned_pages <= pin_bound(10)


class TestMaxWindow:
    def test_inverts_bound(self):
        for capacity in (64, 128, 512, 2048):
            window = max_window_for_buffer(capacity, headroom=8)
            assert pin_bound(window) <= capacity - 8
            assert pin_bound(window + 1) > capacity - 8

    def test_tiny_buffer_rejected(self):
        with pytest.raises(AssemblyError):
            max_window_for_buffer(10)

    def test_at_least_one(self):
        assert max_window_for_buffer(16, headroom=0) >= 1

    def test_bad_capacity(self):
        with pytest.raises(AssemblyError):
            max_window_for_buffer(0)


class TestTuneWindow:
    def test_picks_measured_best(self):
        costs = {1: 100.0, 10: 40.0, 25: 25.0, 50: 30.0}
        result = tune_window(
            run=lambda w: costs[w], candidates=(1, 10, 25, 50)
        )
        assert result.best_window == 25
        assert result.best_avg_seek == 25.0
        assert len(result.probes) == 4

    def test_skips_windows_beyond_buffer(self):
        calls = []
        result = tune_window(
            run=lambda w: calls.append(w) or float(w),
            buffer_capacity=128,  # max window ~20
            candidates=(1, 10, 50, 200),
        )
        assert calls == [1, 10]
        assert result.best_window == 1

    def test_no_feasible_candidate(self):
        with pytest.raises(AssemblyError):
            tune_window(
                run=lambda w: 1.0,
                buffer_capacity=64,
                candidates=(200,),
            )

    def test_bad_candidate(self):
        with pytest.raises(AssemblyError):
            tune_window(run=lambda w: 1.0, candidates=(0,))

    def test_end_to_end_tuning(self):
        """Tuning against the real harness finds a sane window."""
        from repro.bench.harness import ExperimentConfig, run_experiment

        def run(window):
            return run_experiment(
                ExperimentConfig(
                    n_complex_objects=200,
                    clustering="inter-object",
                    scheduler="elevator",
                    window_size=window,
                    cluster_pages=64,
                )
            ).avg_seek

        result = tune_window(run, candidates=(1, 10, 30))
        assert result.best_window == 30  # bigger window, fewer seeks
