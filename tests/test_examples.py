"""Smoke tests: every example script runs to completion.

Examples are executed in-process (``runpy``) with their ``main()``
reduced-size where needed, so the suite stays fast while guaranteeing
the documented entry points never rot.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        return runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "lives_close_to_father.py",
        "selective_assembly.py",
        "stacked_assembly.py",
        "hypermodel_documents.py",
        "query_api.py",
        "bill_of_materials.py",
        "assembly_service.py",
    ],
)
def test_example_runs(script, capsys):
    run_example(script)
    out = capsys.readouterr().out
    assert out.strip()  # every example reports something


def test_scheduling_playground_with_size_argument(capsys):
    run_example("scheduling_playground.py", argv=["60"])
    out = capsys.readouterr().out
    assert "average seek distance" in out
    assert "elevator" in out


def test_examples_directory_complete():
    """The README's example table matches the directory contents."""
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == {
        "quickstart.py",
        "lives_close_to_father.py",
        "selective_assembly.py",
        "stacked_assembly.py",
        "scheduling_playground.py",
        "hypermodel_documents.py",
        "query_api.py",
        "bill_of_materials.py",
        "assembly_service.py",
    }
