"""Tests for the application-level object model."""

import pytest

from repro.objects.model import (
    ComplexObjectDef,
    ModelError,
    ObjectDef,
    TypeRegistry,
    validate_database,
)
from repro.storage.oid import NULL_OID, Oid


@pytest.fixture
def registry():
    reg = TypeRegistry()
    reg.define("Person", int_fields=("age",), ref_fields=("father", "home"))
    reg.define("Residence", int_fields=("city",))
    return reg


class TestObjectType:
    def test_slots_by_name(self, registry):
        person = registry.by_name("Person")
        assert person.int_slot("age") == 0
        assert person.ref_slot("father") == 0
        assert person.ref_slot("home") == 1

    def test_unknown_field(self, registry):
        with pytest.raises(ModelError):
            registry.by_name("Person").int_slot("height")

    def test_too_many_fields(self):
        reg = TypeRegistry()
        with pytest.raises(ModelError):
            reg.define("Wide", int_fields=tuple(f"i{i}" for i in range(5)))
        with pytest.raises(ModelError):
            reg.define("Wide2", ref_fields=tuple(f"r{i}" for i in range(9)))

    def test_duplicate_field_names(self):
        reg = TypeRegistry()
        with pytest.raises(ModelError):
            reg.define("Bad", int_fields=("x",), ref_fields=("x",))


class TestTypeRegistry:
    def test_dense_type_ids(self, registry):
        assert registry.by_name("Person").type_id == 1
        assert registry.by_name("Residence").type_id == 2
        assert len(registry) == 2

    def test_duplicate_type_name(self, registry):
        with pytest.raises(ModelError):
            registry.define("Person")

    def test_unknown_lookups(self, registry):
        with pytest.raises(ModelError):
            registry.by_name("Ghost")
        with pytest.raises(ModelError):
            registry.by_id(99)

    def test_new_oid_sequences_per_type(self, registry):
        first = registry.new_oid("Person")
        second = registry.new_oid("Person")
        other = registry.new_oid("Residence")
        assert first == Oid(1, 1)
        assert second == Oid(1, 2)
        assert other == Oid(2, 1)

    def test_type_of(self, registry):
        oid = registry.new_oid("Residence")
        assert registry.type_of(oid).name == "Residence"

    def test_types_in_definition_order(self, registry):
        assert [t.name for t in registry.types()] == ["Person", "Residence"]


class TestObjectDef:
    def test_to_record_pads_slots(self, registry):
        person = registry.by_name("Person")
        oid = registry.new_oid("Person")
        target = Oid(2, 1)
        obj = ObjectDef(oid=oid, otype=person, ints={"age": 30}, refs={"home": target})
        record = obj.to_record()
        assert record.ints == [30, 0, 0, 0]
        assert record.refs[1] == target
        assert record.refs[0] == NULL_OID

    def test_oid_type_mismatch(self, registry):
        person = registry.by_name("Person")
        with pytest.raises(ModelError):
            ObjectDef(oid=Oid(2, 1), otype=person)

    def test_unknown_fields_rejected(self, registry):
        person = registry.by_name("Person")
        oid = registry.new_oid("Person")
        with pytest.raises(ModelError):
            ObjectDef(oid=oid, otype=person, ints={"height": 1})

    def test_referenced_oids_in_field_order(self, registry):
        person = registry.by_name("Person")
        oid = registry.new_oid("Person")
        obj = ObjectDef(
            oid=oid,
            otype=person,
            refs={"home": Oid(2, 2), "father": Oid(1, 9)},
        )
        assert obj.referenced_oids() == [Oid(1, 9), Oid(2, 2)]


def build_person_complex(registry, with_father=True):
    person_t = registry.by_name("Person")
    res_t = registry.by_name("Residence")
    home = ObjectDef(oid=registry.new_oid("Residence"), otype=res_t, ints={"city": 1})
    refs = {"home": home.oid}
    objects = {home.oid: home}
    if with_father:
        father = ObjectDef(oid=registry.new_oid("Person"), otype=person_t)
        refs["father"] = father.oid
        objects[father.oid] = father
    root = ObjectDef(oid=registry.new_oid("Person"), otype=person_t, refs=refs)
    objects[root.oid] = root
    return ComplexObjectDef(root=root.oid, objects=objects)


class TestComplexObjectDef:
    def test_root_must_be_member(self, registry):
        with pytest.raises(ModelError):
            ComplexObjectDef(root=Oid(1, 99), objects={})

    def test_add_duplicate(self, registry):
        cobj = build_person_complex(registry)
        with pytest.raises(ModelError):
            cobj.add(cobj.objects[cobj.root])

    def test_traverse_depth_first_order(self, registry):
        cobj = build_person_complex(registry)
        order = cobj.traverse_depth_first()
        assert order[0].oid == cobj.root
        # father (slot 0) before home (slot 1)
        assert order[1].otype.name == "Person"
        assert order[2].otype.name == "Residence"

    def test_external_refs(self, registry):
        cobj = build_person_complex(registry)
        shared = Oid(2, 77)
        cobj.objects[cobj.root].refs["home"] = shared
        del cobj.objects[[o for o in cobj.objects if o.type_id == 2][0]]
        assert shared in cobj.external_refs()


class TestValidateDatabase:
    def test_valid_database_passes(self, registry):
        database = [build_person_complex(registry) for _ in range(3)]
        validate_database(database)

    def test_dangling_reference(self, registry):
        cobj = build_person_complex(registry)
        cobj.objects[cobj.root].refs["father"] = Oid(1, 999)
        with pytest.raises(ModelError):
            validate_database([cobj])

    def test_shared_pool_satisfies_reference(self, registry):
        cobj = build_person_complex(registry, with_father=False)
        shared_oid = registry.new_oid("Residence")
        shared = ObjectDef(
            oid=shared_oid, otype=registry.by_name("Residence")
        )
        cobj.objects[cobj.root].refs["home"] = shared_oid
        validate_database([cobj], {shared_oid: shared})

    def test_object_in_two_complexes(self, registry):
        one = build_person_complex(registry)
        two = build_person_complex(registry)
        stolen = one.objects[one.root]
        two.objects[stolen.oid] = stolen
        with pytest.raises(ModelError):
            validate_database([one, two])
