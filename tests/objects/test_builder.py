"""Tests for the graph builder."""

import pytest

from repro.objects.builder import GraphBuilder
from repro.objects.model import ModelError


@pytest.fixture
def builder():
    b = GraphBuilder()
    b.define_type("Node", int_fields=("value",), ref_fields=("next", "other"))
    return b


class TestBuilding:
    def test_new_object_gets_fresh_oid(self, builder):
        first = builder.new_object("Node")
        second = builder.new_object("Node")
        assert first.oid != second.oid

    def test_set_ref(self, builder):
        a = builder.new_object("Node")
        b = builder.new_object("Node")
        builder.set_ref(a, "next", b.oid)
        assert a.refs["next"] == b.oid

    def test_set_ref_unknown_field(self, builder):
        a = builder.new_object("Node")
        with pytest.raises(ModelError):
            builder.set_ref(a, "bogus", a.oid)

    def test_get(self, builder):
        obj = builder.new_object("Node")
        assert builder.get(obj.oid) is obj

    def test_get_unknown(self, builder):
        from repro.storage.oid import Oid

        with pytest.raises(ModelError):
            builder.get(Oid(1, 42))


class TestGrouping:
    def test_complex_object_claims_components(self, builder):
        child = builder.new_object("Node")
        root = builder.new_object("Node", refs={"next": child.oid})
        cobj = builder.complex_object(root, [child])
        assert cobj.root == root.oid
        assert len(cobj) == 2
        assert builder.ungrouped() == []

    def test_component_cannot_join_twice(self, builder):
        child = builder.new_object("Node")
        root1 = builder.new_object("Node", refs={"next": child.oid})
        builder.complex_object(root1, [child])
        root2 = builder.new_object("Node", refs={"next": child.oid})
        with pytest.raises(ModelError):
            builder.complex_object(root2, [child])

    def test_shared_objects(self, builder):
        shared = builder.new_object("Node")
        builder.mark_shared(shared)
        root = builder.new_object("Node", refs={"other": shared.oid})
        builder.complex_object(root)
        builder.validate()
        assert shared.oid in builder.shared_objects

    def test_shared_cannot_be_private(self, builder):
        shared = builder.new_object("Node")
        builder.mark_shared(shared)
        root = builder.new_object("Node")
        with pytest.raises(ModelError):
            builder.complex_object(root, [shared])

    def test_grouped_cannot_become_shared(self, builder):
        root = builder.new_object("Node")
        builder.complex_object(root)
        with pytest.raises(ModelError):
            builder.mark_shared(root)


class TestValidate:
    def test_ungrouped_object_fails(self, builder):
        builder.new_object("Node")
        with pytest.raises(ModelError):
            builder.validate()

    def test_dangling_reference_fails(self, builder):
        from repro.storage.oid import Oid

        root = builder.new_object("Node", refs={"next": Oid(1, 999)})
        builder.complex_object(root)
        with pytest.raises(ModelError):
            builder.validate()

    def test_clean_build_validates(self, builder):
        leaf = builder.new_object("Node", ints={"value": 2})
        root = builder.new_object("Node", ints={"value": 1}, refs={"next": leaf.oid})
        builder.complex_object(root, [leaf])
        builder.validate()
        assert len(builder.complex_objects) == 1
