"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.cluster.layout import LayoutResult, layout_database
from repro.cluster.policies import InterObjectClustering
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.workloads.acob import ACOBDatabase, generate_acob

# Hypothesis profiles: "ci" pins the search (derandomized, no deadline)
# so the gate never flakes on shared runners; "dev" keeps the random
# exploration for local runs.  Select with HYPOTHESIS_PROFILE=ci.
settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def disk() -> SimulatedDisk:
    """A fresh unbounded simulated disk."""
    return SimulatedDisk()


@pytest.fixture
def store(disk: SimulatedDisk) -> ObjectStore:
    """An object store with an unbounded buffer over ``disk``."""
    return ObjectStore(disk, BufferManager(disk))


@pytest.fixture
def small_acob() -> ACOBDatabase:
    """A 30-complex-object benchmark database (deterministic)."""
    return generate_acob(30, seed=3)


@pytest.fixture
def small_layout(small_acob: ACOBDatabase, store: ObjectStore) -> LayoutResult:
    """The small database laid out inter-object on the store."""
    policy = InterObjectClustering(
        cluster_pages=8, disk_order=small_acob.type_ids_depth_first()
    )
    return layout_database(
        small_acob.complex_objects,
        store,
        policy,
        shared=small_acob.shared_pool,
        seed=1,
    )
