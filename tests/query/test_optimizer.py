"""Tests for the rule-based optimizer."""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import Unclustered
from repro.errors import PlanError
from repro.query.logical import retrieve
from repro.query.optimizer import Optimizer
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template, payload_predicate


@pytest.fixture
def loaded():
    db = generate_acob(40, seed=8)
    store = ObjectStore(SimulatedDisk())
    layout = layout_database(db.complex_objects, store, Unclustered())
    return db, store, layout


class TestRules:
    def test_pushdown_into_template_clone(self, loaded):
        db, store, layout = loaded
        template = make_template(db)
        query = retrieve(template).where_component("n1", payload_predicate(0.5))
        plan = Optimizer().optimize(query, store, layout.root_order)
        assert plan.choice.pushed_predicates == 1
        # The catalog template is untouched.
        assert template.predicate_count == 0

    def test_scheduler_rule(self, loaded):
        db, store, layout = loaded
        plain = Optimizer().optimize(
            retrieve(make_template(db)), store, layout.root_order
        )
        assert plain.choice.scheduler == "elevator"
        selective = Optimizer().optimize(
            retrieve(make_template(db)).where_component(
                "n1", payload_predicate(0.5)
            ),
            store,
            layout.root_order,
        )
        assert selective.choice.scheduler == "adaptive"

    def test_window_rule_unbounded_buffer(self, loaded):
        db, store, layout = loaded
        plan = Optimizer(buffer_capacity=None).optimize(
            retrieve(make_template(db)), store, layout.root_order
        )
        assert plan.choice.window_size == 50  # the paper's knee

    def test_window_rule_restricted_buffer(self, loaded):
        db, store, layout = loaded
        plan = Optimizer(buffer_capacity=128).optimize(
            retrieve(make_template(db)), store, layout.root_order
        )
        # 6*(W-1)+7 <= 128-8 => W <= 19
        assert plan.choice.window_size == 19

    def test_conjunction_on_one_component(self, loaded):
        """Two predicates on the same component AND together."""
        db, store, layout = loaded
        query = (
            retrieve(make_template(db))
            .where_component("n1", payload_predicate(0.5))
            .where_component("n1", payload_predicate(0.9))
        )
        plan = Optimizer().optimize(query, store, layout.root_order)
        results = plan.execute()
        # payload < 0.5*R AND payload < 0.9*R == payload < 0.5*R.
        from repro.workloads.acob import PAYLOAD_RANGE

        expected = sum(
            1 for payloads in db.payloads
            if payloads[1] < 0.5 * PAYLOAD_RANGE
        )
        assert len(results) == expected
        assert plan.choice.pushed_predicates == 2

    def test_query_predicate_stacks_on_catalog_predicate(self, loaded):
        """A catalog-level predicate conjoins with the query's."""
        db, store, layout = loaded
        catalog = make_template(
            db, predicate_position=1, predicate=payload_predicate(0.8)
        )
        query = retrieve(catalog).where_component(
            "n1", payload_predicate(0.3)
        )
        plan = Optimizer().optimize(query, store, layout.root_order)
        results = plan.execute()
        from repro.workloads.acob import PAYLOAD_RANGE

        expected = sum(
            1 for payloads in db.payloads
            if payloads[1] < 0.3 * PAYLOAD_RANGE
        )
        assert len(results) == expected
        # The catalog template itself is untouched.
        assert catalog.node("n1").predicate.name.count("AND") == 0

    def test_roots_required(self, loaded):
        db, store, _layout = loaded
        with pytest.raises(PlanError):
            Optimizer().optimize(retrieve(make_template(db)), store)


class TestExecution:
    def test_end_to_end_matches_manual_assembly(self, loaded):
        db, store, layout = loaded
        query = retrieve(make_template(db)).where_component(
            "n1", payload_predicate(0.5)
        )
        plan = Optimizer().optimize(query, store, layout.root_order)
        results = plan.execute()
        assert plan.assembly.stats.emitted == len(results)
        assert plan.assembly.stats.aborted == 40 - len(results)
        # Oracle from the generator's recorded payloads.
        from repro.workloads.acob import PAYLOAD_RANGE

        expected = sum(
            1 for payloads in db.payloads
            if payloads[1] < 0.5 * PAYLOAD_RANGE
        )
        assert len(results) == expected

    def test_residual_and_projection(self, loaded):
        db, store, layout = loaded
        query = (
            retrieve(make_template(db))
            .where(lambda c: c.root.ints[0] % 2 == 0)
            .select(lambda c: c.root.ints[0])
        )
        plan = Optimizer().optimize(query, store, layout.root_order)
        results = plan.execute()
        assert results
        assert all(isinstance(v, int) and v % 2 == 0 for v in results)

    def test_explain_contains_choices(self, loaded):
        db, store, layout = loaded
        plan = Optimizer().optimize(
            retrieve(make_template(db)), store, layout.root_order
        )
        text = plan.explain()
        assert "Assembly" in text
        assert "scheduler=elevator" in text
        assert "window=50" in text
