"""Tests for the logical query representation."""

import pytest

from repro.core.predicates import always_true, int_less_than
from repro.core.template import binary_tree_template
from repro.errors import PlanError, TemplateError
from repro.query.logical import ComplexObjectQuery, retrieve
from repro.storage.oid import Oid


@pytest.fixture
def query():
    return retrieve(binary_tree_template(3))


class TestConstruction:
    def test_retrieve_defaults(self, query):
        assert query.roots is None
        assert query.component_predicates == ()
        assert query.residual_predicates == ()
        assert query.projection is None

    def test_immutable_refinement(self, query):
        refined = query.where_component("n1", always_true(0.5))
        assert query.component_predicates == ()
        assert len(refined.component_predicates) == 1

    def test_over_roots(self, query):
        refined = query.over([Oid(1, 1), Oid(1, 2)])
        assert refined.roots == (Oid(1, 1), Oid(1, 2))

    def test_unknown_component_label_rejected_eagerly(self, query):
        with pytest.raises(TemplateError):
            query.where_component("nope", always_true())

    def test_residual_predicates_accumulate(self, query):
        refined = query.where(lambda c: True).where(lambda c: False)
        assert len(refined.residual_predicates) == 2

    def test_single_projection(self, query):
        refined = query.select(lambda c: c.root_oid)
        with pytest.raises(PlanError):
            refined.select(lambda c: c)


class TestEstimation:
    def test_selectivity_product(self, query):
        refined = (
            query
            .where_component("n1", int_less_than(3, 10, 0.5))
            .where_component("n2", int_less_than(3, 10, 0.4))
        )
        assert refined.estimated_selectivity() == pytest.approx(0.2)

    def test_no_predicates_is_one(self, query):
        assert query.estimated_selectivity() == 1.0


class TestDescribe:
    def test_mentions_everything(self, query):
        text = (
            query
            .over([Oid(1, 1)])
            .where_component("n1", int_less_than(3, 10, 0.5))
            .where(lambda c: True)
            .select(lambda c: c.root_oid)
            .describe()
        )
        assert "7 components" in text
        assert "1 explicit roots" in text
        assert "component n1" in text
        assert "residual" in text
        assert "project" in text
