"""Tests for sampling-based statistics collection."""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import Unclustered
from repro.errors import PlanError
from repro.query.optimizer import Optimizer
from repro.query.logical import retrieve
from repro.query.statistics import (
    annotate_from_sample,
    collect_statistics,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.workloads.acob import (
    PAYLOAD_RANGE,
    generate_acob,
    make_template,
)


@pytest.fixture
def loaded():
    db = generate_acob(200, sharing=0.25, seed=21)
    store = ObjectStore(SimulatedDisk())
    layout = layout_database(
        db.complex_objects, store, Unclustered(), shared=db.shared_pool
    )
    return db, store, layout


class TestCollect:
    def test_occurrences_cover_template(self, loaded):
        db, store, layout = loaded
        stats = collect_statistics(
            store, make_template(db), layout.roots, sample_size=50
        )
        assert stats.sample_size == 50
        for label in ("n0", "n1", "n6"):
            assert stats.for_label(label).occurrences == 50

    def test_sharing_degree_detected_at_shared_leaf(self, loaded):
        db, store, layout = loaded
        stats = collect_statistics(
            store, make_template(db), layout.roots, sample_size=150
        )
        shared_leaf = stats.for_label("n6")
        private_leaf = stats.for_label("n5")
        # ~50 pool objects serve 150 references.
        assert shared_leaf.sharing_degree < 0.5
        assert private_leaf.sharing_degree == 1.0

    def test_predicate_pass_rate_measured(self, loaded):
        db, store, layout = loaded
        bound = int(0.3 * PAYLOAD_RANGE)
        stats = collect_statistics(
            store,
            make_template(db),
            layout.roots,
            candidates={"n1": lambda r: r.ints[3] < bound},
            sample_size=200,
        )
        measured = stats.for_label("n1").selectivity("sampled@n1")
        assert measured == pytest.approx(0.3, abs=0.08)

    def test_small_root_set_uses_everything(self, loaded):
        db, store, layout = loaded
        stats = collect_statistics(
            store, make_template(db), layout.roots[:10], sample_size=100
        )
        assert stats.sample_size == 10

    def test_bad_parameters(self, loaded):
        db, store, layout = loaded
        with pytest.raises(PlanError):
            collect_statistics(store, make_template(db), [], sample_size=10)
        with pytest.raises(PlanError):
            collect_statistics(
                store, make_template(db), layout.roots, sample_size=0
            )

    def test_deterministic_under_seed(self, loaded):
        db, store, layout = loaded
        first = collect_statistics(
            store, make_template(db), layout.roots, sample_size=40, seed=5
        )
        second = collect_statistics(
            store, make_template(db), layout.roots, sample_size=40, seed=5
        )
        assert (
            first.for_label("n6").distinct_objects
            == second.for_label("n6").distinct_objects
        )


class TestAnnotate:
    def test_shared_border_discovered(self, loaded):
        db, store, layout = loaded
        plain = make_template(db)  # deliberately without sharing info
        annotated = annotate_from_sample(
            plain, store, layout.roots, sample_size=150
        )
        node = annotated.node("n6")
        assert node.shared
        assert 0.0 < node.sharing_degree < 0.5
        assert not annotated.node("n5").shared
        # The input template is untouched.
        assert not plain.node("n6").shared

    def test_measured_predicate_attached(self, loaded):
        db, store, layout = loaded
        bound = int(0.4 * PAYLOAD_RANGE)
        annotated = annotate_from_sample(
            make_template(db),
            store,
            layout.roots,
            predicates={"n1": lambda r: r.ints[3] < bound},
            sample_size=200,
        )
        predicate = annotated.node("n1").predicate
        assert predicate is not None
        assert predicate.selectivity == pytest.approx(0.4, abs=0.1)
        assert annotated.predicate_count == 1

    def test_data_driven_pipeline_end_to_end(self, loaded):
        """Sample -> annotate -> optimize -> execute, no hand numbers."""
        db, store, layout = loaded
        bound = int(0.3 * PAYLOAD_RANGE)
        annotated = annotate_from_sample(
            make_template(db),
            store,
            layout.roots,
            predicates={"n1": lambda r: r.ints[3] < bound},
            sample_size=100,
        )
        store.disk.reset_stats()
        plan = Optimizer().optimize(
            retrieve(annotated), store, list(layout.roots)
        )
        assert plan.choice.scheduler == "adaptive"
        results = plan.execute()
        expected = sum(
            1 for payloads in db.payloads if payloads[1] < bound
        )
        assert len(results) == expected
