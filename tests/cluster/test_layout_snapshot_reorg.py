"""Snapshot/restore must round-trip *reorganized* layouts.

:func:`repro.cluster.layout.snapshot_layout` predates online
reorganization and used to dump raw disk pages while migrations were
still sitting dirty in the buffer — the directory pointed at the new
addresses, the page images held the old bytes.  The flush-first fix is
pinned here: a layout snapshotted *after* migration rounds restores
onto a fresh store bit-identically — disk image, directory, the
``reorg-N`` extents, and the behaviour of an assembly (with a bounded
buffer, so the sweep pool's residency tracking is exercised) running
on top.  Ground truth throughout is the naive reference — the
generator's own object definitions — so corruption cannot hide behind
a symmetric bug.
"""

from repro.cluster.layout import (
    layout_database,
    restore_layout,
    snapshot_layout,
)
from repro.cluster.policies import Unclustered
from repro.cluster.reorg import Reorganizer, ReorgPolicy
from repro.core.assembly import Assembly
from repro.core.schedulers import make_scheduler
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template
from tests.faults.test_chaos_property import fingerprint

DB_SIZE = 24
EAGER = ReorgPolicy(min_weight=1.0, min_observations=1)


def reorganized_layout():
    """A laid-out database after two migration rounds.

    Round one packs the first six roots onto one fresh extent, round
    two the next six — two ``reorg-N`` extents, a dozen tombstoned
    source slots, and dirty buffer frames at snapshot time: exactly
    the state the pre-fix snapshot got wrong.
    """
    db = generate_acob(DB_SIZE, seed=5)
    disk = SimulatedDisk()
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects, store, Unclustered(), shared=db.shared_pool
    )
    reorg = Reorganizer(store, EAGER).bind_layout(layout)
    for round_start in (0, 6):
        hot = layout.roots[round_start : round_start + 6]
        for context in range(3):
            for root in hot:
                reorg.observe(("q", context, round_start), root)
        report = reorg.run_round()
        assert report.migrations > 0
    assert "reorg-1" in layout.extents and "reorg-2" in layout.extents
    return db, store, layout


def fresh_store():
    disk = SimulatedDisk()
    return ObjectStore(disk, BufferManager(disk))


class TestReorganizedRoundTrip:
    def test_disk_image_round_trips_including_dirty_frames(self):
        _db, store, layout = reorganized_layout()
        snapshot = snapshot_layout(layout)

        restored_store = fresh_store()
        restore_layout(snapshot, restored_store)

        built_pages, built_free = store.disk.dump_state()
        restored_pages, restored_free = restored_store.disk.dump_state()
        assert restored_pages == built_pages
        assert restored_free == built_free

    def test_directory_and_reorg_extents_round_trip(self):
        _db, store, layout = reorganized_layout()
        snapshot = snapshot_layout(layout)

        restored_store = fresh_store()
        restored = restore_layout(snapshot, restored_store)

        assert restored.extents == layout.extents
        assert restored_store.directory.dump() == store.directory.dump()
        for root in layout.roots[:12]:
            assert (
                restored_store.page_of(root)
                in range(
                    layout.extents["reorg-1"].start,
                    layout.extents["reorg-2"].end,
                )
            )

    def test_restored_records_match_the_naive_reference(self):
        """Every object on the restored clone is byte-equal to the
        generator's definition — migrations and the snapshot round-trip
        moved bytes, never changed them."""
        db, _store, layout = reorganized_layout()
        snapshot = snapshot_layout(layout)

        restored_store = fresh_store()
        restore_layout(snapshot, restored_store)

        definitions = dict(db.shared_pool)
        for cobj in db.complex_objects:
            definitions.update(cobj.objects)
        for oid, definition in definitions.items():
            assert (
                restored_store.fetch(oid).encode()
                == definition.to_record().encode()
            )

    def test_assembly_on_restored_layout_is_bit_identical(self):
        """An elevator-scheduled run with a bounded buffer — residency
        probing and all — sees no difference between the reorganized
        store and its restored clone."""
        db, store, layout = reorganized_layout()
        snapshot = snapshot_layout(layout)

        def run(target_store):
            operator = Assembly(
                ListSource(layout.root_order),
                target_store,
                make_template(db),
                window_size=2,
                scheduler=make_scheduler(
                    "elevator",
                    head_fn=lambda: target_store.disk.head_position,
                    resident_fn=target_store.buffer.is_resident,
                ),
            )
            return fingerprint(operator.execute())

        disk = SimulatedDisk()
        restored_store = ObjectStore(
            disk, BufferManager(disk, capacity=16)
        )
        restore_layout(snapshot, restored_store)

        # Fresh clone for the baseline too (same buffer geometry; the
        # original store has warm frames from the migration rounds).
        baseline_disk = SimulatedDisk()
        baseline_store = ObjectStore(
            baseline_disk, BufferManager(baseline_disk, capacity=16)
        )
        restore_layout(snapshot_layout(layout), baseline_store)

        assert run(restored_store) == run(baseline_store)
        assert restored_store.buffer.pinned_pages == 0
