"""Safety properties of online reorganization, pinned by hypothesis.

Three contracts from :mod:`repro.cluster.reorg`, tested across service
configurations (clustering × window × device-server batching × fault
rate) the way the chaos suite pins the fault machinery:

* **Reorg off is bit-identical** — a service built with
  ``reorg_policy=None`` produces the same results, the same
  :class:`DiskStats` and the same ``ServiceMetrics.snapshot()`` as a
  service built without the kwarg at all.  The feature leaves zero
  footprint when disabled.
* **Reorg on is content-equal** — with an aggressive policy migrating
  eagerly, every assembled object is byte-equal to the unreorganized
  run's.  Migrations move bytes, never change them — even while
  transient read faults are being retried underneath.
* **Migration I/O stays inside idle windows** — the idle tracker's
  busy/migration interval ledgers never overlap, and the check is
  non-vacuous whenever objects actually moved.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import ExperimentConfig, build_layout
from repro.cluster.reorg import ReorgPolicy
from repro.service.server import AssemblyService
from repro.storage.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.workloads.acob import make_template
from tests.faults.test_chaos_property import CLUSTERINGS

DB_SIZE = 24
BATCH = 4
ROUNDS = 2

#: Eager enough to migrate at toy scale within two schedule rounds.
AGGRESSIVE = ReorgPolicy(
    decay=0.5,
    min_weight=0.5,
    min_observations=1,
    max_migrations_per_round=64,
)


def content_of(cobj):
    """Byte-level identity of one assembled object (placement-free)."""
    return tuple(
        (obj.oid, obj.ints, obj.ref_oids, tuple(sorted(obj.children)))
        for obj in cobj.root.walk()
    )


def run_service(
    clustering,
    window,
    batch_pages,
    rate,
    fault_seed,
    reorg_policy=None,
    pass_kwarg=True,
):
    """Replay the deterministic recurring-batch schedule on one service.

    Roots are chunked into fixed batches and every batch is submitted
    ``ROUNDS`` times (recurrence feeds the affinity sketch), with
    ``service.run()`` draining between submissions — the idle window
    where reorg rounds may fire.  Returns the service and a dict of
    root → assembled content.
    """
    database, layout = build_layout(
        ExperimentConfig(
            n_complex_objects=DB_SIZE,
            clustering=clustering,
            scheduler="elevator",
            window_size=window,
        )
    )
    template = make_template(database)
    store = layout.store
    kwargs = {"cache_capacity": 0, "batch_pages": batch_pages}
    if pass_kwarg:
        kwargs["reorg_policy"] = reorg_policy
    service = AssemblyService(store, **kwargs)
    retry = None
    if rate:
        FaultInjector(
            FaultConfig(
                seed=fault_seed,
                read_error_rate=rate,
                max_consecutive_failures=2,
            )
        ).attach(store.disk)
        retry = RetryPolicy(max_retries=2)
    roots = layout.root_order
    batches = [
        roots[start : start + BATCH]
        for start in range(0, len(roots), BATCH)
    ]
    content = {}
    for _round in range(ROUNDS):
        for batch in batches:
            kwargs = {"retry_policy": retry} if retry is not None else {}
            request_id = service.submit(
                list(batch), template, window_size=window, **kwargs
            )
            for cobj in service.result(request_id):
                content[cobj.root.oid] = content_of(cobj)
            service.run()
    return service, content


@settings(max_examples=10, deadline=None)
@given(
    clustering=st.sampled_from(CLUSTERINGS),
    window=st.integers(min_value=1, max_value=8),
    batch_pages=st.sampled_from((1, 4)),
    rate=st.sampled_from((0.0, 0.15)),
    fault_seed=st.integers(min_value=0, max_value=2**16),
)
def test_reorg_off_is_bit_identical_to_no_kwarg(
    clustering, window, batch_pages, rate, fault_seed
):
    off, off_content = run_service(
        clustering, window, batch_pages, rate, fault_seed,
        reorg_policy=None, pass_kwarg=True,
    )
    plain, plain_content = run_service(
        clustering, window, batch_pages, rate, fault_seed,
        pass_kwarg=False,
    )
    assert off_content == plain_content
    assert off.store.disk.stats == plain.store.disk.stats
    assert off.metrics.snapshot() == plain.metrics.snapshot()
    assert off.server.reorg is None


@settings(max_examples=10, deadline=None)
@given(
    clustering=st.sampled_from(CLUSTERINGS),
    window=st.integers(min_value=1, max_value=8),
    batch_pages=st.sampled_from((1, 4)),
    rate=st.sampled_from((0.0, 0.15)),
    fault_seed=st.integers(min_value=0, max_value=2**16),
)
def test_reorg_on_assembles_byte_equal_objects(
    clustering, window, batch_pages, rate, fault_seed
):
    plain, plain_content = run_service(
        clustering, window, batch_pages, rate, fault_seed,
        pass_kwarg=False,
    )
    reorg, reorg_content = run_service(
        clustering, window, batch_pages, rate, fault_seed,
        reorg_policy=AGGRESSIVE,
    )
    assert reorg_content == plain_content
    assert reorg.store.buffer.pinned_pages == 0
    snapshot = reorg.metrics.snapshot()
    assert snapshot["reorg_rounds"] == reorg.server.reorg.rounds
    assert (
        snapshot["reorg_migrations"]
        == reorg.server.reorg.migrations_total
    )


@settings(max_examples=10, deadline=None)
@given(
    clustering=st.sampled_from(CLUSTERINGS),
    window=st.integers(min_value=1, max_value=8),
    batch_pages=st.sampled_from((1, 4)),
    fault_seed=st.integers(min_value=0, max_value=2**16),
)
def test_migration_io_never_overlaps_serving_io(
    clustering, window, batch_pages, fault_seed
):
    service, _content = run_service(
        clustering, window, batch_pages, 0.0, fault_seed,
        reorg_policy=AGGRESSIVE,
    )
    reorg = service.server.reorg
    tracker = reorg.tracker
    assert tracker.overlaps() == []
    if reorg.migrations_total:
        # Non-vacuous: the rounds that ran really priced intervals
        # into the migration ledger, on some device's timeline.
        assert any(tracker.migration_intervals)
        assert service.metrics.reorg_io_ms > 0
