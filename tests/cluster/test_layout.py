"""Tests for the layout engine."""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering, Unclustered
from repro.objects.model import ModelError
from repro.storage.oid import Oid
from repro.workloads.acob import generate_acob


class TestLayoutDatabase:
    def test_everything_fetchable_after_layout(self, small_acob, store):
        layout = layout_database(
            small_acob.complex_objects,
            store,
            Unclustered(),
            shared=small_acob.shared_pool,
        )
        for cobj in small_acob.complex_objects:
            for oid, obj in cobj.objects.items():
                record = store.fetch(oid)
                assert record.ints[2] == obj.ints["position"]
        assert layout.object_count == small_acob.total_objects()

    def test_stats_reset_after_load(self, small_acob, store):
        layout_database(small_acob.complex_objects, store, Unclustered())
        assert store.disk.stats.reads == 0
        assert store.disk.stats.writes == 0
        assert store.buffer.stats.fixes == 0
        assert store.disk.head_position == 0

    def test_root_order_is_permutation(self, small_acob, store):
        layout = layout_database(
            small_acob.complex_objects, store, Unclustered(), seed=9
        )
        assert sorted(layout.root_order) == sorted(layout.roots)
        assert layout.root_order != layout.roots  # shuffled (seed 9)

    def test_root_order_optionally_unshuffled(self, small_acob, store):
        layout = layout_database(
            small_acob.complex_objects,
            store,
            Unclustered(),
            shuffle_roots=False,
        )
        assert layout.root_order == layout.roots

    def test_layout_deterministic_in_seed(self, small_acob):
        from repro.storage.disk import SimulatedDisk
        from repro.storage.store import ObjectStore

        def build():
            store = ObjectStore(SimulatedDisk())
            layout = layout_database(
                small_acob.complex_objects, store, Unclustered(), seed=4
            )
            return [store.page_of(r) for r in layout.root_order]

        assert build() == build()

    def test_validation_catches_dangling(self, store):
        database = generate_acob(3, seed=1)
        # Break a reference behind the generator's back.
        cobj = database.complex_objects[0]
        root = cobj.objects[cobj.root]
        root.refs["left"] = Oid(2, 9999)
        with pytest.raises(ModelError):
            layout_database(database.complex_objects, store, Unclustered())

    def test_validation_skippable(self, store):
        database = generate_acob(3, seed=1)
        layout_database(
            database.complex_objects, store, Unclustered(), validate=False
        )

    def test_pages_spanned(self, small_acob, store):
        layout = layout_database(
            small_acob.complex_objects,
            store,
            InterObjectClustering(cluster_pages=8),
        )
        assert layout.pages_spanned() == 7 * 8
