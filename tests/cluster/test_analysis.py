"""Tests for layout diagnostics — the Figure 8–12 claims, measured."""

import pytest

from repro.cluster.analysis import describe_profile, profile_layout
from repro.cluster.layout import layout_database
from repro.cluster.policies import (
    InterObjectClustering,
    IntraObjectClustering,
    Unclustered,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.workloads.acob import generate_acob


def make_profile(policy, n=30, seed=3):
    db = generate_acob(n, seed=seed)
    store = ObjectStore(SimulatedDisk())
    layout = layout_database(db.complex_objects, store, policy, seed=1)
    return profile_layout(layout, db.complex_objects), layout


class TestIntraObject:
    def test_tight_spans(self):
        profile, _layout = make_profile(IntraObjectClustering())
        # Seven objects at nine per page: span of at most one page.
        assert max(profile.spans) <= 1
        assert profile.mean_reference_distance <= 1.0

    def test_dense_fill(self):
        profile, _layout = make_profile(IntraObjectClustering())
        assert profile.overall_fill > 0.9


class TestInterObject:
    def test_sparse_clusters_figure_12(self):
        """'the cluster size is larger than any database size used'."""
        profile, _layout = make_profile(
            InterObjectClustering(cluster_pages=64)
        )
        # 30 objects per type over 64-page (576-object) clusters.
        for extent in profile.extents:
            assert extent.fill_factor < 0.10
            assert extent.stored_objects == 30

    def test_wide_reference_distances(self):
        """References cross clusters: distances dwarf intra-object's."""
        inter, _ = make_profile(InterObjectClustering(cluster_pages=64))
        intra, _ = make_profile(IntraObjectClustering())
        assert (
            inter.mean_reference_distance
            > 20 * max(intra.mean_reference_distance, 1.0)
        )

    def test_spans_cover_the_cluster_range(self):
        profile, layout = make_profile(
            InterObjectClustering(cluster_pages=64)
        )
        total_pages = layout.pages_spanned()
        assert max(profile.spans) <= total_pages
        assert profile.mean_span > 64  # crosses several clusters


class TestUnclustered:
    def test_scattered_spans(self):
        profile, layout = make_profile(Unclustered())
        # Random placement: typical span is a large fraction of the DB.
        assert profile.mean_span > layout.pages_spanned() / 4

    def test_full_fill(self):
        profile, _layout = make_profile(Unclustered())
        assert profile.overall_fill > 0.9


class TestDescribe:
    def test_report_contains_numbers(self):
        profile, _layout = make_profile(
            InterObjectClustering(cluster_pages=64)
        )
        text = describe_profile(profile)
        assert "overall fill" in text
        assert "mean complex-object span" in text
        assert "type-1" in text
