"""Snapshot/restore of laid-out databases must equal a rebuild.

The raw-speed pass lets benchmark drivers capture a finished layout
once (:func:`repro.cluster.layout.snapshot_layout`) and clone it onto
fresh disks (:func:`repro.cluster.layout.restore_layout`) instead of
re-running placement.  That is only sound if the restored state is
bit-identical to rebuilding the same parameter point — page images,
directory, bookkeeping, and the behaviour of an assembly that runs on
top.  Placement goes through ``disk.allocate``, which is geometry
dependent (the multi-device disk stripes extents round-robin), so the
equivalence is checked per disk type.
"""

import pytest

from repro.cluster.layout import (
    layout_database,
    restore_layout,
    snapshot_layout,
)
from repro.cluster.policies import InterObjectClustering, Unclustered
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import CostedDisk
from repro.storage.disk import SimulatedDisk
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.store import ObjectStore
from repro.workloads.acob import generate_acob

DB_SIZE = 24


def make_disk(kind):
    """A fresh disk of the requested geometry."""
    if kind == "multi":
        return MultiDeviceDisk(n_devices=4, pages_per_device=60)
    if kind == "costed":
        return CostedDisk()
    return SimulatedDisk()


def build_layout(kind, policy):
    """Lay out the reference database on a fresh ``kind`` disk."""
    db = generate_acob(DB_SIZE, seed=5)
    disk = make_disk(kind)
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects, store, policy, shared=db.shared_pool
    )
    return db, store, layout


@pytest.mark.parametrize("kind", ["plain", "multi", "costed"])
@pytest.mark.parametrize(
    "policy_factory",
    [Unclustered, lambda: InterObjectClustering(cluster_pages=8)],
)
class TestRestoreEqualsRebuild:
    """restore_layout() must be indistinguishable from layout_database()."""

    def test_disk_image_identical(self, kind, policy_factory):
        _, built_store, layout = build_layout(kind, policy_factory())
        snapshot = snapshot_layout(layout)

        fresh_disk = make_disk(kind)
        restored_store = ObjectStore(fresh_disk, BufferManager(fresh_disk))
        restore_layout(snapshot, restored_store)

        built_pages, built_free = built_store.disk.dump_state()
        restored_pages, restored_free = restored_store.disk.dump_state()
        assert restored_pages == built_pages
        assert restored_free == built_free

    def test_bookkeeping_identical(self, kind, policy_factory):
        _, built_store, layout = build_layout(kind, policy_factory())
        snapshot = snapshot_layout(layout)

        fresh_disk = make_disk(kind)
        restored_store = ObjectStore(fresh_disk, BufferManager(fresh_disk))
        restored = restore_layout(snapshot, restored_store)

        assert restored.roots == layout.roots
        assert restored.root_order == layout.root_order
        assert restored.extents == layout.extents
        assert restored.object_count == layout.object_count
        assert restored.policy_name == layout.policy_name
        assert (
            restored_store.directory.dump() == built_store.directory.dump()
        )

    def test_restored_store_serves_identical_records(
        self, kind, policy_factory
    ):
        db, built_store, layout = build_layout(kind, policy_factory())
        snapshot = snapshot_layout(layout)

        fresh_disk = make_disk(kind)
        restored_store = ObjectStore(fresh_disk, BufferManager(fresh_disk))
        restore_layout(snapshot, restored_store)

        for cobj in db.complex_objects:
            for oid in cobj.objects:
                assert (
                    restored_store.fetch(oid).encode()
                    == built_store.fetch(oid).encode()
                )

    def test_restored_stats_match_fresh_layout(self, kind, policy_factory):
        """Restore leaves the same reset stats layout_database does."""
        _, _, layout = build_layout(kind, policy_factory())
        snapshot = snapshot_layout(layout)

        fresh_disk = make_disk(kind)
        restored_store = ObjectStore(fresh_disk, BufferManager(fresh_disk))
        restore_layout(snapshot, restored_store)

        assert restored_store.disk.stats.reads == 0
        assert restored_store.disk.stats.writes == 0
        assert restored_store.disk.head_position == 0
        assert restored_store.buffer.stats.fixes == 0


class TestSnapshotIsolation:
    """A snapshot must not alias live state between restores."""

    def test_mutating_one_restore_leaves_others_clean(self):
        _, _, layout = build_layout(
            "plain", InterObjectClustering(cluster_pages=8)
        )
        snapshot = snapshot_layout(layout)

        disk_a = SimulatedDisk()
        store_a = ObjectStore(disk_a, BufferManager(disk_a))
        restored_a = restore_layout(snapshot, store_a)

        # Scribble over one restored clone via a legitimate overwrite.
        victim = restored_a.roots[0]
        record = store_a.fetch(victim)
        mutated = type(record)(
            [v + 1 for v in record.ints], list(record.refs)
        )
        store_a.overwrite(victim, mutated)

        disk_b = SimulatedDisk()
        store_b = ObjectStore(disk_b, BufferManager(disk_b))
        restore_layout(snapshot, store_b)
        assert store_b.fetch(victim).encode() == record.encode()

    def test_assembly_on_restored_layout_matches_rebuild(self):
        """Seek behaviour on a restored clone equals the rebuilt one."""
        from repro.bench.harness import ExperimentConfig, run_experiment
        from repro.bench.harness import clear_database_cache

        config = ExperimentConfig(
            n_complex_objects=40,
            clustering="inter-object",
            scheduler="elevator",
            window_size=8,
        )
        warm = run_experiment(config)  # populates the layout cache
        cached = run_experiment(config)  # restored from snapshot
        clear_database_cache()
        rebuilt = run_experiment(config)  # cold rebuild
        from dataclasses import asdict

        assert asdict(cached) == asdict(warm) == asdict(rebuilt)
