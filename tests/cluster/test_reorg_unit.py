"""Unit behaviour of the online reorganizer's parts.

The property suite (``test_reorg_properties``) pins the end-to-end
safety contract; these tests pin the pieces in isolation — policy
validation, the decayed affinity sketch, the greedy planner, the
idle-window tracker, and the reorganizer's conservative execution
rules (readiness, idle checks, pinned pages, layout bookkeeping).
"""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import Unclustered
from repro.cluster.reorg import (
    AffinitySketch,
    DeviceIdleTracker,
    Reorganizer,
    ReorgPlanner,
    ReorgPolicy,
)
from repro.errors import ServiceStateError
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore
from repro.workloads.acob import generate_acob


def oid(serial):
    return Oid(1, serial)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"decay": 0.0},
            {"decay": 1.5},
            {"min_weight": 0.0},
            {"max_migrations_per_round": 0},
            {"group_capacity": 0},
            {"affinity_window": 1},
        ],
    )
    def test_bad_knobs_are_rejected(self, kwargs):
        with pytest.raises(ServiceStateError):
            ReorgPolicy(**kwargs)

    def test_defaults_are_valid(self):
        policy = ReorgPolicy()
        assert policy.auto
        assert policy.min_observations > 0


class TestAffinitySketch:
    def test_same_context_references_accrue_pairwise_weight(self):
        sketch = AffinitySketch(ReorgPolicy(min_weight=1.0))
        for _repeat in range(2):
            sketch.observe(("q", _repeat), oid(1))
            sketch.observe(("q", _repeat), oid(2))
            sketch.observe(("q", _repeat), oid(3))
        edges = dict(sketch.hot_edges())
        assert edges[(oid(1), oid(2))] == 2.0
        assert edges[(oid(1), oid(3))] == 2.0
        assert edges[(oid(2), oid(3))] == 2.0

    def test_different_contexts_never_pair(self):
        sketch = AffinitySketch(ReorgPolicy(min_weight=1.0))
        sketch.observe("a", oid(1))
        sketch.observe("b", oid(2))
        assert len(sketch) == 0

    def test_repeat_within_window_is_not_a_self_pair(self):
        sketch = AffinitySketch(ReorgPolicy(min_weight=1.0))
        sketch.observe("q", oid(1))
        sketch.observe("q", oid(1))
        assert len(sketch) == 0
        assert sketch.observations == 2

    def test_affinity_window_bounds_pairing_horizon(self):
        sketch = AffinitySketch(
            ReorgPolicy(min_weight=1.0, affinity_window=2)
        )
        sketch.observe("q", oid(1))
        sketch.observe("q", oid(2))
        sketch.observe("q", oid(3))  # pairs with 1 and 2
        sketch.observe("q", oid(4))  # window is [2, 3]: no (1, 4) edge
        edges = dict(sketch.hot_edges())
        assert (oid(1), oid(4)) not in edges
        assert (oid(3), oid(4)) in edges

    def test_decay_ages_and_prunes(self):
        sketch = AffinitySketch(
            ReorgPolicy(decay=0.5, min_weight=0.1, prune_epsilon=0.3)
        )
        sketch.observe("q", oid(1))
        sketch.observe("q", oid(2))
        assert len(sketch) == 1
        sketch.decay()  # 1.0 -> 0.5, survives
        assert dict(sketch.hot_edges())[(oid(1), oid(2))] == 0.5
        sketch.decay()  # 0.5 -> 0.25 < epsilon, pruned
        assert len(sketch) == 0
        assert sketch.heat_of(oid(1)) == 0.0

    def test_group_capacity_is_an_lru(self):
        sketch = AffinitySketch(
            ReorgPolicy(min_weight=1.0, group_capacity=2)
        )
        sketch.observe("a", oid(1))
        sketch.observe("b", oid(2))
        sketch.observe("a", oid(3))  # refreshes "a"
        sketch.observe("c", oid(4))  # evicts "b", the coldest
        sketch.observe("b", oid(5))  # "b" restarts empty: no (2, 5) edge
        edges = dict(sketch.hot_edges())
        assert (oid(1), oid(3)) in edges
        assert (oid(2), oid(5)) not in edges

    def test_hot_edges_is_deterministically_ordered(self):
        sketch = AffinitySketch(ReorgPolicy(min_weight=1.0))
        sketch.observe("q", oid(3))
        sketch.observe("q", oid(1))
        sketch.observe("q", oid(2))
        sketch.observe("r", oid(1))
        sketch.observe("r", oid(2))
        edges = sketch.hot_edges()
        # (1, 2) has weight 2; the weight-1 edges tie-break on OID pair.
        assert edges[0] == ((oid(1), oid(2)), 2.0)
        assert edges[1:] == [
            ((oid(1), oid(3)), 1.0),
            ((oid(2), oid(3)), 1.0),
        ]


class TestReorgPlanner:
    def plan(self, sketch, pages, per_page=4):
        planner = ReorgPlanner(sketch._policy)
        return planner.plan(sketch, pages.__getitem__, per_page)

    def test_hot_pair_on_distinct_pages_is_planned(self):
        sketch = AffinitySketch(ReorgPolicy(min_weight=1.0))
        sketch.observe("q", oid(1))
        sketch.observe("q", oid(2))
        clusters = self.plan(sketch, {oid(1): 0, oid(2): 9})
        assert clusters == [[oid(1), oid(2)]]

    def test_co_located_cluster_is_dropped(self):
        sketch = AffinitySketch(ReorgPolicy(min_weight=1.0))
        sketch.observe("q", oid(1))
        sketch.observe("q", oid(2))
        assert self.plan(sketch, {oid(1): 3, oid(2): 3}) == []

    def test_cluster_growth_is_capped_at_page_capacity(self):
        sketch = AffinitySketch(ReorgPolicy(min_weight=1.0))
        for serial in range(1, 6):
            sketch.observe("q", oid(serial))
        pages = {oid(serial): serial for serial in range(1, 6)}
        clusters = self.plan(sketch, pages, per_page=3)
        assert all(len(cluster) <= 3 for cluster in clusters)

    def test_migration_budget_prefers_hotter_clusters(self):
        policy = ReorgPolicy(min_weight=1.0, max_migrations_per_round=2)
        sketch = AffinitySketch(policy)
        sketch.observe("cold", oid(1))
        sketch.observe("cold", oid(2))
        for _repeat in range(3):
            sketch.observe(("hot", _repeat), oid(11))
            sketch.observe(("hot", _repeat), oid(12))
        pages = {oid(1): 1, oid(2): 2, oid(11): 3, oid(12): 4}
        clusters = ReorgPlanner(policy).plan(sketch, pages.__getitem__, 4)
        assert clusters == [[oid(11), oid(12)]]


def build_store(n=20, disk=None):
    db = generate_acob(n, seed=3)
    disk = disk if disk is not None else SimulatedDisk()
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects, store, Unclustered(), shared=db.shared_pool
    )
    return store, layout


class TestDeviceIdleTracker:
    def test_reads_accrue_contiguous_busy_intervals(self):
        store, layout = build_store()
        tracker = DeviceIdleTracker(store.disk)
        for root in layout.roots[:3]:
            store.fetch(root)
        intervals = tracker.busy_intervals[0]
        assert len(intervals) == store.disk.stats.reads
        for (_, prev_end), (begin, end) in zip(intervals, intervals[1:]):
            assert begin == prev_end
            assert end > begin
        assert tracker.busy_until(0) == intervals[-1][1]

    def test_migration_guard_routes_to_the_migration_ledger(self):
        store, layout = build_store()
        tracker = DeviceIdleTracker(store.disk)
        store.fetch(layout.roots[0])
        with tracker.migration_guard():
            store.fetch(layout.roots[1])
        assert tracker.busy_intervals[0]
        assert tracker.migration_intervals[0]
        assert tracker.overlaps() == []

    def test_detach_stops_observing(self):
        store, layout = build_store()
        tracker = DeviceIdleTracker(store.disk)
        store.fetch(layout.roots[0])
        seen = len(tracker.busy_intervals[0])
        tracker.detach()
        store.fetch(layout.roots[1])
        assert len(tracker.busy_intervals[0]) == seen

    def test_multi_device_timelines_are_independent(self):
        disk = MultiDeviceDisk(n_devices=2, pages_per_device=32)
        store, layout = build_store(disk=disk)
        tracker = DeviceIdleTracker(disk)
        assert tracker.n_devices == 2
        assert tracker.device_of(0) == 0
        assert tracker.device_of(32) == 1
        store.fetch(layout.roots[0])
        # A layout extent lives on one device; moving an object onto a
        # device-1 extent makes that device's timeline advance too.
        target = disk.allocate_on(1, 1)
        store.migrate(layout.roots[1], target.start)
        assert tracker.busy_intervals[0] and tracker.busy_intervals[1]
        assert tracker.overlaps() == []


AGGRESSIVE = ReorgPolicy(min_weight=1.0, min_observations=4)


def feed_pairs(reorg, layout, contexts=6):
    """Co-access the first roots pairwise so migrations get planned."""
    roots = layout.roots
    for context in range(contexts):
        reorg.observe(("q", context), roots[0])
        reorg.observe(("q", context), roots[1])


class TestReorganizer:
    def test_not_ready_without_observations(self):
        store, layout = build_store()
        reorg = Reorganizer(store, AGGRESSIVE)
        assert not reorg.ready()
        report = reorg.run_round()
        assert report.migrations == 0
        assert reorg.rounds == 0

    def test_force_overrides_readiness(self):
        store, layout = build_store()
        reorg = Reorganizer(store, AGGRESSIVE)
        reorg.observe("q", layout.roots[0])
        reorg.observe("q", layout.roots[1])
        assert not reorg.ready()
        report = reorg.run_round(force=True)
        assert report.migrations == 2

    def test_idle_check_vetoes_a_round(self):
        store, layout = build_store()
        reorg = Reorganizer(store, AGGRESSIVE, idle_check=lambda: False)
        feed_pairs(reorg, layout)
        assert reorg.ready()
        assert reorg.run_round().migrations == 0
        assert reorg.rounds == 0

    def test_pinned_source_page_is_planned_around(self):
        store, layout = build_store()
        reorg = Reorganizer(store, AGGRESSIVE)
        feed_pairs(reorg, layout)
        store.fetch_pinned(layout.roots[0])
        try:
            plan = reorg.plan_round()
            assert not plan
            assert plan.skipped_pinned >= 1
        finally:
            store.unpin(layout.roots[0])
        assert reorg.plan_round()

    def test_round_migrates_and_records_the_extent(self):
        store, layout = build_store()
        reorg = Reorganizer(store, AGGRESSIVE).bind_layout(layout)
        feed_pairs(reorg, layout)
        before = {
            root: store.fetch(root).encode() for root in layout.roots[:2]
        }
        report = reorg.run_round()
        assert report.migrations == 2
        assert report.clusters == 1
        assert report.pages_touched >= 2
        assert report.priced_ms > 0
        assert "reorg-1" in layout.extents
        extent = layout.extents["reorg-1"]
        for root in layout.roots[:2]:
            assert store.page_of(root) == extent.start
            assert store.fetch(root).encode() == before[root]

    def test_exhausted_fault_budget_aborts_the_round_cleanly(self):
        from repro.storage.faults import FaultConfig, FaultInjector

        store, layout = build_store()
        policy = ReorgPolicy(
            min_weight=1.0, min_observations=4, migration_retries=0
        )
        reorg = Reorganizer(store, policy)
        feed_pairs(reorg, layout)
        before = {
            root: store.fetch(root).encode() for root in layout.roots[:2]
        }
        store.buffer.flush_all()
        store.buffer.drop_clean()  # force physical (faultable) reads
        injector = FaultInjector(
            FaultConfig(
                seed=1, read_error_rate=1.0, max_consecutive_failures=2
            )
        ).attach(store.disk)
        report = reorg.run_round()
        injector.detach()
        assert report.aborted
        assert report.migrations == 0
        # The objects never moved and are still served byte-intact.
        for root, encoded in before.items():
            assert store.fetch(root).encode() == encoded

    def test_migration_to_same_page_is_skipped_next_round(self):
        store, layout = build_store()
        reorg = Reorganizer(store, AGGRESSIVE)
        feed_pairs(reorg, layout)
        assert reorg.run_round().migrations == 2
        feed_pairs(reorg, layout)
        # Already co-located now: the planner finds nothing to gain.
        assert reorg.run_round().migrations == 0
        assert reorg.rounds == 1
