"""Tests for the three clustering policies (paper Figures 8–10, 12)."""

import random

import pytest

from repro.cluster.policies import (
    InterObjectClustering,
    IntraObjectClustering,
    Unclustered,
)
from repro.errors import ExtentError, StorageError
from repro.workloads.acob import generate_acob


@pytest.fixture
def database():
    return generate_acob(12, seed=5)


def place(policy, database, store, seed=0):
    return policy.place(
        database.complex_objects,
        database.shared_pool,
        store,
        random.Random(seed),
    )


class TestUnclustered:
    def test_places_every_object(self, database, store):
        placement = place(Unclustered(), database, store)
        assert len(placement.pages) == database.total_objects()

    def test_respects_page_capacity(self, database, store):
        placement = place(Unclustered(), database, store)
        fill = {}
        for _oid, page_id in placement.pages:
            fill[page_id] = fill.get(page_id, 0) + 1
        assert all(count <= 9 for count in fill.values())

    def test_single_extent_sized_to_database(self, database, store):
        placement = place(Unclustered(), database, store)
        extent = placement.extents["all"]
        assert extent.length == -(-database.total_objects() // 9)

    def test_deterministic_under_seed(self, database, store):
        from repro.storage.disk import SimulatedDisk
        from repro.storage.store import ObjectStore

        first = place(Unclustered(), database, store, seed=3)
        second = place(
            Unclustered(), database, ObjectStore(SimulatedDisk()), seed=3
        )
        assert first.pages == second.pages

    def test_randomizes_across_seeds(self, database, store):
        from repro.storage.disk import SimulatedDisk
        from repro.storage.store import ObjectStore

        first = place(Unclustered(slack_pages=2), database, store, seed=1)
        second = place(
            Unclustered(slack_pages=2), database, ObjectStore(SimulatedDisk()), seed=2
        )
        assert first.pages != second.pages

    def test_negative_slack_rejected(self):
        with pytest.raises(ExtentError):
            Unclustered(slack_pages=-1)


class TestInterObject:
    def test_one_extent_per_type(self, database, store):
        placement = place(InterObjectClustering(cluster_pages=8), database, store)
        assert len(placement.extents) == 7  # seven tree positions

    def test_objects_land_in_their_type_cluster(self, database, store):
        placement = place(InterObjectClustering(cluster_pages=8), database, store)
        for oid, page_id in placement.pages:
            extent = placement.extents[f"type-{oid.type_id}"]
            assert page_id in extent

    def test_cluster_size_fixed_regardless_of_database(self, store):
        """Figure 12: clusters are larger than any database."""
        small = generate_acob(5, seed=1)
        placement = place(InterObjectClustering(cluster_pages=16), small, store)
        assert all(e.length == 16 for e in placement.extents.values())

    def test_disk_order_controls_physical_layout(self, database, store):
        order = database.type_ids_depth_first()
        placement = place(
            InterObjectClustering(cluster_pages=8, disk_order=order),
            database,
            store,
        )
        starts = [placement.extents[f"type-{tid}"].start for tid in order]
        assert starts == sorted(starts)

    def test_disk_order_missing_type_rejected(self, database, store):
        with pytest.raises(StorageError):
            place(
                InterObjectClustering(cluster_pages=8, disk_order=[1, 2]),
                database,
                store,
            )

    def test_cluster_too_small_rejected(self, store):
        big = generate_acob(200, seed=1)
        with pytest.raises(StorageError):
            place(InterObjectClustering(cluster_pages=2), big, store)

    def test_zero_cluster_pages_rejected(self):
        with pytest.raises(ExtentError):
            InterObjectClustering(cluster_pages=0)

    def test_shared_pool_clusters_by_type(self, store):
        shared_db = generate_acob(20, sharing=0.25, seed=2)
        placement = place(
            InterObjectClustering(cluster_pages=8), shared_db, store
        )
        for oid in shared_db.shared_pool:
            page = dict(placement.pages)[oid]
            assert page in placement.extents[f"type-{oid.type_id}"]


class TestIntraObject:
    def test_components_contiguous(self, database, store):
        placement = place(IntraObjectClustering(), database, store)
        pages = dict(placement.pages)
        for cobj in database.complex_objects:
            cobj_pages = sorted(pages[oid] for oid in cobj.objects)
            # 7 objects at 9/page span at most 2 pages, adjacent.
            assert cobj_pages[-1] - cobj_pages[0] <= 1

    def test_depth_first_storage_order(self, database, store):
        placement = place(IntraObjectClustering(), database, store)
        order = [oid for oid, _page in placement.pages]
        first = database.complex_objects[0]
        expected = [obj.oid for obj in first.traverse_depth_first()]
        assert order[: len(expected)] == expected

    def test_places_every_object(self, database, store):
        placement = place(IntraObjectClustering(), database, store)
        assert len(placement.pages) == database.total_objects()
