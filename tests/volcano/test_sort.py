"""Tests for the external merge sort."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.volcano.sort import ExternalSort


def make_store():
    disk = SimulatedDisk()
    return ObjectStore(disk, BufferManager(disk))


class TestInMemory:
    def test_sorts_within_one_run(self):
        op = ExternalSort(ListSource([3, 1, 2]), key=lambda n: n)
        assert op.execute() == [1, 2, 3]
        assert op.runs_spilled == 0

    def test_key_function(self):
        rows = [("b", 2), ("a", 1), ("c", 3)]
        op = ExternalSort(ListSource(rows), key=lambda r: r[0])
        assert [r[0] for r in op.execute()] == ["a", "b", "c"]

    def test_reverse(self):
        op = ExternalSort(ListSource([1, 3, 2]), key=lambda n: n, reverse=True)
        assert op.execute() == [3, 2, 1]

    def test_empty_input(self):
        assert ExternalSort(ListSource([]), key=lambda n: n).execute() == []

    def test_overflow_without_store_rejected(self):
        op = ExternalSort(ListSource(range(10)), key=lambda n: n, run_capacity=4)
        with pytest.raises(PlanError):
            op.execute()

    def test_bad_run_capacity(self):
        with pytest.raises(PlanError):
            ExternalSort(ListSource([]), key=lambda n: n, run_capacity=0)


class TestSpilling:
    def test_spills_and_merges(self):
        rng = random.Random(7)
        data = [rng.randrange(10_000) for _ in range(500)]
        op = ExternalSort(
            ListSource(data),
            key=lambda n: n,
            run_capacity=64,
            store=make_store(),
        )
        assert op.execute() == sorted(data)
        assert op.runs_spilled == 8

    def test_spilled_reverse_numeric(self):
        data = [5, 1, 9, 3, 7, 2, 8]
        op = ExternalSort(
            ListSource(data),
            key=lambda n: n,
            run_capacity=3,
            store=make_store(),
            reverse=True,
        )
        assert op.execute() == sorted(data, reverse=True)

    def test_spilled_complex_rows(self):
        rows = [{"k": i % 5, "v": i} for i in range(40)]
        op = ExternalSort(
            ListSource(rows),
            key=lambda r: (r["k"], r["v"]),
            run_capacity=8,
            store=make_store(),
        )
        out = op.execute()
        assert out == sorted(rows, key=lambda r: (r["k"], r["v"]))

    def test_run_boundary_exact_multiple(self):
        data = list(range(16, 0, -1))
        op = ExternalSort(
            ListSource(data), key=lambda n: n, run_capacity=8, store=make_store()
        )
        assert op.execute() == sorted(data)

    def test_reopen_resorts(self):
        op = ExternalSort(
            ListSource([2, 1]), key=lambda n: n, run_capacity=1, store=make_store()
        )
        assert op.execute() == [1, 2]
        assert op.execute() == [1, 2]


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(-1000, 1000), max_size=200),
    st.integers(1, 50),
)
def test_external_sort_matches_sorted(data, run_capacity):
    op = ExternalSort(
        ListSource(data),
        key=lambda n: n,
        run_capacity=run_capacity,
        store=make_store(),
    )
    assert op.execute() == sorted(data)
