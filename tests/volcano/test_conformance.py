"""Protocol conformance for every Volcano operator.

One parametrized harness drives each operator through the lifecycle
contracts all operators must share: open/next/close ordering is
enforced, end-of-stream is stable (``next`` keeps returning ``None``),
reopening restarts cleanly, and two executions yield identical rows.
"""

import pytest

from repro.errors import IteratorStateError
from repro.volcano.aggregate import count_aggregate
from repro.volcano.exchange import Partition, PartitionedExecute
from repro.volcano.filters import Distinct, Filter, Limit, Project
from repro.volcano.iterator import GeneratorSource, ListSource
from repro.volcano.joins import (
    HashJoin,
    NestedLoopsJoin,
    OneToOneMatch,
    PointerJoin,
)
from repro.volcano.mergejoin import MergeJoin
from repro.volcano.scan import FileScan, IndexScan, StoreScan, TidScan
from repro.volcano.sort import ExternalSort


def _laid_out_store():
    from repro.cluster.layout import layout_database
    from repro.cluster.policies import Unclustered
    from repro.storage.disk import SimulatedDisk
    from repro.storage.store import ObjectStore
    from repro.workloads.acob import generate_acob

    db = generate_acob(5, seed=1)
    store = ObjectStore(SimulatedDisk())
    layout = layout_database(db.complex_objects, store, Unclustered())
    return db, store, layout


def assembly_factory():
    from repro.core.assembly import Assembly
    from repro.workloads.acob import make_template

    db, store, layout = _laid_out_store()
    return Assembly(
        ListSource(layout.root_order), store, make_template(db), window_size=2
    )


def assembly_operator_factory():
    from repro.volcano.assembly import AssemblyOperator
    from repro.workloads.acob import make_template

    db, store, layout = _laid_out_store()
    return AssemblyOperator(
        ListSource(layout.root_order), store, make_template(db), window_size=2
    )


def component_filter_factory():
    from repro.volcano.assembly import ComponentFilter
    from repro.workloads.acob import generate_acob, make_template, payload_predicate

    template = make_template(generate_acob(5, seed=1))
    label = template.nodes()[1].label
    return ComponentFilter(
        assembly_operator_factory(), label, payload_predicate(1.0)
    )


def parallel_assembly_factory():
    from repro.volcano.assembly import ParallelAssembly
    from repro.workloads.acob import make_template

    db, store_a, layout = _laid_out_store()
    _db, store_b, _layout = _laid_out_store()  # deterministic replica
    return ParallelAssembly(
        ListSource(layout.root_order),
        [store_a, store_b],
        make_template(db),
        window_size=2,
    )


def _record_store():
    """A store with four one-page records, for scan-family factories."""
    from repro.storage.disk import SimulatedDisk
    from repro.storage.oid import Oid
    from repro.storage.record import ObjectRecord
    from repro.storage.store import ObjectStore

    store = ObjectStore(SimulatedDisk())
    extent = store.disk.allocate(1)
    oids = []
    for serial in range(4):
        oid = Oid(1, serial + 1)
        store.store_at(oid, ObjectRecord(ints=[serial, 0, 0, 0]), extent.start)
        oids.append(oid)
    return store, extent, oids


def file_scan_factory():
    from repro.storage.buffer import BufferManager
    from repro.storage.disk import SimulatedDisk
    from repro.storage.heap import HeapFile

    disk = SimulatedDisk()
    heap = HeapFile(disk, BufferManager(disk))
    for payload in (b"a", b"b", b"c"):
        heap.append(payload)
    return FileScan(heap)


def index_scan_factory():
    from repro.storage.btree import BTree
    from repro.storage.buffer import BufferManager
    from repro.storage.disk import SimulatedDisk

    disk = SimulatedDisk()
    tree = BTree(disk, BufferManager(disk), max_leaf_keys=4, max_internal_keys=4)
    for key in range(8):
        tree.insert(key, key.to_bytes(10, "big"))
    return IndexScan(tree, low=1, high=6)


def store_scan_factory():
    store, extent, _oids = _record_store()
    return StoreScan(store, extent)


def tid_scan_factory():
    store, _extent, oids = _record_store()
    return TidScan(ListSource(oids), store, order="sorted")


def pointer_join_factory():
    store, _extent, oids = _record_store()
    return PointerJoin(
        ListSource([("row", oid) for oid in oids]),
        store,
        extract=lambda row: row[1],
    )


OPERATOR_FACTORIES = {
    "list-source": lambda: ListSource([1, 2, 3]),
    "generator-source": lambda: GeneratorSource(lambda: iter([1, 2, 3])),
    "filter": lambda: Filter(ListSource(range(6)), lambda n: n % 2 == 0),
    "project": lambda: Project(ListSource(range(3)), lambda n: n + 1),
    "limit": lambda: Limit(ListSource(range(9)), 4),
    "distinct": lambda: Distinct(ListSource([1, 1, 2, 3, 3])),
    "sort": lambda: ExternalSort(ListSource([3, 1, 2]), key=lambda n: n),
    "hash-join": lambda: HashJoin(
        build=ListSource([(1, "b")]),
        probe=ListSource([(1, "p"), (2, "q")]),
        build_key=lambda r: r[0],
        probe_key=lambda r: r[0],
    ),
    "nested-loops": lambda: NestedLoopsJoin(
        ListSource([1, 2]),
        ListSource([2, 3]),
        predicate=lambda l, r: l == r,
    ),
    "match": lambda: OneToOneMatch.union(
        ListSource([1, 2]), ListSource([2, 3])
    ),
    "merge-join": lambda: MergeJoin(
        ListSource([(1, "a"), (2, "b")]),
        ListSource([(1, "x"), (2, "y")]),
        left_key=lambda r: r[0],
        right_key=lambda r: r[0],
    ),
    "aggregate": lambda: count_aggregate(
        ListSource("aabbc"), group_key=lambda c: c
    ),
    "partition": lambda: Partition(ListSource(range(7)), 2, 0),
    "partitioned-execute": lambda: PartitionedExecute(
        rows=list(range(6)),
        n_partitions=2,
        fragment=lambda source: Project(source, lambda n: n),
    ),
    "assembly": assembly_factory,
    "assembly-operator": assembly_operator_factory,
    "component-filter": component_filter_factory,
    "parallel-assembly": parallel_assembly_factory,
    "file-scan": file_scan_factory,
    "index-scan": index_scan_factory,
    "store-scan": store_scan_factory,
    "tid-scan": tid_scan_factory,
    "pointer-join": pointer_join_factory,
}


@pytest.fixture(params=sorted(OPERATOR_FACTORIES))
def operator_factory(request):
    return OPERATOR_FACTORIES[request.param]


class TestLifecycleConformance:
    def test_produces_at_least_one_row(self, operator_factory):
        rows = operator_factory().execute()
        assert rows

    def test_next_before_open_rejected(self, operator_factory):
        with pytest.raises(IteratorStateError):
            operator_factory().next()

    def test_close_before_open_rejected(self, operator_factory):
        with pytest.raises(IteratorStateError):
            operator_factory().close()

    def test_double_open_rejected(self, operator_factory):
        operator = operator_factory()
        operator.open()
        with pytest.raises(IteratorStateError):
            operator.open()
        operator.close()

    def test_end_of_stream_is_stable(self, operator_factory):
        operator = operator_factory()
        operator.open()
        while operator.next() is not None:
            pass
        assert operator.next() is None
        assert operator.next() is None
        operator.close()

    def test_reopen_reproduces_rows(self, operator_factory):
        """Reopen yields the same multiset of rows.

        Order may legally differ for physically-scheduled operators:
        the assembly operator's elevator sees a different disk head and
        buffer residency on the second run.
        """
        operator = operator_factory()
        first = [self._key(row) for row in operator.execute()]
        second = [self._key(row) for row in operator.execute()]
        assert sorted(first, key=repr) == sorted(second, key=repr)

    def test_next_after_close_rejected(self, operator_factory):
        operator = operator_factory()
        operator.open()
        operator.close()
        with pytest.raises(IteratorStateError):
            operator.next()

    def test_double_close_rejected(self, operator_factory):
        operator = operator_factory()
        operator.open()
        operator.close()
        with pytest.raises(IteratorStateError):
            operator.close()

    def test_early_close_is_legal(self, operator_factory):
        operator = operator_factory()
        operator.open()
        operator.next()
        operator.close()  # mid-stream close must not raise

    @staticmethod
    def _key(row):
        # Assembled complex objects compare by identity; use their OID.
        root_oid = getattr(row, "root_oid", None)
        return root_oid if root_oid is not None else row
