"""Metamorphic suite for the plan rewrite rules.

Property: for random small plans over the assembly operator,
``validate_plan`` holds before and after
:func:`~repro.volcano.plan.push_down_component_filters`, and the
rewritten plan yields a row multiset identical to the original's —
catching rewrite bugs (dropped filters, mis-wired parents, predicate
mutation) independently of the assembly engine itself.  The same
metamorphic contract covers :func:`~repro.volcano.plan.plan_assembly_join`:
both join orders are equivalent plans, so whichever the cost rule
picks, its output must match the shape it rejected.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering
from repro.errors import PlanError
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.assembly import AssemblyOperator, ComponentFilter
from repro.volcano.filters import Filter
from repro.volcano.iterator import ListSource
from repro.volcano.plan import (
    explain,
    plan_assembly_join,
    push_down_component_filters,
    validate_plan,
    walk_plan,
)
from repro.volcano.sort import ExternalSort
from repro.workloads.acob import generate_acob, make_template, payload_predicate

SELECTIVITIES = (0.3, 0.7, 1.0)

_DB = generate_acob(14, seed=9)
_LABELS = [node.label for node in make_template(_DB).nodes()]


def fresh_store():
    """Bit-identical laid-out store per call (layouts are deterministic)."""
    disk = SimulatedDisk()
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        _DB.complex_objects,
        store,
        InterObjectClustering(cluster_pages=32),
        shared=_DB.shared_pool,
    )
    return store, layout


def build_from_recipe(recipe):
    """Construct a plan from a layer recipe over a fresh store."""
    store, layout = fresh_store()
    plan = AssemblyOperator(
        ListSource(layout.root_order), store, make_template(_DB), window_size=3
    )
    for layer in recipe:
        if layer[0] == "component":
            _kind, label_index, selectivity = layer
            plan = ComponentFilter(
                plan,
                _LABELS[label_index % len(_LABELS)],
                payload_predicate(selectivity),
            )
        elif layer[0] == "filter":
            plan = Filter(plan, lambda row: row.root.ints[0] % 2 == 0)
        else:
            plan = ExternalSort(plan, key=lambda row: repr(row.root_oid))
    return plan


def multiset(rows):
    out = []
    for row in rows:
        if hasattr(row, "root_oid"):
            walk = tuple(
                (obj.oid, obj.ints, obj.ref_oids, sorted(obj.children))
                for obj in row.root.walk()
            )
            out.append(repr((row.root_oid, walk)))
        else:
            out.append(repr(row))
    return Counter(out)


LAYER = st.one_of(
    st.tuples(
        st.just("component"),
        st.integers(min_value=0, max_value=len(_LABELS) - 1),
        st.sampled_from(SELECTIVITIES),
    ),
    st.tuples(st.just("filter")),
    st.tuples(st.just("sort")),
)


class TestPushdownMetamorphic:
    @settings(max_examples=30, deadline=None)
    @given(recipe=st.lists(LAYER, min_size=0, max_size=3))
    def test_rewrite_preserves_validity_and_multiset(self, recipe):
        original = build_from_recipe(recipe)
        validate_plan(original)
        rewritten_input = build_from_recipe(recipe)
        rewritten, decisions = push_down_component_filters(rewritten_input)
        validate_plan(rewritten)

        # Every decision removed exactly one ComponentFilter directly
        # above the assembly operator.
        def count_component_filters(plan):
            return sum(
                1
                for _depth, op in walk_plan(plan)
                if isinstance(op, ComponentFilter)
            )

        assert count_component_filters(rewritten) == (
            count_component_filters(original) - len(decisions)
        )
        assert multiset(rewritten.execute()) == multiset(original.execute())

    def test_direct_pushdown_folds_into_template(self):
        plan = build_from_recipe([("component", 1, 0.7)])
        operator = plan._child
        assert operator.template.predicate_count == 0
        rewritten, decisions = push_down_component_filters(plan)
        assert rewritten is operator
        assert len(decisions) == 1
        assert decisions[0].label == _LABELS[1]
        assert decisions[0].selectivity == pytest.approx(0.7)
        assert operator.template.predicate_count == 1
        assert "pushed=1" in explain(rewritten)

    def test_stacked_filters_conjoin(self):
        plan = build_from_recipe(
            [("component", 1, 0.7), ("component", 1, 0.5)]
        )
        rewritten, decisions = push_down_component_filters(plan)
        assert len(decisions) == 2
        # Both predicates conjoin on the same node: one conjunction.
        assert rewritten.template.predicate_count == 1
        node = rewritten.template.node(_LABELS[1])
        assert node.predicate.selectivity == pytest.approx(0.7 * 0.5)

    def test_interposed_operator_blocks_the_rule(self):
        plan = build_from_recipe([("sort",), ("component", 2, 0.7)])
        rewritten, decisions = push_down_component_filters(plan)
        assert decisions == []
        assert rewritten is plan

    def test_rewriting_an_open_plan_is_rejected(self):
        plan = build_from_recipe([("component", 1, 0.7)])
        plan.open()
        with pytest.raises(PlanError):
            push_down_component_filters(plan)
        plan.close()


class TestJoinOrderMetamorphic:
    def _run(self, join_fraction):
        store, layout = fresh_store()
        roots = layout.root_order
        keep = max(1, int(len(roots) * join_fraction))
        build_rows = [(oid, index) for index, oid in enumerate(roots[:keep])]
        planned = plan_assembly_join(
            roots,
            build_rows,
            lambda item: item[0],
            store,
            make_template(_DB),
            pages_spanned=layout.pages_spanned(),
            window_size=3,
        )
        return planned, roots, build_rows

    @pytest.mark.parametrize("join_fraction", [0.2, 1.0])
    def test_both_shapes_are_equivalent(self, join_fraction):
        planned, roots, build_rows = self._run(join_fraction)
        validate_plan(planned.plan)
        chosen_rows = planned.plan.execute()

        # Rebuild the rejected shape by inverting the cost comparison.
        from repro.volcano.plan import _assemble_then_join, _join_then_assemble

        store2, layout2 = fresh_store()
        other_builder = (
            _assemble_then_join
            if planned.choice.shape == "join-then-assemble"
            else _join_then_assemble
        )
        other = other_builder(
            layout2.root_order,
            build_rows,
            lambda item: item[0],
            store2,
            make_template(_DB),
            dict(window_size=3),
        )
        validate_plan(other)
        assert multiset(chosen_rows) == multiset(other.execute())

    def test_selective_join_assembles_below(self):
        planned, _roots, _build = self._run(0.2)
        assert planned.choice.shape == "join-then-assemble"
        assert planned.choice.cost_join_first < planned.choice.cost_assemble_first

    def test_full_join_assembles_above(self):
        planned, _roots, _build = self._run(1.0)
        assert planned.choice.shape == "assemble-then-join"

    def test_explain_renders_the_choice(self):
        planned, _roots, _build = self._run(0.2)
        rendering = planned.explain()
        assert "join order: join-then-assemble" in rendering
        assert "AssemblyOperator" in rendering
        assert "HashJoin" in rendering
