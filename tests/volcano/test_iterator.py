"""Tests for the Volcano iterator protocol."""

import pytest

from repro.errors import IteratorStateError
from repro.volcano.iterator import GeneratorSource, ListSource, VolcanoIterator


class TestProtocol:
    def test_lifecycle(self):
        source = ListSource([1, 2])
        source.open()
        assert source.next() == 1
        assert source.next() == 2
        assert source.next() is None
        source.close()

    def test_next_before_open(self):
        with pytest.raises(IteratorStateError):
            ListSource([1]).next()

    def test_double_open(self):
        source = ListSource([1])
        source.open()
        with pytest.raises(IteratorStateError):
            source.open()

    def test_close_before_open(self):
        with pytest.raises(IteratorStateError):
            ListSource([1]).close()

    def test_double_close(self):
        source = ListSource([])
        source.open()
        source.close()
        with pytest.raises(IteratorStateError):
            source.close()

    def test_next_after_close(self):
        source = ListSource([1])
        source.open()
        source.close()
        with pytest.raises(IteratorStateError):
            source.next()

    def test_reopen_after_close(self):
        """Volcano re-opens inner join inputs; iterators must support it."""
        source = ListSource([1, 2])
        assert source.execute() == [1, 2]
        assert source.execute() == [1, 2]

    def test_is_open(self):
        source = ListSource([])
        assert not source.is_open
        source.open()
        assert source.is_open
        source.close()
        assert not source.is_open


class TestHelpers:
    def test_rows_generator_drives_protocol(self):
        source = ListSource([1, 2, 3])
        assert list(source.rows()) == [1, 2, 3]
        assert not source.is_open  # closed when exhausted

    def test_rows_closes_on_early_exit(self):
        source = ListSource([1, 2, 3])
        for row in source.rows():
            break
        assert not source.is_open

    def test_execute(self):
        assert ListSource(["a", "b"]).execute() == ["a", "b"]

    def test_empty_source(self):
        assert ListSource([]).execute() == []


class TestGeneratorSource:
    def test_yields_factory_output(self):
        source = GeneratorSource(lambda: iter(range(4)))
        assert source.execute() == [0, 1, 2, 3]

    def test_reopen_restarts_generator(self):
        source = GeneratorSource(lambda: iter("ab"))
        assert source.execute() == ["a", "b"]
        assert source.execute() == ["a", "b"]
