"""Differential conformance: plans with AssemblyOperator ≡ the bare driver.

The tentpole property pinning the composable assembly operator: for
*any* plan containing :class:`~repro.volcano.assembly.AssemblyOperator`
— under any scheduler, clustering, window size, partition count and
fault rate — the plan produces rows multiset-identical to driving the
bare :class:`~repro.core.assembly.Assembly` engine directly and
applying the equivalent in-memory algebra to its output, and the
plan's store accumulates **bit-identical** :class:`DiskStats`.  The
operators above assembly touch no pages, and the operator wrapper is
the same engine behind the same code path, so any drift localizes a
real behavioural change.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.layout import layout_database
from repro.cluster.policies import (
    InterObjectClustering,
    IntraObjectClustering,
    Unclustered,
)
from repro.core.assembly import Assembly
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.storage.store import ObjectStore
from repro.volcano.aggregate import count_aggregate
from repro.volcano.assembly import AssemblyOperator, ParallelAssembly
from repro.volcano.filters import Filter, Project
from repro.volcano.iterator import ListSource
from repro.volcano.joins import HashJoin
from repro.volcano.plan import validate_plan
from repro.volcano.sort import ExternalSort
from repro.workloads.acob import generate_acob, make_template, payload_predicate

SCHEDULERS = ("depth-first", "breadth-first", "elevator")
CLUSTERINGS = ("inter-object", "intra-object", "unclustered")
SHAPES = ("bare", "filter", "project", "sort", "aggregate", "join")


def make_policy(name):
    if name == "inter-object":
        return InterObjectClustering(cluster_pages=64)
    if name == "intra-object":
        return IntraObjectClustering()
    return Unclustered()


def build_store(db, clustering, fault_rate, fault_seed):
    """A laid-out store; repeated calls are bit-identical."""
    disk = SimulatedDisk()
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects, store, make_policy(clustering),
        shared=db.shared_pool,
    )
    if fault_rate > 0.0:
        FaultInjector(
            FaultConfig(
                seed=fault_seed,
                read_error_rate=fault_rate,
                max_consecutive_failures=2,
            )
        ).attach(disk)
    return store, layout


def assembly_kwargs(scheduler, window, selectivity, fault_rate):
    kwargs = dict(window_size=window, scheduler=scheduler)
    if fault_rate > 0.0:
        kwargs["retry_policy"] = RetryPolicy(max_retries=2)
    return kwargs


def make_template_for(db, selectivity):
    if selectivity is None:
        return make_template(db)
    return make_template(
        db,
        predicate_position=1,
        predicate=payload_predicate(selectivity),
    )


def stats_tuple(disk):
    """Every DiskStats counter, as one comparable value."""
    stats = disk.stats
    return (
        stats.reads,
        stats.writes,
        stats.read_seek_total,
        stats.write_seek_total,
        stats.pages_read,
        stats.run_reads,
        stats.busy_ms,
    )


def fingerprint(cobj):
    """Everything observable about one assembled complex object."""
    walk = [
        (obj.oid, obj.ints, obj.ref_oids, sorted(obj.children))
        for obj in cobj.root.walk()
    ]
    return (
        cobj.root_oid,
        cobj.fetches,
        cobj.shared_links,
        cobj.degraded,
        tuple(walk),
    )


def row_key(row):
    """Hashable identity for any row shape a tested plan emits."""
    if hasattr(row, "root_oid"):
        return fingerprint(row)
    if isinstance(row, tuple):
        return tuple(row_key(item) for item in row)
    return row


def multiset(rows):
    return Counter(repr(row_key(row)) for row in rows)


def _passes(row):
    return row.root.ints[0] % 2 == 0


BUILD_STRIDE = 3  # every third root joins, so the join is selective


def apply_reference_algebra(shape, reference_rows):
    """The in-memory equivalent of the plan algebra, on bare rows."""
    if shape == "bare":
        return reference_rows
    if shape == "filter":
        return [row for row in reference_rows if _passes(row)]
    if shape == "project":
        return [row.root_oid for row in reference_rows]
    if shape == "sort":
        return sorted(reference_rows, key=lambda row: repr(row.root_oid))
    if shape == "aggregate":
        counts = Counter(row.object_count() for row in reference_rows)
        return [(key, count) for key, count in counts.items()]
    if shape == "join":
        build = [
            (row.root_oid, index)
            for index, row in enumerate(reference_rows)
            if index % BUILD_STRIDE == 0
        ]
        table = {}
        for item in build:
            table.setdefault(item[0], []).append(item)
        out = []
        for row in reference_rows:
            for item in table.get(row.root_oid, []):
                out.append((row, item))
        return out
    raise AssertionError(shape)


def build_plan(shape, operator, reference_rows):
    """The algebra under test, composed over the assembly operator."""
    if shape == "bare":
        return operator
    if shape == "filter":
        return Filter(operator, _passes)
    if shape == "project":
        return Project(operator, lambda row: row.root_oid)
    if shape == "sort":
        return ExternalSort(operator, key=lambda row: repr(row.root_oid))
    if shape == "aggregate":
        return count_aggregate(
            operator, group_key=lambda row: row.object_count()
        )
    if shape == "join":
        build = [
            (row.root_oid, index)
            for index, row in enumerate(reference_rows)
            if index % BUILD_STRIDE == 0
        ]
        return HashJoin(
            build=ListSource(build),
            probe=operator,
            build_key=lambda item: item[0],
            probe_key=lambda row: row.root_oid,
        )
    raise AssertionError(shape)


class TestDifferentialConformance:
    @settings(max_examples=40, deadline=None)
    @given(
        db_size=st.integers(min_value=6, max_value=14),
        clustering=st.sampled_from(CLUSTERINGS),
        scheduler=st.sampled_from(SCHEDULERS),
        window=st.sampled_from((1, 2, 5)),
        selectivity=st.sampled_from((None, 0.4)),
        fault_rate=st.sampled_from((0.0, 0.05)),
        shape=st.sampled_from(SHAPES),
        fault_seed=st.integers(min_value=0, max_value=3),
    )
    def test_plan_matches_bare_driver(
        self,
        db_size,
        clustering,
        scheduler,
        window,
        selectivity,
        fault_rate,
        shape,
        fault_seed,
    ):
        db = generate_acob(db_size, seed=5)
        kwargs = assembly_kwargs(scheduler, window, selectivity, fault_rate)

        # Reference: the bare driver on its own store.
        ref_store, ref_layout = build_store(
            db, clustering, fault_rate, fault_seed
        )
        bare = Assembly(
            ListSource(ref_layout.root_order),
            ref_store,
            make_template_for(db, selectivity),
            **kwargs,
        )
        reference_rows = bare.execute()

        # Plan under test: identical fresh store, operator in a plan.
        plan_store, plan_layout = build_store(
            db, clustering, fault_rate, fault_seed
        )
        operator = AssemblyOperator(
            ListSource(plan_layout.root_order),
            plan_store,
            make_template_for(db, selectivity),
            **kwargs,
        )
        plan = build_plan(shape, operator, reference_rows)
        validate_plan(plan)
        plan_rows = plan.execute()

        expected = apply_reference_algebra(shape, reference_rows)
        assert multiset(plan_rows) == multiset(expected)
        assert stats_tuple(plan_store.disk) == stats_tuple(ref_store.disk)

    @settings(max_examples=25, deadline=None)
    @given(
        db_size=st.integers(min_value=6, max_value=12),
        clustering=st.sampled_from(CLUSTERINGS),
        scheduler=st.sampled_from(SCHEDULERS),
        window=st.sampled_from((1, 3)),
        n_partitions=st.integers(min_value=1, max_value=4),
        fault_rate=st.sampled_from((0.0, 0.05)),
    )
    def test_partitioned_plan_matches_partitioned_bare_drivers(
        self, db_size, clustering, scheduler, window, n_partitions, fault_rate
    ):
        """ParallelAssembly over k replicas ≡ k bare drivers, partition
        by partition: multiset-identical rows overall and bit-identical
        DiskStats per partition store."""
        db = generate_acob(db_size, seed=6)
        kwargs = assembly_kwargs(scheduler, window, None, fault_rate)
        template = make_template(db)

        def replica_stores():
            return [
                build_store(db, clustering, fault_rate, fault_seed=index)
                for index in range(n_partitions)
            ]

        plan_replicas = replica_stores()
        roots = plan_replicas[0][1].root_order
        parallel = ParallelAssembly(
            ListSource(roots),
            [store for store, _layout in plan_replicas],
            template,
            **kwargs,
        )
        plan_rows = parallel.execute()

        ref_replicas = replica_stores()
        reference_rows = []
        for index, (store, _layout) in enumerate(ref_replicas):
            part = [
                root
                for position, root in enumerate(roots)
                if position % n_partitions == index
            ]
            bare = Assembly(
                ListSource(part), store, template, **kwargs
            )
            reference_rows.extend(bare.execute())
            assert stats_tuple(store.disk) == stats_tuple(
                plan_replicas[index][0].disk
            )

        assert multiset(plan_rows) == multiset(reference_rows)

    def test_merge_order_is_deterministic(self):
        """Two identical parallel runs produce identical ordered output."""
        db = generate_acob(12, seed=7)
        template = make_template(db)

        def run():
            replicas = [
                build_store(db, "inter-object", 0.0, 0) for _ in range(3)
            ]
            roots = replicas[0][1].root_order
            parallel = ParallelAssembly(
                ListSource(roots),
                [store for store, _layout in replicas],
                template,
                window_size=2,
            )
            return [fingerprint(row) for row in parallel.execute()]

        assert run() == run()
