"""Tests for exchange-style partitioning."""

import pytest

from repro.errors import PlanError
from repro.volcano.exchange import Partition, PartitionedExecute
from repro.volcano.filters import Project
from repro.volcano.iterator import ListSource


class TestPartition:
    def test_round_robin_split(self):
        rows = list(range(10))
        parts = [
            Partition(ListSource(rows), 3, i).execute() for i in range(3)
        ]
        assert parts[0] == [0, 3, 6, 9]
        assert parts[1] == [1, 4, 7]
        assert parts[2] == [2, 5, 8]

    def test_partitions_cover_input(self):
        rows = list(range(17))
        seen = []
        for i in range(4):
            seen.extend(Partition(ListSource(rows), 4, i).execute())
        assert sorted(seen) == rows

    def test_bad_index(self):
        with pytest.raises(PlanError):
            Partition(ListSource([]), 2, 2)

    def test_bad_count(self):
        with pytest.raises(PlanError):
            Partition(ListSource([]), 0, 0)


class TestPartitionedExecute:
    def test_runs_fragment_per_partition(self):
        op = PartitionedExecute(
            rows=list(range(8)),
            n_partitions=2,
            fragment=lambda source: Project(source, lambda n: n * 10),
        )
        assert sorted(op.execute()) == [n * 10 for n in range(8)]

    def test_interleaves_round_robin(self):
        op = PartitionedExecute(
            rows=[0, 1, 2, 3],
            n_partitions=2,
            fragment=lambda source: source,
        )
        # partitions: [0, 2] and [1, 3]; merged round-robin.
        assert op.execute() == [0, 1, 2, 3]

    def test_uneven_partitions_drain(self):
        op = PartitionedExecute(
            rows=list(range(5)),
            n_partitions=3,
            fragment=lambda source: source,
        )
        assert sorted(op.execute()) == list(range(5))

    def test_empty_input(self):
        op = PartitionedExecute(
            rows=[], n_partitions=2, fragment=lambda source: source
        )
        assert op.execute() == []

    def test_bad_partition_count(self):
        with pytest.raises(PlanError):
            PartitionedExecute(rows=[], n_partitions=0, fragment=lambda s: s)
