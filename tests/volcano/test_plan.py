"""Tests for plan explain and validation."""

import pytest

from repro.errors import PlanError
from repro.volcano.filters import Filter, Project
from repro.volcano.iterator import ListSource
from repro.volcano.joins import HashJoin
from repro.volcano.plan import (
    child_operators,
    collect_operators,
    explain,
    validate_plan,
    walk_plan,
)


def make_plan():
    return Filter(
        Project(ListSource([1, 2, 3]), lambda n: n * 2),
        lambda n: n > 2,
    )


class TestDiscovery:
    def test_child_operators(self):
        plan = make_plan()
        children = child_operators(plan)
        assert len(children) == 1
        assert isinstance(children[0], Project)

    def test_join_has_two_children(self):
        join = HashJoin(
            build=ListSource([1]),
            probe=ListSource([1]),
            build_key=lambda r: r,
            probe_key=lambda r: r,
        )
        assert len(child_operators(join)) == 2

    def test_collect_pre_order(self):
        names = [type(op).__name__ for op in collect_operators(make_plan())]
        assert names == ["Filter", "Project", "ListSource"]

    def test_walk_depths(self):
        depths = [depth for depth, _op in walk_plan(make_plan())]
        assert depths == [0, 1, 2]


class TestExplain:
    def test_indented_tree(self):
        text = explain(make_plan())
        assert text == "Filter\n  Project\n    ListSource"

    def test_describe_hook(self):
        class Described(ListSource):
            def describe(self):
                return "ListSource(n=3)"

        text = explain(Described([1, 2, 3]))
        assert text == "ListSource(n=3)"

    def test_assembly_plan_explains(self, small_acob, small_layout):
        from repro.core.assembly import Assembly
        from repro.workloads.acob import make_template

        plan = Filter(
            Assembly(
                ListSource(small_layout.root_order),
                small_layout.store,
                make_template(small_acob),
            ),
            lambda c: True,
        )
        text = explain(plan)
        assert "Filter" in text
        assert "Assembly" in text
        assert "ListSource" in text


class TestValidate:
    def test_clean_plan_passes(self):
        validate_plan(make_plan())

    def test_shared_instance_rejected(self):
        shared = ListSource([1])
        join = HashJoin(
            build=shared,
            probe=shared,  # the classic mistake
            build_key=lambda r: r,
            probe_key=lambda r: r,
        )
        with pytest.raises(PlanError):
            validate_plan(join)

    def test_cyclic_plan_fails_loudly(self):
        operator = Project(ListSource([1]), lambda n: n)
        operator._child = operator  # self-cycle
        with pytest.raises(PlanError):
            validate_plan(operator)
