"""Tests for the sort-merge join."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.volcano.iterator import ListSource
from repro.volcano.joins import HashJoin
from repro.volcano.mergejoin import MergeJoin
from repro.volcano.sort import ExternalSort


def merge(left, right):
    return MergeJoin(
        ListSource(left),
        ListSource(right),
        left_key=lambda r: r[0],
        right_key=lambda r: r[0],
    )


class TestBasics:
    def test_simple_join(self):
        out = merge(
            [(1, "a"), (2, "b"), (4, "d")],
            [(2, "x"), (3, "y"), (4, "z")],
        ).execute()
        assert out == [((2, "b"), (2, "x")), ((4, "d"), (4, "z"))]

    def test_duplicates_cross_product(self):
        out = merge(
            [(1, "a1"), (1, "a2")],
            [(1, "b1"), (1, "b2"), (1, "b3")],
        ).execute()
        assert len(out) == 6
        assert {l[1] for l, _r in out} == {"a1", "a2"}
        assert {r[1] for _l, r in out} == {"b1", "b2", "b3"}

    def test_no_matches(self):
        assert merge([(1, "a")], [(2, "b")]).execute() == []

    def test_empty_sides(self):
        assert merge([], [(1, "b")]).execute() == []
        assert merge([(1, "a")], []).execute() == []

    def test_combine_hook(self):
        op = MergeJoin(
            ListSource([(1, "a")]),
            ListSource([(1, "b")]),
            left_key=lambda r: r[0],
            right_key=lambda r: r[0],
            combine=lambda l, r: l[1] + r[1],
        )
        assert op.execute() == ["ab"]

    def test_reopen(self):
        op = merge([(1, "a")], [(1, "b")])
        assert len(op.execute()) == 1
        assert len(op.execute()) == 1


class TestSortednessEnforcement:
    def test_unsorted_left_rejected(self):
        op = merge([(2, "b"), (1, "a")], [(1, "x")])
        with pytest.raises(PlanError):
            op.execute()

    def test_unsorted_right_rejected(self):
        op = merge([(1, "a"), (3, "c")], [(2, "x"), (1, "y")])
        with pytest.raises(PlanError):
            op.execute()

    def test_composes_with_external_sort(self):
        left = ExternalSort(
            ListSource([(3, "c"), (1, "a"), (2, "b")]), key=lambda r: r[0]
        )
        right = ExternalSort(
            ListSource([(2, "y"), (1, "x")]), key=lambda r: r[0]
        )
        op = MergeJoin(
            left, right, left_key=lambda r: r[0], right_key=lambda r: r[0]
        )
        assert [(l[0]) for l, _r in op.execute()] == [1, 2]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 9), max_size=25),
    st.lists(st.integers(0, 9), max_size=25),
)
def test_merge_equals_hash_join(left_keys, right_keys):
    left = sorted((k, f"L{i}") for i, k in enumerate(left_keys))
    right = sorted((k, f"R{i}") for i, k in enumerate(right_keys))
    merged = merge(left, right).execute()
    hashed = HashJoin(
        build=ListSource(right),
        probe=ListSource(left),
        build_key=lambda r: r[0],
        probe_key=lambda r: r[0],
    ).execute()
    assert sorted(merged) == sorted(hashed)
