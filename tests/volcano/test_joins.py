"""Tests for join operators and the one-to-one match operator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.storage.oid import Oid
from repro.storage.record import ObjectRecord
from repro.volcano.iterator import ListSource
from repro.volcano.joins import (
    HashJoin,
    NestedLoopsJoin,
    OneToOneMatch,
    PointerJoin,
)

LEFT = [(1, "a"), (2, "b"), (3, "c")]
RIGHT = [(2, "x"), (3, "y"), (3, "z"), (4, "w")]


def reference_join(left, right):
    return sorted(
        (l, r) for l in left for r in right if l[0] == r[0]
    )


class TestNestedLoopsJoin:
    def test_equi_join(self):
        op = NestedLoopsJoin(
            ListSource(LEFT),
            ListSource(RIGHT),
            predicate=lambda l, r: l[0] == r[0],
        )
        assert sorted(op.execute()) == reference_join(LEFT, RIGHT)

    def test_arbitrary_predicate(self):
        op = NestedLoopsJoin(
            ListSource([1, 5]),
            ListSource([2, 4, 6]),
            predicate=lambda l, r: r > l,
            combine=lambda l, r: (l, r),
        )
        assert op.execute() == [(1, 2), (1, 4), (1, 6), (5, 6)]

    def test_empty_sides(self):
        op = NestedLoopsJoin(
            ListSource([]), ListSource(RIGHT), predicate=lambda l, r: True
        )
        assert op.execute() == []
        op = NestedLoopsJoin(
            ListSource(LEFT), ListSource([]), predicate=lambda l, r: True
        )
        assert op.execute() == []

    def test_inner_reopened_per_outer_row(self):
        opens = []

        class CountingSource(ListSource):
            def _open(self):
                opens.append(1)
                super()._open()

        op = NestedLoopsJoin(
            ListSource([1, 2, 3]),
            CountingSource([1]),
            predicate=lambda l, r: False,
        )
        op.execute()
        assert len(opens) == 3


class TestHashJoin:
    def test_matches_reference(self):
        op = HashJoin(
            build=ListSource(RIGHT),
            probe=ListSource(LEFT),
            build_key=lambda r: r[0],
            probe_key=lambda l: l[0],
            combine=lambda probe, build: (probe, build),
        )
        assert sorted(op.execute()) == reference_join(LEFT, RIGHT)

    def test_duplicate_build_keys(self):
        op = HashJoin(
            build=ListSource([(1, "p"), (1, "q")]),
            probe=ListSource([(1, "l")]),
            build_key=lambda r: r[0],
            probe_key=lambda r: r[0],
        )
        assert len(op.execute()) == 2

    def test_no_matches(self):
        op = HashJoin(
            build=ListSource([(9, "x")]),
            probe=ListSource(LEFT),
            build_key=lambda r: r[0],
            probe_key=lambda r: r[0],
        )
        assert op.execute() == []

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 8), max_size=30),
        st.lists(st.integers(0, 8), max_size=30),
    )
    def test_hash_equals_nested_loops(self, left_keys, right_keys):
        left = [(k, f"L{i}") for i, k in enumerate(left_keys)]
        right = [(k, f"R{i}") for i, k in enumerate(right_keys)]
        hashed = HashJoin(
            build=ListSource(right),
            probe=ListSource(left),
            build_key=lambda r: r[0],
            probe_key=lambda r: r[0],
        ).execute()
        nested = NestedLoopsJoin(
            ListSource(left),
            ListSource(right),
            predicate=lambda l, r: l[0] == r[0],
        ).execute()
        assert sorted(hashed) == sorted(nested)


class TestPointerJoin:
    def test_dereferences_oids(self, store):
        extent = store.disk.allocate(1)
        target = Oid(1, 1)
        store.store_at(target, ObjectRecord(ints=[99, 0, 0, 0]), extent.start)
        rows = PointerJoin(
            ListSource([("row", target)]),
            store,
            extract=lambda r: r[1],
        ).execute()
        assert len(rows) == 1
        row, oid, record = rows[0]
        assert oid == target
        assert record.ints[0] == 99

    def test_skips_null_and_none(self, store):
        from repro.storage.oid import NULL_OID

        rows = PointerJoin(
            ListSource([("a", NULL_OID), ("b", None)]),
            store,
            extract=lambda r: r[1],
        ).execute()
        assert rows == []


class TestOneToOneMatch:
    def test_inner_match_is_one_to_one(self):
        op = OneToOneMatch(
            ListSource([1, 1, 2]),
            ListSource([1, 2, 2]),
            left_key=lambda r: r,
            right_key=lambda r: r,
        )
        # Each row matches at most one partner: 1-1 and 2-2 once each,
        # the surplus 1 (left) and 2 (right) stay unmatched.
        assert sorted(op.execute()) == [(1, 1), (2, 2)]

    def test_left_unmatched(self):
        op = OneToOneMatch(
            ListSource([1, 2, 3]),
            ListSource([2]),
            left_key=lambda r: r,
            right_key=lambda r: r,
            emit_matched=False,
            emit_left_unmatched=True,
            combine=lambda l, r: l,
        )
        assert op.execute() == [1, 3]

    def test_full_outer_shape(self):
        op = OneToOneMatch(
            ListSource([1, 2]),
            ListSource([2, 3]),
            left_key=lambda r: r,
            right_key=lambda r: r,
            emit_matched=True,
            emit_left_unmatched=True,
            emit_right_unmatched=True,
        )
        assert sorted(op.execute(), key=str) == sorted(
            [(1, None), (2, 2), (None, 3)], key=str
        )

    def test_must_emit_something(self):
        with pytest.raises(PlanError):
            OneToOneMatch(
                ListSource([]),
                ListSource([]),
                left_key=lambda r: r,
                right_key=lambda r: r,
                emit_matched=False,
            )

    def test_intersection(self):
        op = OneToOneMatch.intersection(
            ListSource([1, 2, 2, 3]), ListSource([2, 2, 4])
        )
        assert sorted(op.execute()) == [2, 2]

    def test_difference(self):
        op = OneToOneMatch.difference(
            ListSource([1, 2, 2, 3]), ListSource([2])
        )
        assert sorted(op.execute()) == [1, 2, 3]

    def test_union(self):
        op = OneToOneMatch.union(ListSource([1, 2]), ListSource([2, 3]))
        assert sorted(op.execute()) == [1, 2, 3]

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 6), max_size=20),
        st.lists(st.integers(0, 6), max_size=20),
    )
    def test_difference_matches_multiset_semantics(self, left, right):
        got = sorted(
            OneToOneMatch.difference(
                ListSource(left), ListSource(right)
            ).execute()
        )
        # Multiset difference: remove one left occurrence per right one.
        expected = list(left)
        for value in right:
            if value in expected:
                expected.remove(value)
        assert got == sorted(expected)
