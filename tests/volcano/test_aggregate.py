"""Tests for hash aggregation."""

from repro.volcano.aggregate import HashAggregate, count_aggregate, sum_aggregate
from repro.volcano.iterator import ListSource

ROWS = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("a", 5)]


class TestHashAggregate:
    def test_count(self):
        op = count_aggregate(ListSource(ROWS), group_key=lambda r: r[0])
        assert sorted(op.execute()) == [("a", 3), ("b", 1), ("c", 1)]

    def test_sum(self):
        op = sum_aggregate(
            ListSource(ROWS), group_key=lambda r: r[0], value=lambda r: r[1]
        )
        assert sorted(op.execute()) == [("a", 9), ("b", 2), ("c", 4)]

    def test_custom_fold(self):
        op = HashAggregate(
            ListSource(ROWS),
            group_key=lambda r: r[0],
            init=list,
            step=lambda acc, row: acc + [row[1]],
            final=lambda key, acc: (key, max(acc)),
        )
        assert sorted(op.execute()) == [("a", 5), ("b", 2), ("c", 4)]

    def test_empty_input(self):
        op = count_aggregate(ListSource([]), group_key=lambda r: r)
        assert op.execute() == []

    def test_single_group(self):
        op = count_aggregate(ListSource([1, 1, 1]), group_key=lambda r: "all")
        assert op.execute() == [("all", 3)]

    def test_reopen(self):
        op = count_aggregate(ListSource([1, 2]), group_key=lambda r: r)
        assert len(op.execute()) == 2
        assert len(op.execute()) == 2
