"""Tests for scan operators, including the TID-scan baseline."""

import pytest

from repro.errors import PlanError
from repro.storage.btree import BTree
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.oid import Oid
from repro.storage.record import ObjectRecord
from repro.volcano.iterator import ListSource
from repro.volcano.scan import FileScan, IndexScan, StoreScan, TidScan


class TestFileScan:
    def test_scans_in_file_order(self):
        disk = SimulatedDisk()
        heap = HeapFile(disk, BufferManager(disk))
        payloads = [f"r{i}".encode() for i in range(5)]
        for p in payloads:
            heap.append(p)
        rows = FileScan(heap).execute()
        assert [record for _rid, record in rows] == payloads

    def test_decode_hook(self):
        disk = SimulatedDisk()
        heap = HeapFile(disk, BufferManager(disk))
        heap.append(b"42")
        rows = FileScan(heap, decode=lambda rid, data: int(data)).execute()
        assert rows == [42]


class TestIndexScan:
    def make_index(self):
        disk = SimulatedDisk()
        tree = BTree(disk, BufferManager(disk), max_leaf_keys=4, max_internal_keys=4)
        for key in range(20):
            tree.insert(key, key.to_bytes(10, "big"))
        return tree

    def test_full_scan_key_order(self):
        rows = IndexScan(self.make_index()).execute()
        assert [key for key, _ in rows] == list(range(20))

    def test_range(self):
        rows = IndexScan(self.make_index(), low=5, high=8).execute()
        assert [key for key, _ in rows] == [5, 6, 7, 8]

    def test_decode(self):
        rows = IndexScan(
            self.make_index(), low=3, high=3,
            decode=lambda k, v: int.from_bytes(v, "big"),
        ).execute()
        assert rows == [3]

    def test_bad_range(self):
        with pytest.raises(PlanError):
            IndexScan(self.make_index(), low=9, high=2)


class TestTidScan:
    def populate(self, store, n=30):
        extent = store.disk.allocate(-(-n // 9))
        oids = []
        for serial in range(n):
            oid = Oid(1, serial + 1)
            page = extent.start + serial // 9
            store.store_at(oid, ObjectRecord(ints=[serial, 0, 0, 0]), page)
            oids.append(oid)
        store.disk.reset_stats()
        return oids

    def test_input_order(self, store):
        oids = self.populate(store)
        shuffled = list(reversed(oids))
        rows = TidScan(ListSource(shuffled), store, order="input").execute()
        assert [oid for oid, _ in rows] == shuffled

    def test_sorted_order_fetches_by_page(self, store):
        oids = self.populate(store)
        shuffled = list(reversed(oids))
        scan = TidScan(ListSource(shuffled), store, order="sorted")
        rows = scan.execute()
        pages = [store.page_of(oid) for oid, _ in rows]
        assert pages == sorted(pages)

    def test_sorted_reduces_seeks(self, store):
        """Section 2: sorting the pointer set avoids unclustered-scan seeks."""
        import random

        oids = self.populate(store, n=90)
        rng = random.Random(0)
        shuffled = list(oids)
        rng.shuffle(shuffled)

        TidScan(ListSource(shuffled), store, order="input").execute()
        naive_seek = store.disk.stats.read_seek_total

        store.buffer.drop_clean()
        store.disk.reset_stats()
        TidScan(ListSource(shuffled), store, order="sorted").execute()
        sorted_seek = store.disk.stats.read_seek_total
        assert sorted_seek < naive_seek

    def test_rejects_non_oid_input(self, store):
        scan = TidScan(ListSource([1, 2, 3]), store)
        with pytest.raises(PlanError):
            scan.execute()

    def test_unknown_order(self, store):
        with pytest.raises(PlanError):
            TidScan(ListSource([]), store, order="elevator")

    def test_records_come_back_decoded(self, store):
        oids = self.populate(store, n=5)
        rows = TidScan(ListSource(oids), store).execute()
        assert [record.ints[0] for _oid, record in rows] == list(range(5))


class TestStoreScan:
    def test_scans_extent(self, store):
        extent = store.disk.allocate(2)
        for serial in range(12):
            store.store_at(
                Oid(1, serial + 1),
                ObjectRecord(ints=[serial, 0, 0, 0]),
                extent.start + serial // 9,
            )
        rows = StoreScan(store, extent).execute()
        assert len(rows) == 12
        assert [record.ints[0] for _oid, record in rows] == list(range(12))
