"""Tests for filter / project / limit / distinct."""

import pytest

from repro.errors import PlanError
from repro.volcano.filters import Distinct, Filter, Limit, Project
from repro.volcano.iterator import ListSource


class TestFilter:
    def test_keeps_matching_rows(self):
        op = Filter(ListSource(range(10)), lambda n: n % 2 == 0)
        assert op.execute() == [0, 2, 4, 6, 8]

    def test_counts_and_selectivity(self):
        op = Filter(ListSource(range(10)), lambda n: n < 3)
        op.execute()
        assert op.seen == 10
        assert op.passed == 3
        assert op.observed_selectivity == pytest.approx(0.3)

    def test_selectivity_before_input(self):
        op = Filter(ListSource([]), lambda n: True)
        op.execute()
        assert op.observed_selectivity == 0.0

    def test_reopen_resets_counts(self):
        op = Filter(ListSource(range(4)), lambda n: True)
        op.execute()
        op.execute()
        assert op.seen == 4


class TestProject:
    def test_transforms_rows(self):
        op = Project(ListSource([1, 2]), lambda n: n * 10)
        assert op.execute() == [10, 20]

    def test_composes(self):
        plan = Project(
            Filter(ListSource(range(6)), lambda n: n % 2 == 1),
            lambda n: n * n,
        )
        assert plan.execute() == [1, 9, 25]


class TestLimit:
    def test_caps_output(self):
        assert Limit(ListSource(range(100)), 3).execute() == [0, 1, 2]

    def test_zero_limit(self):
        assert Limit(ListSource(range(5)), 0).execute() == []

    def test_limit_larger_than_input(self):
        assert Limit(ListSource(range(2)), 10).execute() == [0, 1]

    def test_negative_rejected(self):
        with pytest.raises(PlanError):
            Limit(ListSource([]), -1)

    def test_stops_pulling_from_child(self):
        pulled = []

        def gen():
            for n in range(100):
                pulled.append(n)
                yield n

        from repro.volcano.iterator import GeneratorSource

        Limit(GeneratorSource(gen), 2).execute()
        assert len(pulled) == 2


class TestDistinct:
    def test_removes_duplicates(self):
        op = Distinct(ListSource([1, 2, 1, 3, 2]))
        assert op.execute() == [1, 2, 3]

    def test_key_function(self):
        op = Distinct(
            ListSource([(1, "a"), (1, "b"), (2, "c")]), key=lambda r: r[0]
        )
        assert op.execute() == [(1, "a"), (2, "c")]

    def test_reopen_resets_seen(self):
        op = Distinct(ListSource([1, 1]))
        assert op.execute() == [1]
        assert op.execute() == [1]
