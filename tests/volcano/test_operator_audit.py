"""Static audit: every Volcano operator class is registered everywhere.

The conformance harness only audits operators someone remembered to
list in ``OPERATOR_FACTORIES``, and ``explain`` only names operators
whose ``describe`` keeps its class name — neither failure is caught
when a new operator lands without the bookkeeping.  Mirroring the
trace-KINDS audit, this walks the AST of every module under
``src/repro/volcano``, collects the concrete :class:`VolcanoIterator`
subclasses, and fails if any is missing from ``repro.volcano.__all__``,
the lifecycle-conformance registry, or the ``explain()`` rendering.
"""

from __future__ import annotations

import ast
import importlib
import inspect
from pathlib import Path

import repro.volcano
from repro.volcano.iterator import VolcanoIterator
from repro.volcano.plan import describe_operator, walk_plan

from test_conformance import OPERATOR_FACTORIES

VOLCANO_SRC = Path(repro.volcano.__file__).parent


def operator_classes():
    """name -> class, for every concrete operator defined in volcano/."""
    classes = {}
    for path in sorted(VOLCANO_SRC.glob("*.py")):
        if path.name == "__init__.py":
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        module = importlib.import_module(f"repro.volcano.{path.stem}")
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            obj = getattr(module, node.name, None)
            if (
                inspect.isclass(obj)
                and issubclass(obj, VolcanoIterator)
                and obj is not VolcanoIterator
                and not inspect.isabstract(obj)
                and obj.__module__ == module.__name__
            ):
                classes[node.name] = obj
    return classes


def audited_instances():
    """One representative instance per operator class the registry covers.

    Factories may return composed plans (e.g. the component filter over
    the assembly operator), so the whole plan tree counts as coverage.
    """
    instances = {}
    for factory in OPERATOR_FACTORIES.values():
        for _depth, operator in walk_plan(factory()):
            instances.setdefault(type(operator), operator)
    return instances


class TestOperatorAudit:
    def test_finds_the_operators(self):
        names = set(operator_classes())
        assert {"AssemblyOperator", "ComponentFilter", "ParallelAssembly"} <= names
        assert len(names) >= 18

    def test_every_operator_is_exported(self):
        missing = sorted(
            name
            for name in operator_classes()
            if name not in repro.volcano.__all__
        )
        assert not missing, (
            f"operator classes not exported from repro.volcano: {missing}"
        )

    def test_every_operator_is_conformance_audited(self):
        covered = audited_instances()
        missing = sorted(
            name
            for name, cls in operator_classes().items()
            if cls not in covered
        )
        assert not missing, (
            f"operator classes with no OPERATOR_FACTORIES instance "
            f"(add one to test_conformance.py): {missing}"
        )

    def test_every_operator_renders_its_class_in_explain(self):
        covered = audited_instances()
        wrong = {
            name: describe_operator(covered[cls])
            for name, cls in operator_classes().items()
            if cls in covered and name not in describe_operator(covered[cls])
        }
        assert not wrong, (
            f"describe() output hides the operator class name: {wrong}"
        )
