"""Tests for the Database façade."""

import pytest

from repro import Database
from repro.cluster.policies import IntraObjectClustering
from repro.errors import ReproError
from repro.workloads.person import (
    FATHER_SLOT,
    RESIDENCE_SLOT,
    lives_close_to_father,
    person_template,
)


def build_people_db(n=40, buffer_capacity=None, clustering="inter-object"):
    from repro.workloads.person import generate_people

    source = generate_people(n, seed=31)
    database = Database(buffer_capacity=buffer_capacity)
    # The workload carries its own registry; load the raw objects.
    policy_kwargs = {}
    if clustering == "inter-object":
        policy_kwargs["cluster_pages"] = 64
    database.load(
        source.complex_objects,
        clustering=clustering,
        shared=source.shared_pool,
        **policy_kwargs,
    )
    return source, database


class TestLoad:
    def test_load_by_policy_name(self):
        _source, database = build_people_db()
        assert database.layout.object_count > 0
        assert len(database.roots) == 40

    def test_load_twice_rejected(self):
        source, database = build_people_db()
        with pytest.raises(ReproError):
            database.load(source.complex_objects)

    def test_unknown_policy_rejected(self):
        database = Database()
        with pytest.raises(ReproError):
            database.load([], clustering="diagonal")

    def test_policy_instance_accepted(self):
        from repro.workloads.person import generate_people

        source = generate_people(5, seed=1)
        database = Database()
        database.load(
            source.complex_objects,
            clustering=IntraObjectClustering(),
            shared=source.shared_pool,
        )
        assert len(database.roots) == 5

    def test_builder_load_validates(self):
        database = Database()
        builder = database.builder()
        builder.define_type("Solo", int_fields=("x",))
        root = builder.new_object("Solo", ints={"x": 1})
        builder.complex_object(root)
        database.load(builder, clustering="unclustered")
        assert len(database.roots) == 1

    def test_unloaded_access_rejected(self):
        database = Database()
        with pytest.raises(ReproError):
            _ = database.roots


class TestQuerying:
    def test_query_runs_through_optimizer(self):
        source, database = build_people_db()
        results = database.query(person_template()).run()
        assert len(results) == 40
        for cobj in results:
            cobj.verify_swizzled()

    def test_residual_filter_matches_oracle(self):
        source, database = build_people_db()
        results = (
            database.query(person_template())
            .where(lives_close_to_father)
            .run()
        )
        assert len(results) == sum(source.close_to_father)

    def test_component_predicate_pushdown(self):
        from repro.core.predicates import Predicate

        source, database = build_people_db()
        in_city_zero = Predicate(
            "city == 0", lambda r: r.ints[0] == 0, selectivity=0.05
        )
        bound = database.query(person_template()).where_component(
            "residence", in_city_zero
        )
        plan = bound.plan()
        assert plan.choice.scheduler == "adaptive"
        results = plan.execute()
        assert all(
            c.root.follow(RESIDENCE_SLOT).ints[0] == 0 for c in results
        )

    def test_explain(self):
        _source, database = build_people_db()
        text = database.query(person_template()).explain()
        assert "Assembly" in text and "scheduler=" in text

    def test_over_subset_of_roots(self):
        _source, database = build_people_db()
        subset = database.roots[:7]
        results = database.query(person_template()).over(subset).run()
        assert {c.root_oid for c in results} == set(subset)

    def test_projection(self):
        _source, database = build_people_db()
        ages = (
            database.query(person_template())
            .select(lambda c: c.root.ints[0])
            .run()
        )
        assert len(ages) == 40
        assert all(isinstance(age, int) for age in ages)


class TestWindowFromBuffer:
    def test_restricted_buffer_limits_window(self):
        _source, database = build_people_db(buffer_capacity=64)
        plan = database.query(person_template()).plan()
        # person template has 4 nodes: 3*(W-1)+4 <= 64-8 => W <= 18
        assert plan.choice.window_size == 18
        assert plan.execute()


class TestPersistence:
    def test_save_and_open_roundtrip(self, tmp_path):
        source, database = build_people_db()
        oracle = (
            database.query(person_template())
            .where(lives_close_to_father)
            .run()
        )
        database.save(tmp_path / "people.db")

        reopened = Database.open(tmp_path / "people.db")
        assert len(reopened.roots) == 40
        results = (
            reopened.query(person_template())
            .where(lives_close_to_father)
            .run()
        )
        assert {c.root_oid for c in results} == {c.root_oid for c in oracle}

    def test_save_unloaded_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            Database().save(tmp_path / "empty.db")

    def test_open_applies_buffer_capacity(self, tmp_path):
        _source, database = build_people_db()
        database.save(tmp_path / "people.db")
        reopened = Database.open(tmp_path / "people.db", buffer_capacity=64)
        assert reopened.buffer.capacity == 64
        plan = reopened.query(person_template()).plan()
        assert plan.choice.window_size == 18  # sized from the buffer

    def test_corrupt_sidecar_rejected(self, tmp_path):
        _source, database = build_people_db()
        database.save(tmp_path / "people.db")
        sidecar = tmp_path / "people.db.roots"
        sidecar.write_bytes(sidecar.read_bytes() + b"xx")
        with pytest.raises(ReproError):
            Database.open(tmp_path / "people.db")


class TestMeasurement:
    def test_reset_between_queries(self):
        _source, database = build_people_db()
        database.query(person_template()).run()
        first = database.avg_seek_per_read
        assert first > 0
        database.reset_measurement()
        assert database.avg_seek_per_read == 0.0

    def test_manual_assembly(self):
        _source, database = build_people_db()
        op = database.assemble(
            person_template(), window_size=4, scheduler="depth-first"
        )
        assert len(op.execute()) == 40
