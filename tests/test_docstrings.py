"""Documentation discipline: every public item carries a docstring.

Walks the installed ``repro`` package and asserts that every public
module, class, function, and method is documented.  This keeps the
"doc comments on every public item" guarantee from silently eroding.
"""

import importlib
import inspect
import pkgutil

import repro

IGNORED_METHOD_NAMES = {
    # dataclass/namedtuple machinery and dunder noise.
    "__init__", "__repr__", "__str__", "__eq__", "__hash__",
    "__post_init__", "__iter__", "__len__", "__contains__",
    "__getnewargs__", "__replace__",
}


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


def test_every_module_documented():
    undocumented = [
        module.__name__
        for module in iter_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in iter_modules():
        for name, member in public_members(module):
            if not (member.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_every_public_method_documented():
    """Method docs may be inherited: the ABC documents the contract."""
    missing = []
    for module in iter_modules():
        for class_name, cls in public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, method in vars(cls).items():
                if name.startswith("_") or name in IGNORED_METHOD_NAMES:
                    continue
                if isinstance(method, property):
                    resolved = method.fget
                else:
                    resolved = getattr(cls, name, None)
                if not callable(resolved):
                    continue
                if not (inspect.getdoc(resolved) or "").strip():
                    missing.append(
                        f"{module.__name__}.{class_name}.{name}"
                    )
    assert not missing, f"undocumented public methods: {missing}"
