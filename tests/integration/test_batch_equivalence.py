"""Batched assembly is an optimization, never a semantic change.

The batch engine may reorder *physical* page fetches (coalescing,
contiguous runs, resident-first service) and therefore the order in
which complete objects surface, but must emit byte-identical assembled
complex objects with the same logical fetch counts as the unbatched
reference loop — across every scheduler and clustering policy, and
through predicate aborts that land while sibling references from the
same page are in flight.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.harness import ExperimentConfig, build_assembly, build_layout
from repro.core.assembly import Assembly
from repro.volcano.iterator import ListSource
from repro.workloads.acob import make_template, payload_predicate

SCHEDULERS = ("depth-first", "breadth-first", "elevator", "cscan", "adaptive")
CLUSTERINGS = ("inter-object", "intra-object", "unclustered")


def fingerprint_object(obj):
    """Canonical recursive form of one assembled storage object."""
    return (
        obj.oid,
        obj.ints,
        obj.ref_oids,
        tuple(
            (slot, fingerprint_object(child))
            for slot, child in sorted(obj.children.items())
        ),
    )


def run(config: ExperimentConfig):
    """(emitted fingerprints keyed by root, fetches) of one full run."""
    database, layout = build_layout(config)
    operator = build_assembly(config, database, layout)
    emitted = sorted(
        (row.root_oid, fingerprint_object(row.root))
        for row in operator.rows()
    )
    assert len({root for root, _ in emitted}) == len(emitted)
    assert layout.store.buffer.pinned_pages == 0
    return emitted, operator.stats.fetches, operator.stats.aborted


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("clustering", CLUSTERINGS)
def test_batched_output_identical(scheduler, clustering):
    base = ExperimentConfig(
        n_complex_objects=40,
        clustering=clustering,
        scheduler=scheduler,
        window_size=8,
    )
    reference = run(base)
    for batch in (2, 4):
        assert run(replace(base, batch_pages=batch)) == reference


@pytest.mark.parametrize("scheduler", ("elevator", "adaptive"))
def test_batched_output_identical_selective(scheduler):
    base = ExperimentConfig(
        n_complex_objects=60,
        clustering="intra-object",
        scheduler=scheduler,
        window_size=10,
        selectivity=0.5,
    )
    reference = run(base)
    assert reference[2] > 0  # the workload actually aborts objects
    for batch in (2, 4):
        assert run(replace(base, batch_pages=batch)) == reference


def test_abort_mid_batch_skips_inflight_siblings():
    """A predicate abort retracts same-page siblings already batched.

    Eager (non-deferred) queuing puts both children of a root in the
    pool at once; intra-object clustering puts them on the same page,
    so one pop_batch carries the predicate node *and* its sibling.
    When the predicate fails, the sibling is already in flight and must
    be dropped by the per-reference liveness re-check — without leaking
    the prefetch pins.
    """

    def eager_run(batch_pages):
        config = ExperimentConfig(
            n_complex_objects=60,
            clustering="intra-object",
            scheduler="elevator",
            window_size=10,
            selectivity=0.4,
        )
        database, layout = build_layout(config)
        template = make_template(
            database,
            predicate_position=config.predicate_position,
            predicate=payload_predicate(0.4),
        )
        operator = Assembly(
            ListSource(layout.root_order),
            layout.store,
            template,
            window_size=config.window_size,
            scheduler="elevator",
            selective=False,
            batch_pages=batch_pages,
        )
        emitted = sorted(
            (row.root_oid, fingerprint_object(row.root))
            for row in operator.rows()
        )
        assert layout.store.buffer.pinned_pages == 0
        return emitted, operator.stats

    plain_emitted, plain_stats = eager_run(1)
    batch_emitted, batch_stats = eager_run(4)
    assert plain_stats.aborted > 0
    assert batch_emitted == plain_emitted
    assert batch_stats.aborted == plain_stats.aborted
    # Eager queuing wastes fetches on doomed objects; the batch carries
    # the predicate node alongside its siblings, so the abort lands no
    # later than unbatched and never costs extra fetches.
    assert batch_stats.fetches <= plain_stats.fetches
    # The batch path really ran (coalesced prefetches happened).
    assert batch_stats.prefetch_batches > 0


def test_batch_equivalence_under_bounded_buffer():
    base = ExperimentConfig(
        n_complex_objects=60,
        clustering="intra-object",
        scheduler="elevator",
        window_size=10,
        buffer_capacity=24,
    )
    reference = run(base)
    for batch in (2, 4):
        assert run(replace(base, batch_pages=batch)) == reference
