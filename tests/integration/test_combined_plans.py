"""Integration tests combining many subsystems in single plans."""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering
from repro.core.assembly import Assembly
from repro.storage.btree import BTree
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.filters import Project
from repro.volcano.iterator import ListSource
from repro.volcano.mergejoin import MergeJoin
from repro.volcano.scan import IndexScan
from repro.volcano.sort import ExternalSort
from repro.storage.oid import Oid
from repro.workloads.acob import generate_acob, make_template


@pytest.fixture
def world():
    db = generate_acob(60, seed=14)
    disk = SimulatedDisk()
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects,
        store,
        InterObjectClustering(cluster_pages=32),
        shared=db.shared_pool,
    )
    return db, store, layout


def test_bulk_loaded_index_feeds_assembly(world):
    """Bulk-build a root index, range-scan it, assemble the range."""
    db, store, layout = world
    index = BTree(store.disk, store.buffer, unique=True)
    index.bulk_load(
        sorted(
            (i, root.encode()) for i, root in enumerate(layout.roots)
        )
    )
    index.check_invariants()
    source = Project(
        IndexScan(index, low=20, high=39),
        lambda row: Oid.decode(row[1]),
    )
    op = Assembly(source, store, make_template(db), window_size=8)
    emitted = op.execute()
    assert {c.root_oid for c in emitted} == set(layout.roots[20:40])


def test_merge_join_over_two_assemblies(world):
    """Self-join assembled objects on a traversed attribute, via
    sort + merge join — four operators deep, two assembly pipelines."""
    db, store, layout = world

    def assembled_stream():
        return Project(
            Assembly(
                ListSource(layout.root_order),
                store,
                make_template(db),
                window_size=8,
            ),
            # (bucketed payload of the left-left leaf, root id)
            lambda c: (c.root.follow(0, 0).ints[3] % 7, c.root.ints[0]),
        )

    left = ExternalSort(assembled_stream(), key=lambda r: r[0])
    right = ExternalSort(assembled_stream(), key=lambda r: r[0])
    join = MergeJoin(
        left, right, left_key=lambda r: r[0], right_key=lambda r: r[0]
    )
    pairs = join.execute()

    # Oracle: bucket sizes from the generator's payload record.
    buckets = {}
    for payloads in db.payloads:
        bucket = payloads[3] % 7
        buckets[bucket] = buckets.get(bucket, 0) + 1
    expected_pairs = sum(count * count for count in buckets.values())
    assert len(pairs) == expected_pairs
    assert all(l[0] == r[0] for l, r in pairs)


def test_database_facade_with_sampled_statistics():
    """The full data-driven loop through the Database facade."""
    from repro import Database
    from repro.query import annotate_from_sample, retrieve
    from repro.workloads.acob import PAYLOAD_RANGE

    db = generate_acob(120, seed=15)
    database = Database()
    database.load(
        db.complex_objects, clustering="unclustered", shared=db.shared_pool
    )
    bound = int(0.25 * PAYLOAD_RANGE)
    annotated = annotate_from_sample(
        make_template(db),
        database.store,
        database.roots,
        predicates={"n2": lambda r: r.ints[3] < bound},
        sample_size=60,
    )
    database.reset_measurement()
    results = database.optimize(retrieve(annotated)).execute()
    expected = sum(1 for payloads in db.payloads if payloads[2] < bound)
    assert len(results) == expected
