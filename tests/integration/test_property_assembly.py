"""Property-based end-to-end test: assembly reconstructs arbitrary graphs.

Hypothesis generates random tree-shaped complex-object databases
(random fan-out, random depths, random null slots), lays them out under
a random clustering policy, assembles with a random scheduler and
window, and checks the operator's fundamental contract:

* every complex object is emitted exactly once,
* every template-followed reference is swizzled to the right object,
* every object's integer state survives the disk round trip,
* all buffer pins are released.
"""

from __future__ import annotations

import random
from typing import Dict, List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.layout import layout_database
from repro.cluster.policies import (
    InterObjectClustering,
    IntraObjectClustering,
    Unclustered,
)
from repro.core.assembly import Assembly
from repro.core.template import Template, TemplateNode
from repro.objects.builder import GraphBuilder
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource


@st.composite
def tree_shapes(draw):
    """A random template shape: nested dict of slot -> subtree."""

    def subtree(depth):
        if depth >= 3:
            return {}
        n_children = draw(st.integers(0, 3 if depth == 0 else 2))
        slots = draw(
            st.lists(
                st.integers(0, 7),
                min_size=n_children,
                max_size=n_children,
                unique=True,
            )
        )
        return {slot: subtree(depth + 1) for slot in slots}

    return subtree(0)


def shape_size(shape) -> int:
    return 1 + sum(shape_size(child) for child in shape.values())


def build_template(shape) -> Template:
    counter = [0]

    def build(node_shape) -> TemplateNode:
        label = f"t{counter[0]}"
        counter[0] += 1
        node = TemplateNode(label, type_name="Node")
        for slot, child_shape in sorted(node_shape.items()):
            node.attach(slot, build(child_shape))
        return node

    return Template(build(shape)).finalize()


def build_database(shape, n_objects: int, null_rate: float, rng: random.Random):
    builder = GraphBuilder()
    builder.define_type(
        "Node",
        int_fields=("marker",),
        ref_fields=tuple(f"r{i}" for i in range(8)),
    )
    expected: List[Dict[str, int]] = []

    def build_object(node_shape, markers):
        refs = {}
        for slot, child_shape in sorted(node_shape.items()):
            if rng.random() < null_rate:
                continue  # data shallower than the template
            child = build_object(child_shape, markers)
            refs[f"r{slot}"] = child.oid
        marker = rng.randrange(1_000_000)
        obj = builder.new_object("Node", ints={"marker": marker}, refs=refs)
        markers[obj.oid] = marker
        return obj

    for _ in range(n_objects):
        markers: Dict = {}
        root = build_object(shape, markers)
        components = [builder.get(oid) for oid in markers if oid != root.oid]
        builder.complex_object(root, components)
        expected.append(markers)
    builder.validate()
    return builder, expected


@settings(max_examples=25, deadline=None)
@given(
    shape=tree_shapes(),
    n_objects=st.integers(1, 12),
    null_rate=st.floats(0.0, 0.5),
    scheduler=st.sampled_from(["depth-first", "breadth-first", "elevator"]),
    window=st.integers(1, 6),
    policy_name=st.sampled_from(["inter", "intra", "unclustered"]),
    seed=st.integers(0, 1000),
)
def test_assembly_reconstructs_random_graphs(
    shape, n_objects, null_rate, scheduler, window, policy_name, seed
):
    rng = random.Random(seed)
    builder, expected = build_database(shape, n_objects, null_rate, rng)
    template = build_template(shape)

    store = ObjectStore(SimulatedDisk())
    if policy_name == "inter":
        policy = InterObjectClustering(cluster_pages=max(4, shape_size(shape) * n_objects // 9 + 1))
    elif policy_name == "intra":
        policy = IntraObjectClustering()
    else:
        policy = Unclustered()
    layout = layout_database(
        builder.complex_objects, store, policy, seed=seed
    )

    op = Assembly(
        ListSource(layout.root_order),
        store,
        template,
        window_size=window,
        scheduler=scheduler,
    )
    emitted = {c.root_oid: c for c in op.execute()}

    assert len(emitted) == n_objects
    for markers, cobj_def in zip(expected, builder.complex_objects):
        assembled = emitted[cobj_def.root]
        assembled.verify_swizzled()
        for obj in assembled.scan():
            assert obj.ints[0] == markers[obj.oid]
    assert store.buffer.pinned_pages == 0
