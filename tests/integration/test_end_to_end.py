"""Integration tests: full pipelines across storage, Volcano, assembly."""

import pytest

from repro.cluster.layout import layout_database
from repro.cluster.policies import (
    InterObjectClustering,
    IntraObjectClustering,
    Unclustered,
)
from repro.core.assembly import Assembly
from repro.storage.btree import BTree
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore
from repro.volcano.aggregate import count_aggregate
from repro.volcano.filters import Filter, Project
from repro.volcano.iterator import ListSource
from repro.volcano.scan import IndexScan
from repro.workloads.acob import generate_acob, make_template


def make_layout(policy_name, n=40, sharing=0.0, seed=2):
    db = generate_acob(n, sharing=sharing, seed=seed)
    store = ObjectStore(SimulatedDisk())
    if policy_name == "inter":
        policy = InterObjectClustering(
            cluster_pages=32, disk_order=db.type_ids_depth_first()
        )
    elif policy_name == "intra":
        policy = IntraObjectClustering()
    else:
        policy = Unclustered()
    layout = layout_database(
        db.complex_objects, store, policy, shared=db.shared_pool
    )
    return db, store, layout


@pytest.mark.parametrize("policy", ["inter", "intra", "unclustered"])
@pytest.mark.parametrize("scheduler", ["depth-first", "breadth-first", "elevator"])
def test_assembly_correct_under_every_policy_and_scheduler(policy, scheduler):
    db, store, layout = make_layout(policy)
    op = Assembly(
        ListSource(layout.root_order),
        store,
        make_template(db),
        window_size=8,
        scheduler=scheduler,
    )
    emitted = op.execute()
    assert len(emitted) == 40
    for cobj in emitted:
        cobj.verify_swizzled()
    # Unbounded buffer: every data page is read at most once from disk.
    assert store.buffer.stats.re_reads == 0


def test_reads_equal_touched_pages_with_unbounded_buffer():
    """Only the *order* differs between schedulers; with no replacement
    the set of pages read is identical, so total reads match."""
    reads = {}
    for scheduler in ("depth-first", "breadth-first", "elevator"):
        db, store, layout = make_layout("inter", n=60)
        op = Assembly(
            ListSource(layout.root_order), store, make_template(db),
            window_size=10, scheduler=scheduler,
        )
        op.execute()
        reads[scheduler] = store.disk.stats.reads
    assert len(set(reads.values())) == 1


def test_index_scan_feeds_assembly():
    """Roots come from a B-tree index, as in a real access plan."""
    db, store, layout = make_layout("unclustered", n=25)
    index = BTree(store.disk, store.buffer, unique=True, name="roots-by-id")
    for index_key, root in enumerate(layout.roots):
        index.insert(index_key, root.encode())
    source = Project(
        IndexScan(index, low=5, high=14),
        lambda row: Oid.decode(row[1]),
    )
    op = Assembly(source, store, make_template(db), window_size=4)
    emitted = op.execute()
    assert [c.root_oid for c in emitted] and len(emitted) == 10
    assert {c.root_oid for c in emitted} == set(layout.roots[5:15])


def test_filter_aggregate_over_assembled_objects():
    """A query plan over assembled complex objects: selection on a
    traversed field plus aggregation, all in memory."""
    db, store, layout = make_layout("intra", n=50)
    plan = count_aggregate(
        Filter(
            Assembly(
                ListSource(layout.root_order),
                store,
                make_template(db),
                window_size=10,
                scheduler="elevator",
            ),
            # Traverse swizzled pointers: left-left leaf payload parity.
            lambda cobj: cobj.root.follow(0, 0).ints[3] % 2 == 0,
        ),
        group_key=lambda cobj: cobj.root.ints[1],  # level (always 0)
    )
    rows = plan.execute()
    expected = sum(
        1 for payloads in db.payloads if payloads[3] % 2 == 0
    )
    assert rows == [(0, expected)] if expected else rows == []


def test_restricted_buffer_still_correct():
    """With a small buffer the operator re-reads but never corrupts."""
    db, store_unused, layout_unused = make_layout("inter", n=40)
    disk = SimulatedDisk()
    store = ObjectStore(disk, BufferManager(disk, capacity=24))
    layout = layout_database(
        db.complex_objects,
        store,
        InterObjectClustering(cluster_pages=32, disk_order=db.type_ids_depth_first()),
        shared=db.shared_pool,
    )
    op = Assembly(
        ListSource(layout.root_order), store, make_template(db),
        window_size=2, scheduler="elevator",
    )
    emitted = op.execute()
    assert len(emitted) == 40
    for cobj in emitted:
        cobj.verify_swizzled()
    assert store.buffer.stats.re_reads > 0  # the buffer really was tight


def test_seek_metric_consistency():
    """avg_seek * reads == total seek distance, and the per-read
    history sums to the same total."""
    db, store, layout = make_layout("unclustered", n=30)
    op = Assembly(
        ListSource(layout.root_order), store, make_template(db),
        window_size=5, scheduler="elevator",
    )
    op.execute()
    stats = store.disk.stats
    assert stats.avg_seek_per_read * stats.reads == pytest.approx(
        stats.read_seek_total
    )
    assert sum(stats.read_seeks) == stats.read_seek_total
    assert len(stats.read_seeks) == stats.reads
