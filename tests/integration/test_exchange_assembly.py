"""Exchange-style partitioned assembly (the Section 7 plan shape)."""

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering
from repro.core.assembly import Assembly
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.exchange import PartitionedExecute
from repro.workloads.acob import generate_acob, make_template


def test_partitioned_execute_runs_assembly_fragments():
    """Assembly slots into exchange's plan shape like any operator —
    'parallelism is encapsulated in Volcano … it can be used for all
    existing operators without changing their code'."""
    db = generate_acob(36, seed=18)
    disk = SimulatedDisk()
    store = ObjectStore(disk)
    layout = layout_database(
        db.complex_objects,
        store,
        InterObjectClustering(cluster_pages=32),
        shared=db.shared_pool,
    )

    plan = PartitionedExecute(
        rows=layout.root_order,
        n_partitions=3,
        fragment=lambda source: Assembly(
            source, store, make_template(db), window_size=4
        ),
    )
    emitted = plan.execute()
    assert len(emitted) == 36
    assert {c.root_oid for c in emitted} == set(layout.roots)
    for cobj in emitted:
        cobj.verify_swizzled()
    assert store.buffer.pinned_pages == 0


def test_partitioned_assembly_shares_nothing_across_fragments():
    """Each fragment has its own shared table: partitioning reintroduces
    duplicate loads of shared components — Section 5's reason three for
    caring about sharing under partitioned parallelism."""
    db = generate_acob(30, sharing=0.25, seed=19)

    def run(n_partitions):
        disk = SimulatedDisk()
        store = ObjectStore(disk)
        layout = layout_database(
            db.complex_objects,
            store,
            InterObjectClustering(cluster_pages=32),
            shared=db.shared_pool,
        )
        operators = []

        def fragment(source):
            op = Assembly(
                source, store, make_template(db, sharing=0.25), window_size=4
            )
            operators.append(op)
            return op

        plan = PartitionedExecute(
            rows=layout.root_order, n_partitions=n_partitions,
            fragment=fragment,
        )
        emitted = plan.execute()
        assert len(emitted) == 30
        return sum(op.stats.fetches for op in operators)

    single = run(1)
    partitioned = run(3)
    # Shared components referenced from several partitions load once
    # per partition instead of once overall.
    assert partitioned >= single


def test_indexed_fragments_bind_partition_local_replicas():
    """``fragment(source, index)`` gives each partition its own store.

    The exchange operator passes the partition number to fragments that
    accept it, so shard-local plans can read from their own replica —
    no shared disk, every replica actually serving pages."""
    from repro.fabric.parallel import build_replica_partitions
    from repro.volcano.assembly import AssemblyOperator

    db = generate_acob(24, seed=21)
    disk = SimulatedDisk()
    store = ObjectStore(disk)
    layout = layout_database(
        db.complex_objects,
        store,
        InterObjectClustering(cluster_pages=32),
        shared=db.shared_pool,
    )
    replicas = build_replica_partitions(layout, 3, costed=False)

    seen_indexes = []

    def fragment(source, index):
        seen_indexes.append(index)
        return AssemblyOperator(
            source, replicas[index].store, make_template(db), window_size=2
        )

    plan = PartitionedExecute(
        rows=layout.root_order, n_partitions=3, fragment=fragment
    )
    emitted = plan.execute()
    assert len(emitted) == 24
    assert seen_indexes == [0, 1, 2]
    assert {c.root_oid for c in emitted} == set(layout.root_order)
    for replica in replicas:
        assert replica.store.disk.stats.reads > 0
    assert store.disk.stats.reads == 0  # the original store was not touched
