#!/usr/bin/env python3
"""Scheduling playground: every scheduler × clustering × window size.

A compact interactive version of the paper's Section 6.3 sweep.  Edit
the parameter lists below (or pass a database size) to explore how the
three scheduling algorithms respond to data placement — the core
trade-off the assembly operator exploits.

Run:  python examples/scheduling_playground.py [n_complex_objects]
"""

import sys

from repro.bench import ExperimentConfig, run_experiment

SCHEDULERS = ("depth-first", "breadth-first", "elevator")
CLUSTERINGS = ("inter-object", "intra-object", "unclustered")
WINDOWS = (1, 10, 50)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    print(f"average seek distance per read (pages), {n} complex objects")
    print()
    header = f"{'clustering':>14s} {'window':>7s}" + "".join(
        f"{s:>16s}" for s in SCHEDULERS
    )
    print(header)
    print("-" * len(header))
    for clustering in CLUSTERINGS:
        for window in WINDOWS:
            cells = []
            for scheduler in SCHEDULERS:
                result = run_experiment(
                    ExperimentConfig(
                        n_complex_objects=n,
                        clustering=clustering,
                        scheduler=scheduler,
                        window_size=window,
                    )
                )
                cells.append(f"{result.avg_seek:16.1f}")
            print(f"{clustering:>14s} {window:>7d}" + "".join(cells))
        print()
    print("Expected shapes (paper Section 6.3):")
    print("  * depth-first is identical at every window (object-at-a-time)")
    print("  * breadth-first thrashes on inter-object clustering")
    print("  * elevator + window >= 50 wins under every clustering")


if __name__ == "__main__":
    main()
