#!/usr/bin/env python3
"""The full Revelation pipeline: Database façade + declarative queries.

The paper's Figure 1 shows queries flowing revealer → object algebra →
optimizer → physical plan → set processor.  This example drives that
pipeline through the library's high-level API:

* a :class:`repro.Database` owns the disk, buffer, store, and catalog;
* ``db.query(template)`` starts a declarative query;
* ``where_component`` predicates are *pushed down* into the assembly
  template by the optimizer (early abort, Section 6.5);
* the optimizer also picks the scheduler (adaptive when predicates
  exist) and sizes the window from the buffer (Section 6.3.3's bound).

Run:  python examples/query_api.py
"""

from repro import Database, Predicate
from repro.workloads.person import (
    RESIDENCE_SLOT,
    generate_people,
    lives_close_to_father,
    person_template,
)

N_PEOPLE = 1500
OREGON_CITIES = frozenset(range(5))


def main() -> None:
    # -- build and load ------------------------------------------------------
    people = generate_people(N_PEOPLE, n_cities=25, seed=7)
    db = Database(buffer_capacity=256)
    db.load(
        people.complex_objects,
        clustering="inter-object",
        shared=people.shared_pool,
        cluster_pages=1024,
    )

    # -- declare the query ------------------------------------------------------
    in_oregon = Predicate(
        name="residence in Oregon",
        fn=lambda record: record.ints[0] in OREGON_CITIES,
        selectivity=len(OREGON_CITIES) / 25,
    )
    query = (
        db.query(person_template())
        .where_component("residence", in_oregon)   # pushed into assembly
        .where(lives_close_to_father)              # residual, in memory
        .select(lambda c: c.root.ints[1])          # person ids
    )

    # -- explain, then run -----------------------------------------------------------
    print("Physical plan:")
    for line in query.explain().splitlines():
        print(f"  {line}")
    print()

    plan = query.plan()
    person_ids = plan.execute()
    stats = plan.assembly.stats

    print(f"Oregonians living in their father's city: {len(person_ids)}")
    print()
    print(f"  optimizer chose:       {plan.choice}")
    print(f"  aborted early:         {stats.aborted} of {N_PEOPLE}")
    print(f"  object fetches:        {stats.fetches} "
          f"(eager would need ~{N_PEOPLE * 4})")
    print(f"  avg seek / read:       {db.avg_seek_per_read:.1f} pages")

    assert plan.choice.scheduler == "adaptive"
    assert stats.fetches < N_PEOPLE * 4


if __name__ == "__main__":
    main()
