#!/usr/bin/env python3
"""Stacked assembly: combining bottom-up and top-down assembly (Fig. 17).

Reproduces the paper's Section 7 construction: Assembly1 assembles all
B (and their D) sub-objects bottom-up; Assembly2 fetches the A and C
objects top-down and links them with the already-assembled sub-objects.

Run:  python examples/stacked_assembly.py
"""

from repro import (
    GraphBuilder,
    ListSource,
    ObjectStore,
    SimulatedDisk,
    StackedAssembly,
    Template,
    TemplateNode,
    layout_database,
)
from repro.cluster import InterObjectClustering

N = 500


def build_database():
    """The paper's Figure 4 objects: A → {B → D, C}."""
    builder = GraphBuilder()
    builder.define_type("A", int_fields=("id",), ref_fields=("b", "c"))
    builder.define_type("B", int_fields=("id",), ref_fields=("d",))
    builder.define_type("C", int_fields=("id",))
    builder.define_type("D", int_fields=("id",))
    for index in range(N):
        d = builder.new_object("D", ints={"id": index})
        b = builder.new_object("B", ints={"id": index}, refs={"d": d.oid})
        c = builder.new_object("C", ints={"id": index})
        a = builder.new_object("A", ints={"id": index}, refs={"b": b.oid, "c": c.oid})
        builder.complex_object(a, [b, c, d])
    builder.validate()
    return builder


def full_template() -> Template:
    a = TemplateNode("A", type_name="A")
    a.child(0, "B", type_name="B").child(0, "D", type_name="D")
    a.child(1, "C", type_name="C")
    return Template(a).finalize()


def subobject_template() -> Template:
    b = TemplateNode("B", type_name="B")
    b.child(0, "D", type_name="D")
    return Template(b).finalize()


def main() -> None:
    builder = build_database()
    store = ObjectStore(SimulatedDisk())
    layout = layout_database(
        builder.complex_objects,
        store,
        InterObjectClustering(cluster_pages=128),
        shared=builder.shared_objects,
    )

    # Assembly1's input: every B root (here taken from the A records'
    # reference fields; a real plan would scan the B extent).
    b_roots = [
        cobj.objects[cobj.root].refs["b"] for cobj in builder.complex_objects
    ]

    stacked = StackedAssembly(
        lower_source=ListSource(b_roots),
        lower_template=subobject_template(),
        upper_source=ListSource(layout.root_order),
        upper_template=full_template(),
        store=store,
        window_size=50,
        scheduler="elevator",
    )

    complete = stacked.execute()
    print(f"Stacked assembly over {N} complex objects (Figure 17):")
    print()
    print(f"  Assembly1 (bottom-up, B→D): {stacked.lower.stats.fetches} fetches")
    print(f"  Assembly2 (top-down, A, C): {stacked.upper.stats.fetches} fetches")
    print(f"  complete complex objects:   {len(complete)}")
    print()

    sample = complete[0]
    sample.verify_swizzled()
    print("  sample object graph (A → B → D, A → C):")
    a = sample.root
    print(f"    A id={a.ints[0]}")
    print(f"      B id={a.follow(0).ints[0]} (linked, pre-assembled)")
    print(f"        D id={a.follow(0, 0).ints[0]}")
    print(f"      C id={a.follow(1).ints[0]} (fetched top-down)")

    total = stacked.lower.stats.fetches + stacked.upper.stats.fetches
    assert total == 4 * N, "each object fetched exactly once across stages"
    print()
    print(f"  every storage object fetched exactly once: {total} == 4 * {N}")


if __name__ == "__main__":
    main()
