#!/usr/bin/env python3
"""Assembling HyperModel-style documents with shared annotations.

The paper's Section 6 names the HyperModel Benchmark as one of the
object-oriented benchmarks "better suited for our system".  This
example assembles documents shaped like HyperModel's aggregation
hierarchy — a fan-out-5 tree of sections, 31 storage objects per
document — whose leaves link into a shared pool of annotation objects.

Two things to watch in the output:

* the shared-component table loads each annotation exactly once, no
  matter how many documents link to it;
* the execution trace (``AssemblyTracer``) shows the interleaving of
  fetches and links — the Figure 5 walkthrough, on real output.

Run:  python examples/hypermodel_documents.py
"""

from repro import (
    Assembly,
    AssemblyTracer,
    InterObjectClustering,
    ListSource,
    ObjectStore,
    SimulatedDisk,
    layout_database,
)
from repro.workloads import generate_hypermodel, hypermodel_template

N_DOCUMENTS = 300
ANNOTATION_POOL = 20


def main() -> None:
    database = generate_hypermodel(
        N_DOCUMENTS,
        annotation_probability=0.6,
        annotation_pool_size=ANNOTATION_POOL,
        seed=99,
    )
    store = ObjectStore(SimulatedDisk())
    layout = layout_database(
        database.complex_objects,
        store,
        InterObjectClustering(cluster_pages=1200),
        shared=database.shared_pool,
    )

    tracer = AssemblyTracer()
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        hypermodel_template(),
        window_size=40,
        scheduler="elevator",
        tracer=tracer,
    )
    documents = operator.execute()

    print(f"Assembled {len(documents)} documents "
          f"({database.sections_per_document()} sections each).")
    print()
    stats = operator.stats
    print(f"  object fetches:     {stats.fetches}")
    print(f"  annotation links:   {stats.shared_links} "
          f"(pool of {ANNOTATION_POOL} loaded once each)")
    print(f"  avg seek / read:    "
          f"{store.disk.stats.avg_seek_per_read:.1f} pages")
    print()

    # Every document's annotations are the *same* Python objects as
    # their pool-mates in other documents.
    identity = {}
    for document in documents:
        for obj in document.scan():
            if obj.node.type_name == "Annotation":
                identity.setdefault(obj.oid, set()).add(id(obj))
    assert all(len(ids) == 1 for ids in identity.values())
    print(f"  distinct annotation objects in memory: {len(identity)} "
          f"(one per pool member referenced)")
    print()
    print("First ten trace events of the run:")
    print(tracer.summarize(max_events=10))


if __name__ == "__main__":
    main()
