#!/usr/bin/env python3
"""The assembly service: concurrent clients over one device server.

Section 7 of the paper: "the effectiveness of elevator scheduling
depends on exclusive control of the physical device", and the sketched
fix is "a server-per-device architecture … each server would maintain a
queue of requests and would fetch objects on behalf of one or more
assembly operators."  This example drives that architecture end to end:

* four clients submit assembly requests at once — their references all
  merge into the device server's single elevator sweep;
* the admission controller prices each request at the paper's
  ``6*(W-1)+7`` pin bound and, with a deliberately tight budget, admits
  one at full window, shrinks one, and queues the rest;
* a repeated request is answered from the assembled-object cache
  without touching the disk at all.

Run:  python examples/assembly_service.py
"""

from repro.bench.harness import ExperimentConfig, build_layout
from repro.core.tuning import pin_bound
from repro.service import AssemblyService
from repro.workloads.acob import make_template

N_COMPLEX_OBJECTS = 200
WINDOW = 8


def main() -> None:
    """Run four concurrent clients plus one cache-served repeat."""
    config = ExperimentConfig(
        n_complex_objects=N_COMPLEX_OBJECTS,
        clustering="inter-object",
        scheduler="elevator",
        window_size=WINDOW,
    )
    database, layout = build_layout(config)
    template = make_template(database)

    # Budget fits one full window (49 pages) plus one shrunk to W=2
    # (13 pages); the other two clients wait for a release.
    budget = pin_bound(WINDOW, template) + pin_bound(2, template)
    service = AssemblyService(
        layout.store, budget_pages=budget, cache_capacity=N_COMPLEX_OBJECTS
    )
    print(f"budget: {budget} pages "
          f"(window {WINDOW} pins {pin_bound(WINDOW, template)})")

    quarter = N_COMPLEX_OBJECTS // 4
    client_roots = [
        layout.root_order[i * quarter:(i + 1) * quarter] for i in range(4)
    ]
    requests = [
        service.submit(roots, template, window_size=WINDOW)
        for roots in client_roots
    ]
    service.run()

    print("\nrequest  window  shrunk  queue_wait  latency  fetches  objects")
    for request_id in requests:
        m = service.request_metrics(request_id)
        print(f"{m.request_id:>7}  {m.window_size:>6}  "
              f"{str(m.shrunk):>6}  {m.queue_wait:>10}  "
              f"{m.latency:>7}  {m.fetches:>7}  {m.emitted:>7}")

    seek = layout.store.disk.stats.avg_seek_per_read
    print(f"\naverage seek distance per read: {seek:.1f} pages "
          f"(one global sweep for all four clients)")

    repeat = service.submit(client_roots[0], template)
    m = service.request_metrics(repeat)
    print(f"\nrepeat of client 0: {m.cache_hits} cache hits, "
          f"latency {m.latency} — served without any disk read")

    snapshot = service.metrics.snapshot()
    print(f"\nservice totals: {snapshot['requests_completed']} requests, "
          f"{snapshot['objects_emitted']} objects assembled, "
          f"{snapshot['cache_hits']} cache hits, "
          f"p95 latency {snapshot['p95_latency']} resolutions")


if __name__ == "__main__":
    main()
