#!/usr/bin/env python3
"""Engineering bill-of-materials: recursive templates + shared catalogs.

The paper's introduction motivates object-oriented databases with
"complex data such as those found in engineering applications".  This
example assembles product structures — irregular part trees up to three
levels deep, whose leaves reference a catalog of standard parts shared
by every product — using a template written as ONE recursive node
(Section 5's recursive template definitions, unrolled automatically).

The query rolls up each product's total cost over swizzled pointers and
verifies it against the generator's oracle.

Run:  python examples/bill_of_materials.py
"""

from repro import (
    Assembly,
    InterObjectClustering,
    ListSource,
    ObjectStore,
    SimulatedDisk,
    layout_database,
)
from repro.workloads import bom_template, generate_bom, rolled_up_cost

N_PRODUCTS = 500
CATALOG = 40


def main() -> None:
    database = generate_bom(
        N_PRODUCTS, depth=3, catalog_size=CATALOG,
        standard_probability=0.6, seed=5,
    )
    store = ObjectStore(SimulatedDisk())
    layout = layout_database(
        database.complex_objects,
        store,
        InterObjectClustering(cluster_pages=512),
        shared=database.shared_pool,
    )

    template = bom_template(depth=3)
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        template,
        window_size=50,
        scheduler="elevator",
    )
    products = {p.root_oid: p for p in operator.rows()}

    print(f"Assembled {len(products)} product structures "
          f"(template: {template.node_count} nodes from ONE recursive "
          f"declaration).")
    print()
    total_parts = sum(p.object_count() for p in products.values())
    stats = operator.stats
    print(f"  storage objects touched:  {total_parts}")
    print(f"  object fetches:           {stats.fetches}")
    print(f"  catalog links (no fetch): {stats.shared_links} "
          f"(catalog of {CATALOG} loaded once each)")
    print(f"  avg seek / read:          "
          f"{store.disk.stats.avg_seek_per_read:.1f} pages")
    print()

    # Cost roll-up over memory pointers, checked against the oracle.
    mismatches = 0
    grand_total = 0
    for cobj_def, expected in zip(database.complex_objects, database.costs):
        cost = rolled_up_cost(products[cobj_def.root])
        grand_total += cost
        if cost != expected:
            mismatches += 1
    assert mismatches == 0, "cost roll-up must match the generator"
    print(f"  cost roll-up: {N_PRODUCTS} products, grand total "
          f"{grand_total}, oracle mismatches: {mismatches}")

    most_expensive = max(products.values(), key=rolled_up_cost)
    print(f"  most expensive product: root part "
          f"{most_expensive.root.ints[0]} at {rolled_up_cost(most_expensive)}")


if __name__ == "__main__":
    main()
