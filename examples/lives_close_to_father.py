#!/usr/bin/env python3
"""The paper's Section 4 example query, end to end.

    "Retrieve all people that live close to (live in the same city as)
     their father."

The naive OODBMS execution traverses each complex object one at a time,
in whatever order the method implementation happens to touch fields
(Figure 3).  The assembly operator instead prepares the needed portion
of every complex object in memory — person, father, both residences —
ordering fetches by disk location, and the query method then runs over
swizzled pointers.

Run:  python examples/lives_close_to_father.py
"""

from repro import (
    Assembly,
    Filter,
    InterObjectClustering,
    ListSource,
    ObjectStore,
    SimulatedDisk,
    layout_database,
)
from repro.workloads import (
    generate_people,
    lives_close_to_father,
    person_template,
)

N_PEOPLE = 2000


def build():
    database = generate_people(N_PEOPLE, n_cities=25, seed=2024)
    store = ObjectStore(SimulatedDisk())
    layout = layout_database(
        database.complex_objects,
        store,
        InterObjectClustering(cluster_pages=1024),
        shared=database.shared_pool,
    )
    return database, store, layout


def run(scheduler: str, window_size: int):
    database, store, layout = build()
    template = person_template()  # person -> father (recursive), residences
    plan = Filter(
        Assembly(
            ListSource(layout.root_order),
            store,
            template,
            window_size=window_size,
            scheduler=scheduler,
        ),
        lives_close_to_father,  # pure in-memory traversal (Figure 3)
    )
    close = plan.execute()
    return database, close, store.disk.stats


def main() -> None:
    print(f"Query: people (of {N_PEOPLE}) living in the same city as their father")
    print()
    for scheduler, window in (("depth-first", 1), ("elevator", 50)):
        database, close, stats = run(scheduler, window)
        expected = sum(database.close_to_father)
        assert len(close) == expected, "query result must match the oracle"
        print(
            f"  {scheduler:>11s} window={window:<3d}: {len(close):4d} matches, "
            f"avg seek/read = {stats.avg_seek_per_read:7.1f} pages"
        )
    print()
    sample = close[0]
    person = sample.root
    print("Sample assembled complex object (memory pointers only):")
    print(f"  person id={person.ints[1]} age={person.ints[0]}")
    print(f"    residence city={person.follow(1).ints[0]}")
    father = person.follow(0)
    print(f"    father id={father.ints[1]} age={father.ints[0]}")
    print(f"      residence city={father.follow(1).ints[0]}")
    shared = person.follow(1) is father.follow(1)
    print(f"    shared residence object: {shared}")


if __name__ == "__main__":
    main()
