#!/usr/bin/env python3
"""Selective assembly: predicates abort failing objects early.

Section 4 of the paper: "if the previous query was restricted to the
state of Oregon, the residence of the person should be fetched and
checked before the person's father is considered."  This example runs
exactly that restriction.  The template carries the predicate (with its
selectivity estimate); assembly fetches the residence first, aborts
non-Oregon people after two fetches, and only fully assembles the
objects that can satisfy the query.

Run:  python examples/selective_assembly.py
"""

from repro import (
    Assembly,
    Filter,
    InterObjectClustering,
    ListSource,
    ObjectStore,
    Predicate,
    SimulatedDisk,
    layout_database,
)
from repro.workloads import generate_people, lives_close_to_father
from repro.workloads.person import FATHER_SLOT, RESIDENCE_SLOT

from repro.core.template import Template, TemplateNode

N_PEOPLE = 2000
N_CITIES = 25
#: cities 0..4 are "in Oregon" — a 20% selectivity restriction.
OREGON_CITIES = frozenset(range(5))


def oregon_template() -> Template:
    """Person template with the Oregon predicate on the residence.

    The predicate sits on the *residence* node, so assembly checks it
    before completing the rest of the complex object — the fetch order
    the paper says a naive compiled method cannot guarantee.  The
    recursive father edge copies the annotation, which pushes the same
    restriction onto the father's residence: safe for this query, since
    a father outside Oregon cannot share a city with an Oregon child.
    """
    in_oregon = Predicate(
        name="residence in Oregon",
        fn=lambda record: record.ints[0] in OREGON_CITIES,
        selectivity=len(OREGON_CITIES) / N_CITIES,
    )
    person = TemplateNode("person", type_name="Person")
    person.child(
        RESIDENCE_SLOT,
        "residence",
        type_name="Residence",
        shared=True,
        sharing_degree=0.3,
        predicate=in_oregon,
    )
    person.recurse(FATHER_SLOT, target_label="person", max_depth=1)
    return Template(person).finalize()


def main() -> None:
    database = generate_people(N_PEOPLE, n_cities=N_CITIES, seed=77)
    store = ObjectStore(SimulatedDisk())
    layout = layout_database(
        database.complex_objects,
        store,
        InterObjectClustering(cluster_pages=1024),
        shared=database.shared_pool,
    )

    operator = Assembly(
        ListSource(layout.root_order),
        store,
        oregon_template(),
        window_size=50,
        scheduler="elevator",
    )
    plan = Filter(operator, lives_close_to_father)
    matches = plan.execute()

    stats = operator.stats
    print("Query: Oregonians living in the same city as their father")
    print()
    print(f"  people examined:        {N_PEOPLE}")
    print(f"  aborted by predicate:   {stats.aborted}")
    print(f"  fully assembled:        {stats.emitted}")
    print(f"  final matches:          {len(matches)}")
    print()
    print(f"  object fetches:         {stats.fetches}")
    eager_fetches = N_PEOPLE * 4 - stats.shared_links
    print(f"  (eager assembly needs {eager_fetches}: every person, father")
    print("   and residence, even for non-Oregon people)")
    print()
    print(f"  references linked from the shared-component table: "
          f"{stats.shared_links}")
    print(f"  avg seek / read:        "
          f"{store.disk.stats.avg_seek_per_read:.1f} pages")

    # An abort costs at most four fetches (person, residence, father,
    # father's residence) and as few as two when the child's own
    # residence already fails — strictly less than eager assembly.
    assert stats.fetches < eager_fetches
    assert stats.fetches <= stats.emitted * 4 + stats.aborted * 4
    for match in matches:
        city = match.root.follow(RESIDENCE_SLOT).ints[0]
        assert city in OREGON_CITIES


if __name__ == "__main__":
    main()
