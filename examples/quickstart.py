#!/usr/bin/env python3
"""Quickstart: assemble a set of complex objects and measure seeks.

Builds the paper's benchmark database (3-level binary trees of 96-byte
objects, nine per 1 KB page), clusters it by object type, and compares
naive object-at-a-time assembly with the set-oriented assembly operator
(elevator scheduling over a sliding window of 50 complex objects).

Run:  python examples/quickstart.py
"""

from repro import (
    Assembly,
    InterObjectClustering,
    ListSource,
    ObjectStore,
    SimulatedDisk,
    layout_database,
)
from repro.workloads import generate_acob, make_template


def run(scheduler: str, window_size: int) -> None:
    # 1. Generate the database: 1000 complex objects of 7 objects each.
    database = generate_acob(1000)

    # 2. Lay it out on a fresh simulated disk, clustered by type
    #    (Figure 9/12 of the paper).
    store = ObjectStore(SimulatedDisk())
    layout = layout_database(
        database.complex_objects,
        store,
        InterObjectClustering(disk_order=database.type_ids_depth_first()),
        shared=database.shared_pool,
    )

    # 3. Assemble every complex object.  The input is the (unordered)
    #    set of root OIDs; the output is pointer-swizzled objects.
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        make_template(database),
        window_size=window_size,
        scheduler=scheduler,
    )
    total_payload = 0
    for complex_object in operator.rows():
        # Traversal is pure memory pointer chasing — no OID lookups.
        for obj in complex_object.scan():
            total_payload += obj.ints[3]

    stats = store.disk.stats
    print(
        f"  {scheduler:>13s}  window={window_size:<3d} "
        f"avg seek/read = {stats.avg_seek_per_read:8.1f} pages   "
        f"({stats.reads} reads, checksum {total_payload % 997})"
    )


def main() -> None:
    print("Assembling 1000 complex objects (7000 objects, 9 per page):")
    print()
    print("  naive object-at-a-time baseline:")
    run("depth-first", window_size=1)
    print()
    print("  set-oriented assembly operator:")
    run("elevator", window_size=50)
    print()
    print(
        "The elevator scheduler with a window of 50 orders object\n"
        "fetches by physical location, collapsing disk head movement."
    )


if __name__ == "__main__":
    main()
