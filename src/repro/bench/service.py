"""Closed-loop load benchmarks for the assembly service (Section 7).

The paper's server-per-device argument is about *concurrent* assembly:
independent operators each assume exclusive control of the device and
their elevator sweeps fight.  These drivers put a number on that with a
closed-loop load generator — every client keeps exactly one request in
flight, submitting the next the moment the previous completes — run in
two modes over identical request schedules:

* **naive per-client** — each client runs its own
  :class:`~repro.core.assembly.Assembly` with a private elevator queue
  against the shared disk (the broken exclusive-control assumption);
* **device server** — every client submits to one
  :class:`~repro.service.server.AssemblyService`, whose device server
  merges all references into a single global elevator sweep.

Seek distance is the paper's cost metric, so latency and throughput are
measured on the head-travel clock (pages of disk-head movement), which
is deterministic on the simulated disk: a request's latency is the head
travel that elapsed while it was in flight, and throughput is objects
assembled per 1000 pages of travel.  The service's own tick-based
p50/p95 (:class:`~repro.service.metrics.ServiceMetrics`) land in the
figure notes.

A separate driver measures the result cache on a repeated-hot-roots
workload against a buffer too small for the hot set: without the cache
every round re-faults the working set; with it, repeat rounds are
answered without touching the buffer at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import ExperimentConfig, build_layout
from repro.bench.report import FigureResult
from repro.core.assembly import Assembly
from repro.core.template import Template
from repro.errors import ServiceStateError
from repro.service.server import AssemblyService, RequestStatus
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import make_template

#: Request schedule: ``schedule[client][request]`` is a list of roots.
Schedule = List[List[List[Oid]]]


def _client_schedule(
    roots: Sequence[Oid],
    n_clients: int,
    requests_per_client: int,
    roots_per_request: int,
) -> Schedule:
    """Deal roots to clients so concurrent requests span the disk.

    Roots are dealt round-robin across clients (wrapping if the
    database is smaller than the total demand), so at every moment the
    in-flight requests reference pages spread over the whole layout —
    the contention pattern the device server exists to fix.
    """
    needed = n_clients * requests_per_client * roots_per_request
    stream = [roots[i % len(roots)] for i in range(needed)]
    schedule: Schedule = [
        [[] for _ in range(requests_per_client)] for _ in range(n_clients)
    ]
    cursor = 0
    for request in range(requests_per_client):
        for _slot in range(roots_per_request):
            for client in range(n_clients):
                schedule[client][request].append(stream[cursor])
                cursor += 1
    return schedule


def _percentile(values: Sequence[float], fraction: float) -> float:
    """The value at ``fraction`` of the sorted sample (0 when empty)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return float(ordered[index])


class _LoadMetrics:
    """What one closed-loop run yields, on the head-travel clock."""

    def __init__(
        self,
        store: ObjectStore,
        latencies: List[float],
        emitted: int,
        notes: Optional[List[str]] = None,
    ) -> None:
        stats = store.disk.stats
        self.avg_seek = stats.avg_seek_per_read
        self.travel = stats.read_seek_total
        self.reads = stats.reads
        self.latencies = latencies
        self.emitted = emitted
        self.notes = notes or []

    @property
    def throughput(self) -> float:
        """Objects assembled per 1000 pages of head travel."""
        return self.emitted * 1000.0 / max(self.travel, 1)

    def p50(self) -> float:
        """Median request latency (pages of head travel in flight)."""
        return _percentile(self.latencies, 0.50)

    def p95(self) -> float:
        """95th-percentile request latency (pages of head travel)."""
        return _percentile(self.latencies, 0.95)


class _NaiveClient:
    """One closed-loop client running its own private assembly."""

    def __init__(self, requests: List[List[Oid]]) -> None:
        self.requests = requests
        self.cursor = 0
        self.operator: Optional[Assembly] = None
        self.submitted_travel = 0


def _run_naive(
    store: ObjectStore,
    template: Template,
    schedule: Schedule,
    window: int,
) -> _LoadMetrics:
    """Closed loop, naive mode: one private elevator per client.

    Clients are stepped round-robin, one emitted complex object per
    turn — the demand pattern a parallel query plan would generate —
    and a finished client immediately opens its next request.
    """
    disk = store.disk
    clients = [_NaiveClient(requests) for requests in schedule]
    latencies: List[float] = []
    emitted = 0

    def open_next(client: _NaiveClient) -> None:
        if client.cursor >= len(client.requests):
            client.operator = None
            return
        roots = client.requests[client.cursor]
        client.cursor += 1
        client.operator = Assembly(
            ListSource(roots),
            store,
            template,
            window_size=window,
            scheduler="elevator",
        )
        client.operator.open()
        client.submitted_travel = disk.stats.read_seek_total

    for client in clients:
        open_next(client)
    while True:
        progressed = False
        for client in clients:
            if client.operator is None:
                continue
            progressed = True
            row = client.operator.next()
            if row is None:
                latencies.append(
                    disk.stats.read_seek_total - client.submitted_travel
                )
                client.operator.close()
                open_next(client)
            else:
                emitted += 1
        if not progressed:
            break
    return _LoadMetrics(store, latencies, emitted)


def _run_service(
    store: ObjectStore,
    template: Template,
    schedule: Schedule,
    window: int,
    cache_capacity: int = 0,
) -> _LoadMetrics:
    """Closed loop, device-server mode: all clients share one service."""
    disk = store.disk
    service = AssemblyService(store, cache_capacity=cache_capacity)
    cursors = [0] * len(schedule)
    outstanding: Dict[int, int] = {}
    submitted_travel: Dict[int, int] = {}
    latencies: List[float] = []
    emitted = 0

    def submit_next(client: int) -> None:
        nonlocal emitted
        while cursors[client] < len(schedule[client]):
            roots = schedule[client][cursors[client]]
            cursors[client] += 1
            travel = disk.stats.read_seek_total
            request_id = service.submit(roots, template, window_size=window)
            if service.poll(request_id) is RequestStatus.DONE:
                # Fully cache-served: zero head travel, next request now.
                latencies.append(disk.stats.read_seek_total - travel)
                emitted += len(service.result(request_id))
                continue
            submitted_travel[request_id] = travel
            outstanding[client] = request_id
            return
        outstanding.pop(client, None)

    for client in range(len(schedule)):
        submit_next(client)
    while outstanding:
        if not service.step():
            raise ServiceStateError(
                "service went idle with outstanding closed-loop requests"
            )
        for client, request_id in list(outstanding.items()):
            if service.poll(request_id) is RequestStatus.DONE:
                latencies.append(
                    disk.stats.read_seek_total
                    - submitted_travel.pop(request_id)
                )
                emitted += len(service.result(request_id))
                submit_next(client)
    snapshot = service.metrics.snapshot()
    notes = [
        f"service ticks: p50={snapshot['p50_latency']} "
        f"p95={snapshot['p95_latency']} over "
        f"{snapshot['requests_completed']} requests"
    ]
    return _LoadMetrics(store, latencies, emitted, notes=notes)


def figure_service_scaling(
    db_size: int = 1000,
    client_counts: Sequence[int] = (1, 2, 4, 8),
    requests_per_client: int = 3,
    roots_per_request: int = 20,
    window: int = 8,
) -> List[FigureResult]:
    """Seek, throughput and latency vs client count, both modes.

    The acceptance claim lives in the first figure: at four or more
    concurrent clients the device server must beat naive per-client
    assembly on average seek distance per read.
    """
    seek = FigureResult(
        figure_id="Service S-1",
        title="closed-loop clients: naive per-client vs device server",
        x_label="clients",
        y_label="average seek distance per read (pages)",
    )
    throughput = FigureResult(
        figure_id="Service S-2",
        title="closed-loop throughput",
        x_label="clients",
        y_label="complex objects per 1000 pages of head travel",
    )
    latency = FigureResult(
        figure_id="Service S-3",
        title="closed-loop request latency",
        x_label="clients",
        y_label="head travel while in flight (pages)",
    )
    for count in client_counts:
        config = ExperimentConfig(
            n_complex_objects=db_size,
            clustering="inter-object",
            scheduler="elevator",
            window_size=window,
        )
        results: Dict[str, _LoadMetrics] = {}
        for mode in ("naive per-client", "device server"):
            database, layout = build_layout(config)
            template = make_template(database)
            schedule = _client_schedule(
                layout.root_order, count, requests_per_client,
                roots_per_request,
            )
            if mode == "naive per-client":
                run = _run_naive(layout.store, template, schedule, window)
            else:
                run = _run_service(layout.store, template, schedule, window)
            results[mode] = run
            seek.add_point(mode, count, run.avg_seek)
            throughput.add_point(mode, count, run.throughput)
            latency.add_point(f"{mode} p50", count, run.p50())
            latency.add_point(f"{mode} p95", count, run.p95())
            expected = count * requests_per_client * roots_per_request
            assert run.emitted == expected, (
                f"{mode} @ {count} clients: {run.emitted} != {expected}"
            )
            for note in run.notes:
                latency.notes.append(f"{count} clients, {mode}: {note}")

    naive_seek = seek.ys("naive per-client")
    server_seek = seek.ys("device server")
    contended = [
        i for i, count in enumerate(client_counts) if count >= 4
    ]
    seek.check(
        "device server beats naive per-client at >= 4 clients",
        bool(contended)
        and all(server_seek[i] < naive_seek[i] for i in contended),
    )
    seek.check(
        "naive per-client degrades as clients are added",
        naive_seek[-1] > naive_seek[0] * 1.1,
    )
    throughput.check(
        "device server sustains higher throughput at >= 4 clients",
        bool(contended)
        and all(
            throughput.ys("device server")[i]
            > throughput.ys("naive per-client")[i]
            for i in contended
        ),
    )
    latency.check(
        "device server p95 below naive p95 at max clients",
        latency.ys("device server p95")[-1]
        < latency.ys("naive per-client p95")[-1],
    )
    return [seek, throughput, latency]


def figure_service_cache(
    db_size: int = 600,
    hot_roots: int = 40,
    rounds: int = 4,
    window: int = 8,
    buffer_capacity: int = 64,
) -> FigureResult:
    """Repeated-hot-roots workload: page faults per round, ± cache.

    The buffer is sized well below the hot set's unclustered page
    footprint, so without the result cache every round re-faults the
    working set; with it, rounds after the first are served entirely
    from assembled results.  The acceptance claim: the cache cuts
    repeat-round page faults by at least 90%.
    """
    figure = FigureResult(
        figure_id="Service S-4",
        title="result cache on a repeated-hot-roots workload",
        x_label="round",
        y_label="buffer page faults during round",
    )
    repeat_faults: Dict[str, int] = {}
    for label, capacity in (("no cache", 0), ("with cache", hot_roots)):
        config = ExperimentConfig(
            n_complex_objects=db_size,
            clustering="unclustered",
            scheduler="elevator",
            window_size=window,
            buffer_capacity=buffer_capacity,
        )
        database, layout = build_layout(config)
        template = make_template(database)
        service = AssemblyService(layout.store, cache_capacity=capacity)
        hot = list(layout.root_order[:hot_roots])
        faults_after_warm = 0
        for round_number in range(1, rounds + 1):
            before = layout.store.buffer.stats.faults
            request_id = service.submit(hot, template, window_size=window)
            assembled = service.result(request_id)
            assert len(assembled) == hot_roots
            faults = layout.store.buffer.stats.faults - before
            figure.add_point(label, round_number, faults)
            if round_number > 1:
                faults_after_warm += faults
        repeat_faults[label] = faults_after_warm
        if capacity:
            figure.notes.append(
                f"cache hits {service.metrics.cache_hits}, "
                f"misses {service.metrics.cache_misses}"
            )
    figure.check(
        "warm round faults identical with and without cache",
        figure.ys("no cache")[0] == figure.ys("with cache")[0],
    )
    figure.check(
        "cache cuts repeat-round page faults by >= 90%",
        repeat_faults["with cache"]
        <= 0.10 * max(repeat_faults["no cache"], 1),
    )
    return figure


def figure_service() -> List[FigureResult]:
    """The full service benchmark suite, at default parameters."""
    return figure_service_scaling() + [figure_service_cache()]
