"""Result structures and ASCII rendering for the Section 6 figures.

Each benchmark produces a :class:`FigureResult` — the series the paper
plots — plus a list of *shape checks*: the qualitative claims the paper
makes about that figure ("elevator lowest", "flat in database size",
…).  ``render`` prints the series as aligned ASCII tables so the bench
harness output can be compared with the paper line by line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: One series: ordered (x, y) points.
Series = List[Tuple[float, float]]


@dataclass
class FigureResult:
    """A reproduced figure: titled series over a shared x-axis."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: "Dict[str, Series]" = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: human-readable outcomes of the qualitative checks.
    checks: List[str] = field(default_factory=list)
    #: check descriptions that FAILED (empty = shape fully reproduced).
    violations: List[str] = field(default_factory=list)

    def add_point(self, series_name: str, x: float, y: float) -> None:
        """Append one (x, y) point to a series."""
        self.series.setdefault(series_name, []).append((x, y))

    def check(self, description: str, passed: bool) -> bool:
        """Record a qualitative shape check; returns ``passed``."""
        mark = "ok" if passed else "FAIL"
        self.checks.append(f"[{mark}] {description}")
        if not passed:
            self.violations.append(description)
        return passed

    def ys(self, series_name: str) -> List[float]:
        """The y values of one series, in x order."""
        return [y for _x, y in self.series[series_name]]

    def xs(self) -> List[float]:
        """The x values (from the first series)."""
        first = next(iter(self.series.values()))
        return [x for x, _y in first]


def render(figure: FigureResult) -> str:
    """Format a figure as an aligned ASCII table plus its checks."""
    lines: List[str] = []
    lines.append(f"== {figure.figure_id}: {figure.title} ==")
    names = list(figure.series)
    xs = figure.xs()
    x_width = max(len(figure.x_label), 10)
    col_width = max([12] + [len(name) for name in names]) + 2
    header = figure.x_label.rjust(x_width) + "".join(
        name.rjust(col_width) for name in names
    )
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(xs):
        cells = []
        for name in names:
            points = figure.series[name]
            cell = f"{points[i][1]:.1f}" if i < len(points) else "-"
            cells.append(cell.rjust(col_width))
        x_text = f"{x:g}".rjust(x_width)
        lines.append(x_text + "".join(cells))
    lines.append(f"    (y = {figure.y_label})")
    for note in figure.notes:
        lines.append(f"    note: {note}")
    for check in figure.checks:
        lines.append(f"    {check}")
    return "\n".join(lines)


def render_all(figures: Sequence[FigureResult]) -> str:
    """Render several figures separated by blank lines."""
    return "\n\n".join(render(f) for f in figures)


def monotone_decreasing(values: Sequence[float], slack: float = 0.0) -> bool:
    """Is the sequence non-increasing, up to ``slack`` relative noise?"""
    for before, after in zip(values, values[1:]):
        if after > before * (1.0 + slack):
            return False
    return True


def roughly_flat(values: Sequence[float], tolerance: float = 0.15) -> bool:
    """Does the sequence stay within ±tolerance of its mean?"""
    if not values:
        return True
    mean = sum(values) / len(values)
    if mean == 0:
        return all(v == 0 for v in values)
    return all(abs(v - mean) <= tolerance * mean for v in values)


def dominates(
    lower: Sequence[float], upper: Sequence[float], margin: float = 1.0
) -> bool:
    """Is ``lower`` pointwise below ``upper`` (scaled by ``margin``)?"""
    return all(lo <= up * margin for lo, up in zip(lower, upper))
