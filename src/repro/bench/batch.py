"""Batched I/O figures B-1..B-3: what page-coalesced fetching buys.

The paper's §4 cost argument — "a single disk access per page" — is
about *logical* redundancy: never read a page twice for two references
it satisfies.  The batch engine extends that argument physically: when
the elevator sweep passes a page, every pending reference on it (and on
physically adjacent pages) is serviced by **one** positioning operation.
These figures quantify the three layers of that win:

* **B-1** — average seek distance per page read vs batch size.  The
  denominator is pages *transferred*, which batching leaves invariant,
  so the series isolates pure head-movement savings.  (Seek per
  *physical read* would mechanically rise under batching: coalescing
  removes cheap one-page seeks from numerator and denominator alike.)
* **B-2** — physical read operations vs batch size, with checks that
  the assembled output (emitted objects, logical fetches, pages
  transferred) is bit-for-bit invariant — batching changes *how* pages
  arrive, never *what* is assembled.
* **B-3** — reference-pool maintenance ops (footnote 5's "CPU cost of
  set-oriented assembly") on a selective workload, comparing the
  owner-indexed pool against a replica of the original O(n) sorted-list
  pool, across batch sizes.  Wall-clock timings go to the figure notes
  (they are machine-dependent; the regression gate compares series and
  checks only).

All drivers accept size overrides so the test suite can run them at
reduced scale; defaults match the other Section 6 figures.
"""

from __future__ import annotations

import time
from bisect import bisect_left, insort
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    build_layout,
    run_experiment,
)
from repro.bench.report import FigureResult
from repro.core.assembly import Assembly
from repro.core.schedulers import ReferenceScheduler, UnresolvedReference
from repro.volcano.iterator import ListSource
from repro.workloads.acob import make_template, payload_predicate

#: Batch sizes swept by every figure (1 = the paper's unbatched loop).
BATCH_SIZES = (1, 2, 4, 8)
#: Clustering order used in the figures' legends.
CLUSTERING_ORDER = ("inter-object", "intra-object", "unclustered")


class _LegacyElevatorScheduler(ReferenceScheduler):
    """The pre-index elevator pool, preserved for the B-3 comparison.

    A faithful replica of the original implementation: one sorted list
    of ``(page_id, -rejection, seq, ref)`` entries, ``insort`` on add,
    ``pop`` via bisect, and ``remove_owner`` rebuilding the whole list —
    charging ``len(entries)`` ops, the O(n) scan the owner index
    eliminates.  Kept here (not in :mod:`repro.core.schedulers`) so the
    production registry only ever offers the indexed pool.
    """

    name = "legacy-elevator"

    def __init__(self, head_fn: Optional[Callable[[], int]] = None) -> None:
        super().__init__()
        self._head_fn = head_fn if head_fn is not None else (lambda: 0)
        self._entries: List[
            Tuple[int, float, int, UnresolvedReference]
        ] = []
        self._direction = 1

    def add(self, ref: UnresolvedReference) -> None:
        self.ops += 1
        insort(self._entries, (ref.page_id, -ref.rejection, ref.seq, ref))

    def pop(self) -> UnresolvedReference:
        self.require_nonempty()
        self.ops += 1
        split = bisect_left(
            self._entries,
            (self._head_fn(), float("-inf"), -1, None),  # type: ignore[arg-type]
        )
        if self._direction > 0:
            if split < len(self._entries):
                index = split
            else:
                self._direction = -1
                index = len(self._entries) - 1
        elif split > 0:
            index = split - 1
        else:
            self._direction = 1
            index = 0
        return self._entries.pop(index)[3]

    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        removed = [e[3] for e in self._entries if e[3].owner == owner]
        if removed:
            self.ops += len(self._entries)
            self._entries = [
                e for e in self._entries if e[3].owner != owner
            ]
        return removed

    def __len__(self) -> int:
        return len(self._entries)


def _batch_sweep(
    db_size: int,
    window: int,
    batch_sizes: Sequence[int],
) -> Dict[str, Dict[int, ExperimentResult]]:
    """One elevator run per clustering x batch size."""
    results: Dict[str, Dict[int, ExperimentResult]] = {}
    for clustering in CLUSTERING_ORDER:
        results[clustering] = {}
        for batch in batch_sizes:
            results[clustering][batch] = run_experiment(
                ExperimentConfig(
                    n_complex_objects=db_size,
                    clustering=clustering,
                    scheduler="elevator",
                    window_size=window,
                    batch_pages=batch,
                )
            )
    return results


def _seek_total(result: ExperimentResult) -> int:
    """Total head movement of a run, reconstructed from its average."""
    return round(result.avg_seek * result.pages_read)


def figure_batch(
    db_size: int = 1000,
    window: int = 50,
    batch_sizes: Sequence[int] = BATCH_SIZES,
    selectivity: float = 0.5,
) -> List[FigureResult]:
    """Figures B-1..B-3: the batched I/O engine vs the unbatched loop."""
    sweep = _batch_sweep(db_size, window, batch_sizes)
    unbatched = batch_sizes[0]
    batched = [b for b in batch_sizes if b > unbatched]

    # -- B-1: seek distance per page transferred ---------------------------
    b1 = FigureResult(
        figure_id="Figure B-1",
        title=f"seek distance vs batch size, elevator, window={window}",
        x_label="batch size (pages per scheduler batch)",
        y_label="average seek distance per page read (pages)",
    )
    for clustering in CLUSTERING_ORDER:
        for batch in batch_sizes:
            b1.add_point(clustering, batch, sweep[clustering][batch].avg_seek)
        totals = ", ".join(
            f"b={batch}: {_seek_total(sweep[clustering][batch])}"
            for batch in batch_sizes
        )
        b1.notes.append(f"{clustering} total seek distance — {totals}")
    b1.notes.append(
        "denominator is pages transferred (invariant across batch sizes); "
        "seek per *physical read* rises under batching because coalescing "
        "removes cheap adjacent seeks from numerator and denominator alike"
    )
    for clustering in ("intra-object", "unclustered"):
        base = sweep[clustering][unbatched].avg_seek
        b1.check(
            f"{clustering}: seek per page strictly lower at every batch >= 2",
            all(sweep[clustering][b].avg_seek < base for b in batched),
        )
    inter_base = sweep["inter-object"][unbatched].avg_seek
    b1.check(
        "inter-object: batching never hurts (within 1%)",
        all(
            sweep["inter-object"][b].avg_seek <= inter_base * 1.01
            for b in batched
        ),
    )

    # -- B-2: physical read operations -------------------------------------
    b2 = FigureResult(
        figure_id="Figure B-2",
        title=f"physical reads vs batch size, elevator, window={window}",
        x_label="batch size (pages per scheduler batch)",
        y_label="physical read operations",
    )
    for clustering in CLUSTERING_ORDER:
        for batch in batch_sizes:
            b2.add_point(clustering, batch, sweep[clustering][batch].reads)
    for clustering in ("intra-object", "unclustered"):
        base = sweep[clustering][unbatched].reads
        b2.check(
            f"{clustering}: strictly fewer physical reads at every batch >= 2",
            all(sweep[clustering][b].reads < base for b in batched),
        )
    b2.check(
        "assembled output invariant (emitted and logical fetches)",
        all(
            sweep[c][b].emitted == sweep[c][unbatched].emitted
            and sweep[c][b].fetches == sweep[c][unbatched].fetches
            for c in CLUSTERING_ORDER
            for b in batched
        ),
    )
    b2.check(
        "pages transferred invariant (unbounded buffer)",
        all(
            sweep[c][b].pages_read == sweep[c][unbatched].pages_read
            for c in CLUSTERING_ORDER
            for b in batched
        ),
    )

    # -- B-3: reference-pool maintenance ops --------------------------------
    # Deferred (selective) assembly keeps predicate-blind references out
    # of the pool, so aborts remove nothing and remove_owner is free by
    # construction.  The pool-maintenance stress is *eager* queuing
    # (``selective=False``): every abort must retract the owner's whole
    # pending frontier, which the legacy pool pays for with a full-list
    # scan per abort.
    b3 = FigureResult(
        figure_id="Figure B-3",
        title=(
            f"pool maintenance ops vs batch size, abort-heavy assembly "
            f"({selectivity:.0%} pass, eager queuing), intra-object, "
            f"window={window}"
        ),
        x_label="batch size (pages per scheduler batch)",
        y_label="reference pool operations",
    )
    base_config = ExperimentConfig(
        n_complex_objects=db_size,
        clustering="intra-object",
        scheduler="elevator",
        window_size=window,
        selectivity=selectivity,
    )

    def selective_run(scheduler, batch: int) -> Tuple[int, int, float]:
        """(pool ops, emitted, seconds) of one abort-heavy run."""
        database, layout = build_layout(base_config)
        template = make_template(
            database,
            sharing=base_config.sharing,
            predicate_position=base_config.predicate_position,
            predicate=payload_predicate(selectivity),
        )
        if scheduler is None:
            scheduler = _LegacyElevatorScheduler(
                head_fn=lambda: layout.store.disk.head_position
            )
        operator = Assembly(
            ListSource(layout.root_order),
            layout.store,
            template,
            window_size=window,
            scheduler=scheduler,
            selective=False,
            batch_pages=batch,
        )
        started = time.perf_counter()
        emitted = sum(1 for _ in operator.rows())
        elapsed = time.perf_counter() - started
        return operator.stats.scheduler_ops, emitted, elapsed

    indexed_ops: Dict[int, int] = {}
    indexed_emitted: Dict[int, int] = {}
    for batch in batch_sizes:
        ops, emitted, elapsed = selective_run("elevator", batch)
        indexed_ops[batch] = ops
        indexed_emitted[batch] = emitted
        b3.add_point("owner-indexed pool", batch, ops)
        b3.notes.append(
            f"owner-indexed pool, b={batch}: {elapsed * 1000:.0f} ms wall"
        )

    # The legacy pool knows nothing of batches; its single run anchors a
    # flat comparison line at the unbatched operation count.
    legacy_ops, legacy_emitted, elapsed = selective_run(None, 1)
    for batch in batch_sizes:
        b3.add_point("legacy list pool (unbatched)", batch, legacy_ops)
    b3.notes.append(f"legacy list pool, b=1: {elapsed * 1000:.0f} ms wall")
    b3.check(
        "owner-indexed pool strictly below the legacy list pool",
        indexed_ops[unbatched] < legacy_ops,
    )
    b3.check(
        "batching strictly reduces pool ops at every batch >= 2",
        all(indexed_ops[b] < indexed_ops[unbatched] for b in batched),
    )
    b3.check(
        "legacy and indexed pools assemble the same objects",
        legacy_emitted == indexed_emitted[unbatched],
    )
    return [b1, b2, b3]
