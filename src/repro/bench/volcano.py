"""Volcano-composition figures V-1..V-3: assembly inside the algebra.

The assembly operator is only worth putting *into* the Volcano algebra
if composition is free, pushdown pays, and exchange-style parallelism
scales — the three claims this family measures:

* **V-1** — composition overhead: the same assembly run priced on a
  :class:`~repro.storage.costmodel.CostedDisk`, once as the bare
  driver and once wrapped in a pass-all ``Filter`` plus a ``Project``
  inside a plan.  The operators above assembly touch no pages, so the
  check demands the plan's service time stays within 1% of the bare
  run (it is exactly equal — same engine, same code path).
* **V-2** — predicate pushdown: a ``ComponentFilter`` evaluated above
  the operator versus the same plan after
  :func:`~repro.volcano.plan.push_down_component_filters` folds the
  predicate into the assembly template.  Pushing enables selective
  assembly — failing objects stop fetching the rest of their
  components — so service time must drop at low selectivity while the
  surviving row count stays identical.
* **V-3** — parallel exchange: window partitions fanned across fabric
  shards (:func:`~repro.fabric.parallel.build_shard_partitions`) under
  :class:`~repro.volcano.assembly.ParallelAssembly`, elapsed time
  priced per shard on the event clock.  The checks demand >1.8x
  speedup at 4 partitions and re-pin the E-3 anchor at operator level:
  one partition under the pipelined driver reproduces the synchronous
  costed service time bit-for-bit.

All drivers accept size overrides so the test suite can run them at
reduced scale; defaults keep the family inside the CI bit-identity
gate's time budget.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bench.harness import get_database
from repro.bench.report import FigureResult
from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering
from repro.core.assembly import Assembly
from repro.fabric.parallel import build_shard_partitions, partition_fn_for
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import CostedDisk
from repro.storage.store import ObjectStore
from repro.volcano.assembly import AssemblyOperator, ComponentFilter, ParallelAssembly
from repro.volcano.filters import Filter, Project
from repro.volcano.iterator import ListSource
from repro.volcano.plan import push_down_component_filters
from repro.workloads.acob import make_template, payload_predicate

#: Window sizes swept by V-1.
WINDOWS = (1, 4, 16)
#: Component-predicate selectivities swept by V-2.
SELECTIVITIES = (0.1, 0.5, 1.0)
#: Partition counts swept by V-3.
PARTITION_COUNTS = (1, 2, 4)
#: V-1's bound on plan-vs-bare service time (fraction).
COMPOSITION_OVERHEAD_BOUND = 0.01


def _costed_layout(db, cluster_pages: int):
    """The ACOB database laid out on a fresh costed disk.

    Deterministic: repeated calls produce bit-identical stores, which
    is what lets V-1/V-2 compare two separately-built plans.
    """
    disk = CostedDisk(n_pages=9 * cluster_pages + 128)
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects,
        store,
        InterObjectClustering(cluster_pages=cluster_pages),
        shared=db.shared_pool,
    )
    disk.service_time_total = 0.0
    return store, layout


def figure_volcano(
    db_size: int = 300,
    cluster_pages: int = 64,
    windows: Sequence[int] = WINDOWS,
    selectivities: Sequence[float] = SELECTIVITIES,
    partition_counts: Sequence[int] = PARTITION_COUNTS,
) -> List[FigureResult]:
    """Figures V-1..V-3: the assembly operator inside the algebra."""
    db = get_database(db_size, seed=4)

    # -- V-1: composition overhead -----------------------------------------
    v1 = FigureResult(
        figure_id="Volcano V-1",
        title="service time: bare driver vs plan-wrapped operator",
        x_label="window size",
        y_label="service milliseconds (cost model)",
    )
    overhead_ok = True
    rows_ok = True
    for window in windows:
        bare_store, bare_layout = _costed_layout(db, cluster_pages)
        bare_rows = Assembly(
            ListSource(bare_layout.root_order),
            bare_store,
            make_template(db),
            window_size=window,
        ).execute()
        bare_ms = bare_store.disk.service_time_total

        plan_store, plan_layout = _costed_layout(db, cluster_pages)
        plan = Project(
            Filter(
                AssemblyOperator(
                    ListSource(plan_layout.root_order),
                    plan_store,
                    make_template(db),
                    window_size=window,
                ),
                lambda _row: True,
            ),
            lambda row: row.root_oid,
        )
        plan_rows = plan.execute()
        plan_ms = plan_store.disk.service_time_total

        v1.add_point("bare driver (ms)", window, bare_ms)
        v1.add_point("filter+project plan (ms)", window, plan_ms)
        rows_ok = rows_ok and len(bare_rows) == len(plan_rows) == db_size
        overhead_ok = overhead_ok and plan_ms <= bare_ms * (
            1.0 + COMPOSITION_OVERHEAD_BOUND
        )
    v1.check("both sides assemble the full database", rows_ok)
    v1.check(
        f"plan service time within {COMPOSITION_OVERHEAD_BOUND:.0%} of bare",
        overhead_ok,
    )

    # -- V-2: predicate pushdown -------------------------------------------
    v2 = FigureResult(
        figure_id="Volcano V-2",
        title="component filter above vs pushed into the template",
        x_label="predicate selectivity",
        y_label="service milliseconds (cost model)",
    )
    label = make_template(db).nodes()[1].label
    window = max(windows)
    pushdown_wins = True
    multisets_ok = True
    for selectivity in selectivities:
        above_store, above_layout = _costed_layout(db, cluster_pages)
        above_rows = ComponentFilter(
            AssemblyOperator(
                ListSource(above_layout.root_order),
                above_store,
                make_template(db),
                window_size=window,
            ),
            label,
            payload_predicate(selectivity),
        ).execute()
        above_ms = above_store.disk.service_time_total

        pushed_store, pushed_layout = _costed_layout(db, cluster_pages)
        pushed_plan, decisions = push_down_component_filters(
            ComponentFilter(
                AssemblyOperator(
                    ListSource(pushed_layout.root_order),
                    pushed_store,
                    make_template(db),
                    window_size=window,
                ),
                label,
                payload_predicate(selectivity),
            )
        )
        pushed_rows = pushed_plan.execute()
        pushed_ms = pushed_store.disk.service_time_total

        v2.add_point("filter above (ms)", selectivity, above_ms)
        v2.add_point("pushed into template (ms)", selectivity, pushed_ms)
        multisets_ok = multisets_ok and len(decisions) == 1 and sorted(
            row.root_oid for row in above_rows
        ) == sorted(row.root_oid for row in pushed_rows)
        if selectivity < 1.0:
            pushdown_wins = pushdown_wins and pushed_ms < above_ms
    v2.check("rewrite preserves the surviving rows", multisets_ok)
    v2.check(
        "pushdown cuts service time at selective predicates", pushdown_wins
    )

    # -- V-3: parallel exchange across fabric shards -----------------------
    v3 = FigureResult(
        figure_id="Volcano V-3",
        title="parallel assembly across fabric shards",
        x_label="partitions (shards)",
        y_label="elapsed milliseconds (event clock)",
    )

    def shard_run(n_partitions: int, driver: str):
        # Each shard holds ~1/k of the objects, so its type extents are
        # 1/k the size — otherwise every shard sweeps the full-database
        # page span and seek costs never shrink with partitioning.
        partitions, router = build_shard_partitions(
            db,
            n_partitions,
            clustering="inter-object",
            cluster_pages=max(8, cluster_pages // n_partitions),
            costed=True,
        )
        roots = [root for part in partitions for root in part.roots]
        parallel = ParallelAssembly(
            ListSource(roots),
            [part.store for part in partitions],
            make_template(db),
            partition_fn=partition_fn_for(router),
            driver=driver,
            window_size=window,
        )
        rows = parallel.execute()
        return len(rows), parallel.elapsed_ms()

    elapsed_by_partitions: List[float] = []
    emitted_ok = True
    for n_partitions in partition_counts:
        emitted, elapsed = shard_run(n_partitions, driver="sync")
        v3.add_point("max shard service (ms)", n_partitions, elapsed)
        elapsed_by_partitions.append(elapsed)
        emitted_ok = emitted_ok and emitted == db_size
    v3.check("every partitioning assembles the full database", emitted_ok)
    speedup = (
        elapsed_by_partitions[0] / elapsed_by_partitions[-1]
        if elapsed_by_partitions[-1] > 0
        else float("inf")
    )
    v3.check(
        f"{max(partition_counts)} partitions beat one by >1.8x "
        f"(measured {speedup:.2f}x)",
        speedup > 1.8,
    )
    piped_emitted, piped_elapsed = shard_run(1, driver="pipelined")
    v3.check(
        "one pipelined partition reproduces the synchronous service "
        "time bit-for-bit (E-3 anchor at operator level)",
        piped_elapsed == elapsed_by_partitions[0]
        and piped_emitted == db_size,
    )
    v3.notes.append(
        f"synchronous 1-partition {elapsed_by_partitions[0]:.3f} ms; "
        f"pipelined {piped_elapsed:.3f} ms (exact match required)"
    )
    return [v1, v2, v3]
