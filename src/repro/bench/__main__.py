"""Command-line entry point: ``python -m repro.bench [figure ...]``.

Without arguments, every figure and ablation runs (a few minutes at the
paper's full parameters).  Name figures to run a subset, e.g.::

    python -m repro.bench fig11 fig14
    python -m repro.bench --list
    python -m repro.bench --trace-out trace.json   # instrumented run
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List

from repro.bench.figures import ALL_FIGURES, DESCRIPTIONS
from repro.bench.report import FigureResult, render


def main(argv: List[str] = None) -> int:
    """Parse arguments, run the requested figures, export if asked."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the figures of 'Efficient Assembly of "
        "Complex Objects' (SIGMOD 1991).",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help=f"figures to run (default: all). Known: {', '.join(ALL_FIGURES)}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list known figures and exit"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write one CSV per figure into DIR",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write all figures (series, notes, checks) to FILE",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="run one instrumented benchmark point and write its span "
        "trace to FILE as Chrome trace_event JSON (tracing never "
        "changes any benchmark number)",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=1.0,
        metavar="RATE",
        help="fraction of window-slot subtrees kept in --trace-out "
        "(deterministic; default 1.0)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the selected figures under cProfile and print the "
        "top functions by cumulative time (results are unchanged; "
        "wall-clock timings= are inflated by profiling overhead)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="FILE",
        help="with --profile, also write the full pstats report to FILE",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=25,
        metavar="N",
        help="functions shown by --profile (default 25)",
    )
    args = parser.parse_args(argv)

    if args.list:
        width = max(len(name) for name in ALL_FIGURES)
        for name in ALL_FIGURES:
            description = DESCRIPTIONS.get(name, "")
            print(f"{name:<{width}}  {description}".rstrip())
        return 0

    # --trace-out alone traces one run without sweeping every figure.
    names = args.figures or ([] if args.trace_out else list(ALL_FIGURES))
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figures: {', '.join(unknown)}")

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()

    failures = 0
    collected: List[FigureResult] = []
    timings: Dict[str, float] = {}
    run_start = time.time()
    for name in names:
        start = time.time()
        produced = ALL_FIGURES[name]()
        elapsed = time.time() - start
        timings[name] = elapsed
        figures = produced if isinstance(produced, list) else [produced]
        for figure in figures:
            print(render(figure))
            print()
            failures += len(figure.violations)
        collected.extend(figures)
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()
    timings["total"] = time.time() - run_start

    if profiler is not None:
        import io
        import pstats

        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(args.profile_top)
        print(buffer.getvalue())
        if args.profile_out:
            from pathlib import Path

            target = Path(args.profile_out)
            if str(target.parent) and not target.parent.exists():
                target.parent.mkdir(parents=True, exist_ok=True)
            full = io.StringIO()
            pstats.Stats(profiler, stream=full).sort_stats(
                "cumulative"
            ).print_stats()
            target.write_text(full.getvalue())
            print(f"wrote full profile report to {target}")
    if args.csv:
        from repro.bench.export import write_csv

        paths = write_csv(collected, args.csv)
        print(f"wrote {len(paths)} CSV file(s) to {args.csv}")
    if args.json:
        from repro.bench.export import write_json

        print(f"wrote {write_json(collected, args.json, timings=timings)}")
    if args.trace_out:
        from repro.bench.harness import ExperimentConfig, trace_experiment

        config = ExperimentConfig(n_complex_objects=100, window_size=8)
        result, path = trace_experiment(
            config, args.trace_out, sample_rate=args.trace_sample_rate
        )
        print(
            f"wrote {path} (traced {result.emitted} objects, "
            f"{result.reads} reads)"
        )
    if failures:
        print(f"{failures} shape check(s) FAILED")
        return 1
    print("all shape checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
