"""Related-work baselines (paper Section 2).

"Our design of the assembly operator was influenced mainly by the way
look-up routines work for unclustered index scans … One could try to
avoid the seek costs of the unclustered scan by sorting the pointers
retrieved from the index and looking them up in physical order.  This
approach, however, may require substantial sort space.  We sought an
operator that avoids the cost of completely sorting the pointer set,
but retains the advantages of using an index."

This driver places the assembly operator on exactly that spectrum,
using a degenerate single-component template (an assembly of flat
objects *is* a TID look-up):

* ``TidScan(order="input")`` — the naive unclustered look-up,
* ``TidScan(order="sorted")`` — the full pointer sort (unbounded sort
  space: the whole pointer set is materialized before the first
  result),
* ``Assembly`` at windows 1 … W — bounded "sort space" of W pointers,
  streaming results as they complete.

Expected shape: window 1 equals the naive scan; growing windows slide
toward the fully-sorted seek cost while holding only W pointers in
memory — the middle ground the paper set out to build.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.bench.harness import ExperimentConfig, build_layout
from repro.bench.report import FigureResult, monotone_decreasing
from repro.core.assembly import Assembly
from repro.core.template import Template, TemplateNode
from repro.volcano.iterator import ListSource
from repro.volcano.scan import TidScan


def flat_template() -> Template:
    """A single-component template: assembly degenerates to look-up."""
    return Template(TemplateNode("object", type_name="T0")).finalize()


def _fresh_run(db_size: int) -> Tuple[object, object]:
    config = ExperimentConfig(
        n_complex_objects=db_size,
        clustering="unclustered",
        scheduler="elevator",
        window_size=1,
    )
    return build_layout(config)


def baseline_tid_scan(
    db_size: int = 4000,
    windows: Sequence[int] = (1, 10, 50, 200),
) -> FigureResult:
    """The Section 2 spectrum: naive scan, windowed assembly, full sort.

    The look-up targets are the complex-object roots in random
    (index-output) order over an unclustered layout.
    """
    figure = FigureResult(
        figure_id="Section 2 baseline",
        title=f"pointer look-up strategies, {db_size} pointers, unclustered",
        x_label="window size (pointers held)",
        y_label="average seek distance per read (pages)",
    )

    # Naive: fetch in index-output order.
    _db, layout = _fresh_run(db_size)
    scan = TidScan(ListSource(layout.root_order), layout.store, order="input")
    assert sum(1 for _ in scan.rows()) == db_size
    naive = layout.store.disk.stats.avg_seek_per_read

    # Full pointer sort: the whole set is "sort space".
    _db, layout = _fresh_run(db_size)
    scan = TidScan(ListSource(layout.root_order), layout.store, order="sorted")
    assert sum(1 for _ in scan.rows()) == db_size
    full_sort = layout.store.disk.stats.avg_seek_per_read

    assembly_seeks: List[float] = []
    for window in windows:
        _db, layout = _fresh_run(db_size)
        operator = Assembly(
            ListSource(layout.root_order),
            layout.store,
            flat_template(),
            window_size=window,
            scheduler="elevator",
        )
        assert sum(1 for _ in operator.rows()) == db_size
        seek = layout.store.disk.stats.avg_seek_per_read
        assembly_seeks.append(seek)
        figure.add_point("assembly (elevator)", window, seek)
        figure.add_point("naive TID scan", window, naive)
        figure.add_point("fully sorted TID scan", window, full_sort)

    figure.notes.append(
        f"sort space: naive 0 pointers, assembly <= window pointers, "
        f"full sort {db_size} pointers"
    )
    figure.check(
        "window 1 matches the naive unclustered look-up",
        abs(assembly_seeks[0] - naive) / naive < 0.15,
    )
    figure.check(
        "assembly seeks fall monotonically with window",
        monotone_decreasing(assembly_seeks, slack=0.05),
    )
    figure.check(
        "largest window closes most of the gap to the full sort",
        (naive - assembly_seeks[-1]) >= 0.8 * (naive - full_sort),
    )
    figure.check(
        "full sort is the floor",
        all(seek >= full_sort * 0.95 for seek in assembly_seeks),
    )
    return figure
