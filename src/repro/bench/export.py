"""Exporting figure results to CSV and JSON.

Benchmark runs should leave machine-readable artifacts next to the
human-readable tables: CSV per figure (one row per (series, x, y)
point) for plotting, and a single JSON document with series, notes, and
the shape-check outcomes for archival comparison between runs.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.bench.report import FigureResult

PathLike = Union[str, Path]


def figure_to_rows(figure: FigureResult) -> List[Dict[str, object]]:
    """Flatten a figure into one dict per data point."""
    rows: List[Dict[str, object]] = []
    for series_name, points in figure.series.items():
        for x, y in points:
            rows.append(
                {
                    "figure": figure.figure_id,
                    "series": series_name,
                    "x": x,
                    "y": y,
                    "x_label": figure.x_label,
                    "y_label": figure.y_label,
                }
            )
    return rows


def figure_to_csv(figure: FigureResult) -> str:
    """Render one figure as CSV text."""
    rows = figure_to_rows(figure)
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer,
        fieldnames=["figure", "series", "x", "y", "x_label", "y_label"],
    )
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def figure_to_dict(figure: FigureResult) -> Dict[str, object]:
    """JSON-ready representation of one figure."""
    return {
        "figure_id": figure.figure_id,
        "title": figure.title,
        "x_label": figure.x_label,
        "y_label": figure.y_label,
        "series": {
            name: [[x, y] for x, y in points]
            for name, points in figure.series.items()
        },
        "notes": list(figure.notes),
        "checks": list(figure.checks),
        "violations": list(figure.violations),
    }


def write_csv(figures: Sequence[FigureResult], directory: PathLike) -> List[Path]:
    """Write one CSV per figure into ``directory``; returns the paths."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for figure in figures:
        slug = (
            figure.figure_id.lower()
            .replace(" ", "-")
            .replace(".", "")
            .replace(":", "")
        )
        path = target / f"{slug}.csv"
        path.write_text(figure_to_csv(figure))
        written.append(path)
    return written


def write_json(
    figures: Sequence[FigureResult],
    path: PathLike,
    timings: Optional[Dict[str, float]] = None,
) -> Path:
    """Write every figure into one JSON document; returns the path.

    ``timings`` maps driver names to harness wall-clock seconds (plus a
    ``"total"`` entry); it is archival metadata — the regression gate
    compares series and checks only, never machine-dependent timings.
    """
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "figures": [figure_to_dict(figure) for figure in figures],
        "violations_total": sum(len(f.violations) for f in figures),
    }
    if timings is not None:
        document["timings"] = {
            name: round(seconds, 3) for name, seconds in timings.items()
        }
    target.write_text(json.dumps(document, indent=2, sort_keys=True))
    return target


def load_json(path: PathLike) -> Dict[str, object]:
    """Read back a document written by :func:`write_json`."""
    return json.loads(Path(path).read_text())
