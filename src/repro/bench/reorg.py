"""Online reorganization benchmarks: figures G-1..G-3.

The paper's three clusterings are *static*: chosen at load time, frozen
forever.  Darmont et al. argue that once the access pattern drifts, a
simple statistics-driven online reorganization beats any frozen layout.
These drivers stage exactly that drift — a Zipfian hot set of roots
that shifts to a disjoint hot set mid-run — and race the online
reorganizer (:mod:`repro.cluster.reorg`, over an unclustered load)
against all three static clusterings on identical request schedules.

Costs are priced on the cost-model clock by a
:class:`~repro.cluster.reorg.DeviceIdleTracker` attached to every run
(for static runs it is a passive observer), so serving I/O time and
migration I/O time are separable and the comparison is honest: the
headline check charges the reorganized run for its migration I/O *on
top of* its serving I/O and still demands a ≥ 15% win over the best
static layout.

* **G-1** — per-phase serving I/O time, all four layouts; the ≥ 15%
  total-cost reduction check lives here.
* **G-2** — reorganizer activity per phase (migrations, migration I/O
  time) with the idle-window no-overlap and adaptivity checks.
* **G-3** — the safety anchor: a reorg-off service (explicit
  ``reorg_policy=None``) against a service built without the kwarg,
  bit-identical per phase, plus byte-equality of every object the
  reorganized run assembles.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import ExperimentConfig, build_layout
from repro.bench.report import FigureResult
from repro.cluster.reorg import DeviceIdleTracker, ReorgPolicy
from repro.service.server import AssemblyService
from repro.storage.oid import Oid
from repro.workloads.acob import make_template

#: Request schedule: ``schedule[phase][batch]`` is a list of root OIDs.
Schedule = List[List[List[Oid]]]


def _zipf_weights(n: int, alpha: float = 1.2) -> List[float]:
    """Zipfian popularity over ``n`` ranked items."""
    return [1.0 / (rank + 1) ** alpha for rank in range(n)]


def _make_schedule(
    roots: Sequence[Oid],
    phases: int,
    shift_phase: int,
    n_groups: int,
    group_size: int,
    queries_per_phase: int,
    seed: int,
) -> Schedule:
    """Recurring-query schedule whose hot query set shifts mid-run.

    The workload is ``2 * n_groups`` *recurring queries*, each a fixed
    set of ``group_size`` roots cut from a seeded permutation of the
    database (so each query's roots are scattered across the layout —
    an index result, not a scan).  Every phase draws
    ``queries_per_phase`` queries Zipf-distributed over the active
    half: the first half before ``shift_phase``, the disjoint second
    half after — the drift a static layout cannot follow.  Recurrence
    is the point: objects a query touches together recur together,
    which is co-access structure only an *online* clusterer can learn.
    The schedule is computed once and replayed identically against
    every layout under test.
    """
    rng = random.Random(seed)
    perm = list(roots)
    rng.shuffle(perm)
    if len(perm) < 2 * n_groups * group_size:
        raise ValueError("database too small for two disjoint query sets")
    groups = [
        perm[i * group_size : (i + 1) * group_size]
        for i in range(2 * n_groups)
    ]
    weights = _zipf_weights(n_groups)
    schedule: Schedule = []
    for phase in range(phases):
        offset = 0 if phase < shift_phase else n_groups
        active = groups[offset : offset + n_groups]
        schedule.append(
            [
                list(rng.choices(active, weights=weights, k=1)[0])
                for _query in range(queries_per_phase)
            ]
        )
    return schedule


def _content_key(cobj) -> Tuple:
    """Byte-level identity of one assembled complex object.

    Everything the client can observe of the object's *content*: every
    reachable object's OID, integer state and raw reference OIDs, in
    traversal order.  Physical placement is deliberately absent —
    migrations change placement and nothing else.
    """
    return tuple(
        (obj.oid, obj.ints, obj.ref_oids, tuple(sorted(obj.children)))
        for obj in cobj.root.walk()
    )


class _ModeRun:
    """Per-phase costs of one layout mode over the shared schedule."""

    def __init__(self) -> None:
        self.serving_ms: List[float] = []
        self.migration_ms: List[float] = []
        self.migrations: List[int] = []
        self.avg_seek: List[float] = []
        self.service: Optional[AssemblyService] = None
        self.tracker: Optional[DeviceIdleTracker] = None
        self.content: Dict[Oid, Tuple] = {}

    def total_serving_ms(self) -> float:
        return sum(self.serving_ms)

    def total_migration_ms(self) -> float:
        return sum(self.migration_ms)

    def total_cost_ms(self) -> float:
        """Serving plus migration: what the run really paid."""
        return self.total_serving_ms() + self.total_migration_ms()


def _run_mode(
    config: ExperimentConfig,
    schedule: Schedule,
    window: int,
    reorg_policy: Optional[ReorgPolicy] = None,
    pass_kwarg: bool = True,
) -> _ModeRun:
    """Replay ``schedule`` against one layout; price every phase.

    ``pass_kwarg=False`` builds the service without mentioning
    ``reorg_policy`` at all — the G-3 anchor distinguishing "feature
    absent" from "feature off".
    """
    database, layout = build_layout(config)
    template = make_template(database)
    store = layout.store
    kwargs: Dict[str, object] = {"cache_capacity": 0}
    if pass_kwarg:
        kwargs["reorg_policy"] = reorg_policy
    service = AssemblyService(store, **kwargs)
    reorg = service.server.reorg
    if reorg is not None:
        reorg.bind_layout(layout)
        tracker = reorg.tracker
    else:
        tracker = DeviceIdleTracker(store.disk)

    run = _ModeRun()
    run.service = service
    run.tracker = tracker
    device = 0  # single-spindle benchmark disk
    for phase in schedule:
        busy_mark = len(tracker.busy_intervals[device])
        mig_mark = len(tracker.migration_intervals[device])
        migrations_before = service.metrics.reorg_migrations
        seek_before = store.disk.stats.read_seek_total
        reads_before = store.disk.stats.pages_read
        for batch in phase:
            request_id = service.submit(
                list(batch), template, window_size=window
            )
            emitted = service.result(request_id)
            assert len(emitted) == len(batch)
            for cobj in emitted:
                run.content[cobj.root.oid] = _content_key(cobj)
            service.run()  # drained: the reorganizer's idle window
        run.serving_ms.append(
            sum(
                end - start
                for start, end in tracker.busy_intervals[device][busy_mark:]
            )
        )
        run.migration_ms.append(
            sum(
                end - start
                for start, end in (
                    tracker.migration_intervals[device][mig_mark:]
                )
            )
        )
        run.migrations.append(
            service.metrics.reorg_migrations - migrations_before
        )
        reads = store.disk.stats.pages_read - reads_before
        seek = store.disk.stats.read_seek_total - seek_before
        run.avg_seek.append(seek / max(reads, 1))
    return run


def figure_reorg(
    db_size: int = 150,
    phases: int = 6,
    shift_phase: int = 3,
    n_groups: int = 6,
    group_size: int = 10,
    queries_per_phase: int = 16,
    window: int = 2,
    buffer_capacity: int = 16,
    schedule_seed: int = 23,
) -> List[FigureResult]:
    """The online-reorganization suite: figures G-1..G-3.

    Six recurring queries (ten scattered roots each) dominate each half
    of the run, Zipf-weighted; each query's footprint (ten pages even
    under the best static clustering) does not fit the 16-page buffer
    together with another query's, so layouts keep faulting and the
    race is about *seek locality*.  Static clusterings can co-locate
    the members of one complex object, but never the ten unrelated
    complex objects a recurring query assembles together — the
    reorganizer learns exactly that from the trace and packs each hot
    query's objects onto contiguous fresh extents.
    """
    policy = ReorgPolicy(
        decay=0.5,
        min_weight=1.0,
        min_observations=64,
        max_migrations_per_round=128,
        affinity_window=80,
    )

    def config_for(clustering: str) -> ExperimentConfig:
        return ExperimentConfig(
            n_complex_objects=db_size,
            clustering=clustering,
            scheduler="elevator",
            window_size=window,
            buffer_capacity=buffer_capacity,
        )

    # The schedule only needs the root set, identical across layouts.
    _database, seed_layout = build_layout(config_for("unclustered"))
    schedule = _make_schedule(
        seed_layout.root_order,
        phases=phases,
        shift_phase=shift_phase,
        n_groups=n_groups,
        group_size=group_size,
        queries_per_phase=queries_per_phase,
        seed=schedule_seed,
    )

    static_runs: Dict[str, _ModeRun] = {
        clustering: _run_mode(config_for(clustering), schedule, window)
        for clustering in ("unclustered", "inter-object", "intra-object")
    }
    # The reorganizer starts from the best static layout and improves
    # it online: intra-object clustering already co-locates each complex
    # object's members, so migrations only pay ~one read per *page* of
    # a hot query's footprint, and what reorg adds is exactly what no
    # static policy can — packing the ten unrelated objects a recurring
    # query touches together onto fewer, contiguous pages.
    reorg_run = _run_mode(
        config_for("intra-object"), schedule, window, reorg_policy=policy
    )

    cost = FigureResult(
        figure_id="Figure G-1",
        title="shifting Zipf hot set: static clusterings vs online reorg",
        x_label="workload phase (hot set shifts after phase "
        f"{shift_phase})",
        y_label="serving I/O time per phase (cost-model ms)",
    )
    for clustering, run in static_runs.items():
        for phase, ms in enumerate(run.serving_ms, start=1):
            cost.add_point(clustering, phase, round(ms, 3))
    for phase, ms in enumerate(reorg_run.serving_ms, start=1):
        cost.add_point("intra-object + reorg", phase, round(ms, 3))
    best_static = min(
        static_runs.values(), key=lambda run: run.total_serving_ms()
    )
    best_name = next(
        name
        for name, run in static_runs.items()
        if run is best_static
    )
    reduction = 1.0 - reorg_run.total_cost_ms() / best_static.total_serving_ms()
    cost.notes.append(
        f"best static: {best_name} at "
        f"{best_static.total_serving_ms():.1f} ms total; reorg pays "
        f"{reorg_run.total_serving_ms():.1f} ms serving + "
        f"{reorg_run.total_migration_ms():.1f} ms migration "
        f"({reduction:.1%} total-cost reduction)"
    )
    cost.check(
        "reorg (serving + migration) beats best static serving by >= 15%",
        reorg_run.total_cost_ms() <= 0.85 * best_static.total_serving_ms(),
    )
    post_shift = range(shift_phase, phases)
    settled = range(shift_phase + 1, phases)
    cost.notes.append(
        "phase {0} pays the re-clustering bill for the shifted hot set "
        "({1:.1f} ms migration); every later phase runs on the new "
        "layout".format(
            shift_phase + 1, reorg_run.migration_ms[shift_phase]
        )
    )
    cost.check(
        "reorg recovers within one phase of the shift "
        "(beats best static in every later phase, migration included)",
        all(
            reorg_run.serving_ms[p] + reorg_run.migration_ms[p]
            < best_static.serving_ms[p]
            for p in settled
        ),
    )

    activity = FigureResult(
        figure_id="Figure G-2",
        title="reorganizer activity under the hot-set shift",
        x_label="workload phase",
        y_label="objects migrated / migration I/O (cost-model ms)",
    )
    for phase in range(phases):
        activity.add_point(
            "objects migrated", phase + 1, reorg_run.migrations[phase]
        )
        activity.add_point(
            "migration I/O ms",
            phase + 1,
            round(reorg_run.migration_ms[phase], 3),
        )
    assert reorg_run.tracker is not None
    overlaps = reorg_run.tracker.overlaps()
    activity.check(
        "no migration I/O overlaps serving I/O on the device timeline",
        not overlaps,
    )
    activity.check(
        "reorganizer migrated objects at all (non-vacuous run)",
        sum(reorg_run.migrations) > 0,
    )
    activity.check(
        "reorganizer adapts: new hot set re-clustered after the shift",
        sum(reorg_run.migrations[p] for p in post_shift) > 0,
    )
    snapshot = reorg_run.service.metrics.snapshot()
    activity.notes.append(
        f"{snapshot['reorg_rounds']} rounds, "
        f"{snapshot['reorg_migrations']} migrations, "
        f"{snapshot['reorg_pages_written']} pages written, "
        f"priced {snapshot['reorg_io_ms']:.1f} ms"
    )

    anchor = FigureResult(
        figure_id="Figure G-3",
        title="safety anchor: reorg off is the service we always had",
        x_label="workload phase",
        y_label="average seek distance per read (pages)",
    )
    off_run = _run_mode(
        config_for("intra-object"),
        schedule,
        window,
        reorg_policy=None,
        pass_kwarg=True,
    )
    plain_run = _run_mode(
        config_for("intra-object"), schedule, window, pass_kwarg=False
    )
    for phase in range(phases):
        anchor.add_point(
            "reorg_policy=None", phase + 1, round(off_run.avg_seek[phase], 3)
        )
        anchor.add_point(
            "no reorg kwarg", phase + 1, round(plain_run.avg_seek[phase], 3)
        )
    off_stats = off_run.service.store.disk.stats
    plain_stats = plain_run.service.store.disk.stats
    anchor.check(
        "reorg-off run bit-identical to a pre-feature service",
        off_stats == plain_stats
        and off_run.service.metrics.snapshot()
        == plain_run.service.metrics.snapshot(),
    )
    anchor.check(
        "every reorganized assembly byte-equal to the static run's",
        reorg_run.content == plain_run.content,
    )
    return [cost, activity, anchor]
