"""Robustness figures R-1..R-2: assembly under injected faults.

The paper's experiments assume a dedicated, perfectly reliable disk;
the fault-injection layer (:mod:`repro.storage.faults`) drops that
assumption.  These figures measure what reliability costs:

* **R-1** — elapsed milliseconds vs transient-fault rate, pipelined
  assembly over a declustered layout under the event-driven engine.
  Each read may fail transiently (retried with priced backoff) or
  suffer a latency spike; the retry budget covers the injector's
  consecutive-failure bound, so every run still assembles the full
  database.  The anchors: at rate 0 the attached-but-idle injector
  changes *nothing* — elapsed time is bit-identical to a run without
  an injector — and elapsed time never decreases as the fault rate
  rises.
* **R-2** — abort rate vs transient-fault rate for the synchronous
  operator under the ``skip_object`` degradation mode with an
  *unbounded* consecutive-failure config and a deliberately small
  retry budget: some fetches exhaust their retries, and the operator
  abandons exactly those complex objects.  The accounting must close:
  every root is either emitted or fault-skipped, rate 0 skips nothing,
  and the highest rate skips something.

All drivers accept size overrides so the test suite can run them at
reduced scale; defaults match the other Section 6 figures.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.bench.report import FigureResult
from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering
from repro.core.assembly import SKIP_OBJECT, Assembly, AssemblyStats
from repro.core.multidevice import MultiDeviceScheduler, PipelinedAssembly
from repro.core.schedulers import make_scheduler
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import CostModel
from repro.storage.disk import SimulatedDisk
from repro.storage.events import AsyncIOEngine
from repro.storage.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import generate_acob, make_template

#: Transient-fault rates swept by R-1 and R-2 (0 = the clean baseline).
FAULT_RATES = (0.0, 0.02, 0.05, 0.1)
#: Injector seed shared by every swept run (determinism anchor).
FAULT_SEED = 11


def _pipelined_faulted_run(
    db_size: int,
    n_devices: int,
    window_per_device: int,
    cluster_pages: int,
    fault_rate: float,
    inject: bool,
) -> Tuple[AsyncIOEngine, "PipelinedAssembly", int]:
    """One pipelined assembly, optionally under an attached injector."""
    db = generate_acob(db_size, seed=2)
    disk = MultiDeviceDisk(
        n_devices=n_devices,
        pages_per_device=(7 * cluster_pages) // n_devices + cluster_pages + 88,
    )
    retry = RetryPolicy(max_retries=3)
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects,
        store,
        InterObjectClustering(
            cluster_pages=cluster_pages,
            disk_order=db.type_ids_depth_first(),
        ),
        shared=db.shared_pool,
    )
    # Attach only after layout: faults model the serving disk, not the
    # bulk load that builds the database.
    injector = None
    if inject:
        injector = FaultInjector(
            FaultConfig(
                seed=FAULT_SEED,
                read_error_rate=fault_rate,
                latency_spike_rate=fault_rate,
                max_consecutive_failures=2,
            )
        ).attach(disk)
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        make_template(db),
        window_size=window_per_device * n_devices,
        scheduler=MultiDeviceScheduler(disk),
        retry_policy=retry if inject else None,
    )
    engine = AsyncIOEngine(disk, CostModel())
    pipeline = PipelinedAssembly(
        operator,
        engine,
        issue_depth=2,
        batch_pages=4,
        retry_policy=retry if inject else None,
    )
    emitted = pipeline.run()
    assert injector is None or injector.stats.reads_seen > 0
    return engine, pipeline, operator, len(emitted)


def _skipping_run(
    db_size: int, window: int, cluster_pages: int, fault_rate: float
) -> Tuple[AssemblyStats, int]:
    """Synchronous assembly that abandons objects on exhausted retries."""
    db = generate_acob(db_size, seed=2)
    disk = SimulatedDisk(n_pages=7 * cluster_pages + cluster_pages + 88)
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        db.complex_objects,
        store,
        InterObjectClustering(
            cluster_pages=cluster_pages,
            disk_order=db.type_ids_depth_first(),
        ),
        shared=db.shared_pool,
    )
    if fault_rate > 0.0:
        FaultInjector(
            FaultConfig(
                seed=FAULT_SEED,
                read_error_rate=fault_rate,
                max_consecutive_failures=None,
            )
        ).attach(disk)
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        make_template(db),
        window_size=window,
        scheduler=make_scheduler(
            "elevator",
            head_fn=lambda: disk.head_position,
            resident_fn=store.buffer.is_resident,
        ),
        retry_policy=RetryPolicy(max_retries=1),
        on_fault=SKIP_OBJECT,
    )
    emitted = sum(1 for _ in operator.rows())
    return operator.stats, emitted


def figure_robustness(
    db_size: int = 1000,
    window_per_device: int = 50,
    cluster_pages: int = 512,
    fault_rates: Sequence[float] = FAULT_RATES,
    n_devices: int = 4,
) -> List[FigureResult]:
    """Figures R-1..R-2: elapsed time and abort rate under faults."""

    # -- R-1: elapsed time vs transient-fault rate -------------------------
    r1 = FigureResult(
        figure_id="Figure R-1",
        title=(
            f"elapsed time vs fault rate, {n_devices} devices, "
            f"retries cover the consecutive-failure bound"
        ),
        x_label="transient fault rate (per read)",
        y_label="elapsed milliseconds (event clock)",
    )
    baseline_engine, _, _, baseline_emitted = _pipelined_faulted_run(
        db_size, n_devices, window_per_device, cluster_pages,
        fault_rate=0.0, inject=False,
    )
    elapsed_by_rate: List[float] = []
    retries_at_max = 0
    emitted_ok = baseline_emitted == db_size
    for rate in fault_rates:
        engine, pipeline, operator, emitted = _pipelined_faulted_run(
            db_size, n_devices, window_per_device, cluster_pages,
            fault_rate=rate, inject=True,
        )
        emitted_ok = emitted_ok and emitted == db_size
        retries = (
            pipeline.stats.fault_retries + operator.stats.fault_retries
        )
        r1.add_point("pipelined elapsed (ms)", rate, engine.elapsed)
        r1.add_point("fault retries", rate, retries)
        elapsed_by_rate.append(engine.elapsed)
        if rate == max(fault_rates):
            retries_at_max = retries
    r1.check(
        "every run assembles the full database despite faults", emitted_ok
    )
    r1.check(
        "idle injector is free: rate 0 elapsed bit-identical to the "
        "no-injector baseline",
        elapsed_by_rate[0] == baseline_engine.elapsed,
    )
    r1.check(
        "elapsed time never decreases as the fault rate rises",
        all(b >= a for a, b in zip(elapsed_by_rate, elapsed_by_rate[1:])),
    )
    r1.check(
        "the highest rate actually exercises the retry path",
        retries_at_max > 0,
    )
    r1.notes.append(
        f"clean elapsed {elapsed_by_rate[0]:.3f} ms grows to "
        f"{elapsed_by_rate[-1]:.3f} ms at rate {max(fault_rates)} "
        f"({retries_at_max} retries priced through the cost model)"
    )

    # -- R-2: abort rate vs transient-fault rate ---------------------------
    r2 = FigureResult(
        figure_id="Figure R-2",
        title=(
            "abort rate vs fault rate, skip_object degradation, "
            "unbounded consecutive failures, 1 retry"
        ),
        x_label="transient fault rate (per read)",
        y_label="complex objects abandoned (of total)",
    )
    accounting_ok = True
    skips_by_rate: List[int] = []
    for rate in fault_rates:
        stats, emitted = _skipping_run(
            db_size, window_per_device, cluster_pages, rate
        )
        r2.add_point("fault-skipped objects", rate, stats.fault_skipped)
        accounting_ok = accounting_ok and (
            emitted + stats.fault_skipped == db_size
            and stats.fault_skipped == stats.aborted
        )
        skips_by_rate.append(stats.fault_skipped)
    r2.check(
        "accounting closes: every root is emitted or fault-skipped",
        accounting_ok,
    )
    r2.check("a fault-free run skips nothing", skips_by_rate[0] == 0)
    r2.check(
        "the highest fault rate forces at least one skip",
        skips_by_rate[-1] > 0,
    )
    r2.check(
        "more faults never mean fewer skipped objects",
        all(b >= a for a, b in zip(skips_by_rate, skips_by_rate[1:])),
    )
    return [r1, r2]
