"""Experiment harness: one assembly run, fully parameterized.

Every figure of Section 6 is a sweep over the same five benchmark
parameters the paper names: "clustering, scheduling algorithm, window
size, buffer size and database size" — plus sharing degree (Section
6.4) and predicate selectivity (Section 6.5).  :func:`run_experiment`
executes one parameter point and returns every metric the figures (and
tests) need; :func:`sweep` maps it over a parameter grid.

Database generation is cached per parameter set: object *definitions*
are immutable inputs, and each run lays them out on a fresh simulated
disk so no state leaks between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.cluster.layout import (
    LayoutResult,
    LayoutSnapshot,
    layout_database,
    restore_layout,
    snapshot_layout,
)
from repro.cluster.policies import (
    ClusteringPolicy,
    InterObjectClustering,
    IntraObjectClustering,
    Unclustered,
)
from repro.core.assembly import Assembly
from repro.errors import ReproError
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import (
    ACOBDatabase,
    generate_acob,
    make_template,
    payload_predicate,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.spans import SpanRecorder

#: Clustering names accepted by :class:`ExperimentConfig`.
CLUSTERINGS = ("inter-object", "intra-object", "unclustered")


@dataclass(frozen=True)
class ExperimentConfig:
    """One point in the Section 6 parameter space."""

    n_complex_objects: int = 1000
    clustering: str = "inter-object"
    scheduler: str = "elevator"
    window_size: int = 1
    buffer_capacity: Optional[int] = None
    sharing: float = 0.0
    #: predicate pass rate; ``None`` disables selective assembly.
    selectivity: Optional[float] = None
    #: tree position carrying the predicate (level-1 node by default,
    #: so failing objects abort after two fetches).
    predicate_position: int = 1
    use_sharing_statistics: bool = True
    cluster_pages: int = 512
    seed: int = 7
    layout_seed: int = 0
    #: distinct pages per scheduler batch; 1 = the paper's unbatched loop.
    batch_pages: int = 1

    def __post_init__(self) -> None:
        if self.clustering not in CLUSTERINGS:
            raise ReproError(
                f"clustering must be one of {CLUSTERINGS}, "
                f"got {self.clustering!r}"
            )


@dataclass
class ExperimentResult:
    """Metrics of one run; ``avg_seek`` is the paper's y-axis."""

    config: ExperimentConfig
    avg_seek: float
    reads: int
    #: pages transferred (== reads unless runs were batched).
    pages_read: int
    emitted: int
    aborted: int
    fetches: int
    shared_links: int
    buffer_hits: int
    buffer_faults: int
    re_reads: int
    peak_pinned_pages: int
    scheduler_ops: int
    pages_spanned: int

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "db": self.config.n_complex_objects,
            "clustering": self.config.clustering,
            "scheduler": self.config.scheduler,
            "window": self.config.window_size,
            "avg_seek": round(self.avg_seek, 1),
            "reads": self.reads,
            "emitted": self.emitted,
            "aborted": self.aborted,
            "fetches": self.fetches,
            "shared_links": self.shared_links,
            "re_reads": self.re_reads,
            "peak_pinned": self.peak_pinned_pages,
        }


_DB_CACHE: Dict[Tuple[int, float, int], ACOBDatabase] = {}


def get_database(
    n_complex_objects: int, sharing: float = 0.0, seed: int = 7
) -> ACOBDatabase:
    """Cached benchmark database (generation is deterministic)."""
    key = (n_complex_objects, sharing, seed)
    if key not in _DB_CACHE:
        _DB_CACHE[key] = generate_acob(
            n_complex_objects, sharing=sharing, seed=seed
        )
    return _DB_CACHE[key]


def clear_database_cache() -> None:
    """Drop cached databases and layouts (tests use this to bound memory)."""
    _DB_CACHE.clear()
    _LAYOUT_SNAPSHOTS.clear()


#: Layouts are deterministic functions of these config fields; the
#: snapshot cache is keyed by them and bounded to the most recent few
#: entries (page images dominate: ~1 KB per page).
_LAYOUT_SNAPSHOTS: Dict[Tuple, LayoutSnapshot] = {}
_LAYOUT_CACHE_LIMIT = 8


def _layout_key(config: ExperimentConfig) -> Tuple:
    """The config fields layout construction actually depends on."""
    return (
        config.n_complex_objects,
        config.sharing,
        config.seed,
        config.clustering,
        config.cluster_pages,
        config.layout_seed,
    )


def make_policy(config: ExperimentConfig, database: ACOBDatabase) -> ClusteringPolicy:
    """Instantiate the clustering policy a config names.

    Inter-object clustering gets the depth-first-friendly cluster disk
    order — the Figure 12 layout whose mismatch with breadth-first
    fetch order produces the Figure 11A artifact.
    """
    if config.clustering == "inter-object":
        return InterObjectClustering(
            cluster_pages=config.cluster_pages,
            disk_order=database.type_ids_depth_first(),
        )
    if config.clustering == "intra-object":
        return IntraObjectClustering()
    return Unclustered()


def build_layout(config: ExperimentConfig) -> Tuple[ACOBDatabase, LayoutResult]:
    """Generate (cached) and lay out the configured database.

    Layouts are deterministic, so the post-layout disk image is cached
    per parameter point (snapshot/restore): the first build runs the
    placement policy and writes every page; later builds of the same
    point restore the page images onto a fresh disk/buffer/store.  The
    restored state is bit-identical to a rebuild — sweeps that revisit
    a layout (e.g. a window-size sweep at one clustering) skip the
    whole load phase.
    """
    database = get_database(
        config.n_complex_objects, sharing=config.sharing, seed=config.seed
    )
    key = _layout_key(config)
    snapshot = _LAYOUT_SNAPSHOTS.get(key)
    disk = SimulatedDisk()
    buffer = BufferManager(disk, capacity=config.buffer_capacity)
    store = ObjectStore(disk, buffer)
    if snapshot is None:
        layout = layout_database(
            database.complex_objects,
            store,
            make_policy(config, database),
            shared=database.shared_pool,
            seed=config.layout_seed,
            validate=False,  # generators validate once; layouts are hot paths
        )
        _LAYOUT_SNAPSHOTS[key] = snapshot_layout(layout)
        while len(_LAYOUT_SNAPSHOTS) > _LAYOUT_CACHE_LIMIT:
            _LAYOUT_SNAPSHOTS.pop(next(iter(_LAYOUT_SNAPSHOTS)))
        return database, layout
    return database, restore_layout(snapshot, store)


def build_assembly(
    config: ExperimentConfig,
    database: ACOBDatabase,
    layout: LayoutResult,
    spans: Optional["SpanRecorder"] = None,
) -> Assembly:
    """Construct the assembly operator for one run.

    ``spans`` optionally attaches a
    :class:`~repro.obs.spans.SpanRecorder` to the operator; tracing is
    strictly observational and never changes results or disk metrics.
    """
    predicate = None
    predicate_position = None
    if config.selectivity is not None:
        predicate = payload_predicate(config.selectivity)
        predicate_position = config.predicate_position
    template = make_template(
        database,
        sharing=config.sharing,
        predicate_position=predicate_position,
        predicate=predicate,
    )
    kwargs: Dict[str, object] = {}
    if spans is not None:
        kwargs["spans"] = spans
    return Assembly(
        ListSource(layout.root_order),
        layout.store,
        template,
        window_size=config.window_size,
        scheduler=config.scheduler,
        use_sharing_statistics=config.use_sharing_statistics,
        batch_pages=config.batch_pages,
        **kwargs,
    )


def run_experiment(
    config: ExperimentConfig, spans: Optional["SpanRecorder"] = None
) -> ExperimentResult:
    """Execute one parameter point and collect all metrics.

    When a ``spans`` recorder is given, its clock is bound to the run's
    disk page counter — a deterministic simulated-time axis — and the
    operator emits assembly/window-slot/fetch/batch spans into it.  The
    returned metrics are bit-identical with or without the recorder.
    """
    database, layout = build_layout(config)
    if spans is not None:
        disk_stats = layout.store.disk.stats
        spans.bind_clock(lambda: float(disk_stats.pages_read))
    operator = build_assembly(config, database, layout, spans=spans)
    emitted = sum(1 for _ in operator.rows())
    store = layout.store
    disk_stats = store.disk.stats
    buffer_stats = store.buffer.stats
    return ExperimentResult(
        config=config,
        avg_seek=disk_stats.avg_seek_per_read,
        reads=disk_stats.reads,
        pages_read=disk_stats.pages_read,
        emitted=emitted,
        aborted=operator.stats.aborted,
        fetches=operator.stats.fetches,
        shared_links=operator.stats.shared_links,
        buffer_hits=buffer_stats.hits,
        buffer_faults=buffer_stats.faults,
        re_reads=buffer_stats.re_reads,
        peak_pinned_pages=operator.stats.peak_pinned_pages,
        scheduler_ops=operator.stats.scheduler_ops,
        pages_spanned=layout.pages_spanned(),
    )


def trace_experiment(
    config: ExperimentConfig,
    path: str,
    fmt: str = "chrome",
    sample_rate: float = 1.0,
) -> Tuple[ExperimentResult, str]:
    """Run one instrumented experiment and export its span trace.

    Returns ``(result, written_path)``.  ``fmt`` is ``"chrome"`` (Chrome
    ``trace_event`` JSON for ``chrome://tracing`` / Perfetto) or
    ``"jsonl"`` (the flat span log ``python -m repro.obs`` consumes).
    ``sample_rate`` thins window-slot subtrees deterministically; the
    experiment result itself is unaffected by tracing or sampling.
    """
    from repro.obs.export import write_chrome_trace, write_jsonl
    from repro.obs.spans import SpanRecorder

    if fmt not in ("chrome", "jsonl"):
        raise ReproError(
            f"unknown trace format {fmt!r} (want 'chrome' or 'jsonl')"
        )
    spans = SpanRecorder(sample_rate=sample_rate)
    result = run_experiment(config, spans=spans)
    writer = write_chrome_trace if fmt == "chrome" else write_jsonl
    return result, str(writer(spans.spans, path))


def sweep(
    base: ExperimentConfig, **axes: Iterable
) -> List[ExperimentResult]:
    """Run the cartesian product of ``axes`` over ``base``.

    Example::

        sweep(base, scheduler=["depth-first", "elevator"],
                    n_complex_objects=[1000, 2000])
    """
    results: List[ExperimentResult] = []
    names = list(axes)
    values = [list(axes[name]) for name in names]

    def recurse(index: int, config: ExperimentConfig) -> None:
        if index == len(names):
            results.append(run_experiment(config))
            return
        for value in values[index]:
            recurse(index + 1, replace(config, **{names[index]: value}))

    recurse(0, base)
    return results
