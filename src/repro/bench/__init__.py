"""Benchmark harness reproducing every figure of the paper's Section 6."""

from repro.bench.baselines import baseline_tid_scan
from repro.bench.export import (
    figure_to_csv,
    figure_to_dict,
    load_json,
    write_csv,
    write_json,
)
from repro.bench.figures import (
    ALL_FIGURES,
    ablation_adaptive_scheduler,
    ablation_buffer_capacity,
    ablation_cost_model,
    ablation_hypermodel_generality,
    ablation_multi_device,
    ablation_parallel_contention,
    ablation_scheduler_overhead,
    ablation_sharing_degree,
    ablation_window_tuning,
    buffer_pin_bound,
    depth_first_window_invariance,
    figure_11,
    figure_13,
    figure_14,
    figure_15,
    figure_16,
)
from repro.bench.regression import (
    RegressionReport,
    compare_documents,
    compare_files,
)
from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    clear_database_cache,
    get_database,
    run_experiment,
    sweep,
)
from repro.bench.report import FigureResult, render, render_all
from repro.bench.service import (
    figure_service,
    figure_service_cache,
    figure_service_scaling,
)
from repro.bench.volcano import figure_volcano

__all__ = [
    "ALL_FIGURES",
    "ExperimentConfig",
    "ExperimentResult",
    "FigureResult",
    "RegressionReport",
    "ablation_adaptive_scheduler",
    "ablation_buffer_capacity",
    "ablation_cost_model",
    "ablation_hypermodel_generality",
    "ablation_multi_device",
    "ablation_parallel_contention",
    "ablation_scheduler_overhead",
    "ablation_sharing_degree",
    "ablation_window_tuning",
    "baseline_tid_scan",
    "buffer_pin_bound",
    "clear_database_cache",
    "compare_documents",
    "compare_files",
    "depth_first_window_invariance",
    "figure_11",
    "figure_13",
    "figure_14",
    "figure_15",
    "figure_16",
    "figure_service",
    "figure_service_cache",
    "figure_service_scaling",
    "figure_to_csv",
    "figure_to_dict",
    "figure_volcano",
    "get_database",
    "load_json",
    "render",
    "render_all",
    "run_experiment",
    "sweep",
    "write_csv",
    "write_json",
]
