"""Fabric figures F-1..F-3: open-loop load, hedging, load shedding.

The S-figures drive one device server closed-loop; the F-family drives
the sharded fabric (:mod:`repro.fabric`) open-loop, which is where the
classic service curves live:

* **F-1** — served p99 latency vs offered load, one series per shard
  count.  Offered load is expressed as a multiple ``rho`` of a single
  shard's measured service capacity, so the knee of the 1-shard curve
  sits near ``rho = 1`` by construction; with K shards the same
  aggregate arrival rate spreads over K independent servers and the
  knee moves right.  The checks pin exactly that: the knee shifts
  right as the fleet grows 1 -> 2 -> 4, and the tail at the highest
  offered load falls with shard count.
* **F-2** — the hedging tail win on a heterogeneous shard (one replica
  6x slower, round-robin placement so half the primaries land on it):
  latency percentiles with and without a :class:`HedgePolicy`.  The
  p99 must drop; the median must not blow up (hedges fire only for
  conspicuously late requests).
* **F-3** — shed fraction vs offered load under a declared latency
  SLO: near zero while the shard keeps up, climbing under overload —
  and at the top load, the *served* p99 with shedding stays below the
  no-shedding p99 (the point of turning work away at the door).

Every run is seeded and on the simulated clock, so all three figures
are deterministic and sit in the CI regression baseline next to the
other families.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.bench.report import FigureResult
from repro.fabric import (
    HedgePolicy,
    PoissonArrivals,
    ServiceFabric,
    SheddingPolicy,
    build_sharded_fabric,
    open_loop_workload,
)
from repro.workloads.acob import generate_acob

#: Shard counts swept by F-1.
SHARD_COUNTS = (1, 2, 4)
#: Offered load as multiples of one shard's service capacity.
LOAD_MULTIPLES = (0.35, 0.7, 1.05, 1.4, 2.1, 2.8, 4.2, 5.6)
#: F-3's load grid (same units).
SHED_LOADS = (0.5, 1.0, 2.0, 3.0)
#: p99 blowup factor over the lightest-load p99 that marks the knee.
KNEE_FACTOR = 5.0


def _build(db, **kwargs) -> ServiceFabric:
    """One fabric, benchmark configuration: bounded buffers so each
    shard's admission serializes its backlog (queueing is the signal),
    a deep wait queue so nothing is rejected unless F-3 asks for it,
    and no result cache (the workload wraps the root population, and
    zero-latency cache hits would flatter every curve)."""
    kwargs.setdefault("buffer_capacity", 64)
    kwargs.setdefault("max_waiting", 10_000)
    kwargs.setdefault("cache_capacity", 0)
    kwargs.setdefault("cluster_pages", 64)
    return build_sharded_fabric(db, **kwargs)


def _calibrate_service_ms(db, requests: int) -> float:
    """Mean per-request service time of one shard draining a backlog."""
    fabric = _build(db, n_shards=1)
    specs = open_loop_workload(fabric, [0.0] * requests, seed=11)
    report = fabric.run(specs)
    return report.elapsed_ms / len(report.served)


def _offered_rate(rho: float, service_ms: float) -> float:
    """Aggregate arrival rate (req/s) at ``rho`` times one shard's
    capacity."""
    return rho * 1000.0 / service_ms


def _knee(rhos: Sequence[float], p99s: Sequence[float]) -> float:
    """First load multiple whose p99 blows past KNEE_FACTOR times the
    lightest-load p99 (inf when the curve never leaves the floor)."""
    floor = p99s[0]
    for rho, p99 in zip(rhos, p99s):
        if p99 > KNEE_FACTOR * floor:
            return rho
    return math.inf


def figure_f1(
    db_size: int = 64,
    requests_per_point: int = 40,
    calibration_requests: int = 20,
) -> FigureResult:
    """F-1: latency vs offered load, knee per shard count."""
    db = generate_acob(db_size, seed=2)
    service_ms = _calibrate_service_ms(db, calibration_requests)
    figure = FigureResult(
        figure_id="Fabric F-1",
        title="open-loop p99 latency vs offered load, by shard count",
        x_label="offered load (multiples of one shard's capacity)",
        y_label="served p99 latency (ms)",
    )
    figure.notes.append(
        f"calibrated service time: {service_ms:.1f} ms/request"
    )
    knees = {}
    for n_shards in SHARD_COUNTS:
        for rho in LOAD_MULTIPLES:
            fabric = _build(db, n_shards=n_shards)
            specs = open_loop_workload(
                fabric,
                PoissonArrivals(_offered_rate(rho, service_ms), seed=17),
                requests_per_point,
                seed=17,
            )
            report = fabric.run(specs)
            figure.add_point(
                f"{n_shards} shard(s)",
                rho,
                report.percentile_latency_ms(0.99),
            )
        knees[n_shards] = _knee(
            LOAD_MULTIPLES, figure.ys(f"{n_shards} shard(s)")
        )
        figure.notes.append(
            f"{n_shards} shard(s): knee at rho={knees[n_shards]}"
        )
    figure.check(
        "knee shifts right from 1 to 2 shards",
        knees[1] < knees[2],
    )
    figure.check(
        "and keeps moving (or vanishes) at 4 shards",
        knees[2] <= knees[4],
    )
    top = [
        figure.ys(f"{k} shard(s)")[-1] for k in SHARD_COUNTS
    ]
    figure.check(
        "tail at the top load falls with shard count",
        top[0] > top[1] > top[2],
    )
    return figure


def figure_f2(
    db_size: int = 64,
    requests_per_point: int = 40,
    calibration_requests: int = 20,
) -> FigureResult:
    """F-2: the hedging tail win on a heterogeneous shard."""
    db = generate_acob(db_size, seed=2)
    service_ms = _calibrate_service_ms(db, calibration_requests)

    def run(hedging: Optional[HedgePolicy]):
        fabric = _build(
            db,
            n_shards=1,
            replicas_per_shard=2,
            placement="round-robin",
            speed_factors={(0, 0): 6.0},
            hedging=hedging,
        )
        specs = open_loop_workload(
            fabric,
            PoissonArrivals(
                0.3 * _offered_rate(1.0, service_ms), seed=5
            ),
            requests_per_point,
            seed=5,
        )
        return fabric.run(specs)

    hedged = run(HedgePolicy(multiplier=1.0))
    plain = run(None)
    figure = FigureResult(
        figure_id="Fabric F-2",
        title="hedged vs unhedged latency percentiles, slow replica 6x",
        x_label="percentile",
        y_label="served latency (ms)",
    )
    for fraction in (0.50, 0.90, 0.99):
        figure.add_point(
            "hedged", fraction * 100,
            hedged.percentile_latency_ms(fraction),
        )
        figure.add_point(
            "unhedged", fraction * 100,
            plain.percentile_latency_ms(fraction),
        )
    figure.notes.append(
        f"hedges fired: {hedged.fleet.hedge_fired}, "
        f"won: {hedged.fleet.hedge_won}, "
        f"losers cancelled: {hedged.replicas.requests_cancelled}"
    )
    figure.check(
        "hedging serves every request the plain run serves",
        len(hedged.served) == len(plain.served),
    )
    figure.check("hedges actually fired", hedged.fleet.hedge_fired > 0)
    figure.check("some hedges won", hedged.fleet.hedge_won > 0)
    figure.check(
        "hedging cuts the p99 tail",
        figure.ys("hedged")[-1] < figure.ys("unhedged")[-1],
    )
    figure.check(
        "without blowing up the median",
        figure.ys("hedged")[0] <= 2.0 * figure.ys("unhedged")[0],
    )
    return figure


def figure_f3(
    db_size: int = 64,
    requests_per_point: int = 60,
    calibration_requests: int = 20,
) -> FigureResult:
    """F-3: shed rate under overload, and what shedding buys the tail."""
    db = generate_acob(db_size, seed=2)
    service_ms = _calibrate_service_ms(db, calibration_requests)
    slo = SheddingPolicy(
        target_ms=8.0 * service_ms, window=16, min_samples=8
    )

    def run(rho: float, shedding: Optional[SheddingPolicy]):
        fabric = _build(db, n_shards=1, shedding=shedding)
        specs = open_loop_workload(
            fabric,
            PoissonArrivals(_offered_rate(rho, service_ms), seed=7),
            requests_per_point,
            seed=7,
        )
        return fabric.run(specs)

    figure = FigureResult(
        figure_id="Fabric F-3",
        title=f"shed fraction vs offered load (SLO: p99 <= "
        f"{slo.target_ms:.0f} ms)",
        x_label="offered load (multiples of one shard's capacity)",
        y_label="fraction of requests shed",
    )
    fractions = []
    for rho in SHED_LOADS:
        report = run(rho, slo)
        fractions.append(report.shed_fraction)
        figure.add_point("shed fraction", rho, report.shed_fraction)
    figure.check("no shedding while the shard keeps up", fractions[0] < 0.05)
    figure.check(
        "heavy overload sheds a substantial fraction", fractions[-1] > 0.2
    )
    figure.check(
        "shed fraction grows from light to heavy load",
        fractions[-1] > fractions[0],
    )
    top = SHED_LOADS[-1]
    shed_run = run(top, slo)
    plain_run = run(top, None)
    figure.notes.append(
        f"top load served p99: {shed_run.percentile_latency_ms(0.99):.0f} ms "
        f"with shedding vs {plain_run.percentile_latency_ms(0.99):.0f} ms "
        f"without"
    )
    figure.check(
        "shedding bounds the served tail at the top load",
        shed_run.percentile_latency_ms(0.99)
        < plain_run.percentile_latency_ms(0.99),
    )
    return figure


def figure_fabric(
    db_size: int = 64,
    requests_per_point: int = 40,
    calibration_requests: int = 20,
) -> List[FigureResult]:
    """The whole F-family (the CLI's ``fabric`` figure)."""
    return [
        figure_f1(db_size, requests_per_point, calibration_requests),
        figure_f2(db_size, requests_per_point, calibration_requests),
        figure_f3(
            db_size,
            max(requests_per_point, 60),
            calibration_requests,
        ),
    ]
