"""Per-figure benchmark drivers for Section 6 of the paper.

Each ``figure_*`` function reruns the corresponding experiment sweep
and returns :class:`~repro.bench.report.FigureResult` objects carrying
the series the paper plots **and** the qualitative shape checks the
paper's text makes about them.  Absolute values differ from the paper
(their disk geometry is unknown); the checks encode what must
transfer: orderings, flatness/growth, crossovers, and diminishing
returns.

All drivers accept size overrides so the test suite can run them at
reduced scale; the defaults are the paper's parameters
(Section 6.3: windows 1/50/100/150/200, databases 1000–4000 complex
objects).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    get_database,
    run_experiment,
)
from repro.bench.report import (
    FigureResult,
    dominates,
    monotone_decreasing,
    roughly_flat,
)
from repro.workloads.sharing import measure_sharing

#: The paper's database sizes (complex objects).
DB_SIZES = (1000, 2000, 3000, 4000)
#: The paper's window sizes (Section 6.3).
WINDOWS = (1, 50, 100, 150, 200)
#: Scheduler order used in the figures' legends.
SCHEDULER_ORDER = ("breadth-first", "depth-first", "elevator")
#: Figure 11/13 panels: (panel letter, clustering policy).
PANELS = (
    ("A", "inter-object"),
    ("B", "intra-object"),
    ("C", "unclustered"),
)

Y_LABEL = "average seek distance per read (pages)"


def _scheduler_sweep(
    figure_id: str,
    title: str,
    window_size: int,
    db_sizes: Sequence[int],
    clustering: str,
) -> FigureResult:
    figure = FigureResult(
        figure_id=figure_id,
        title=title,
        x_label="complex objects",
        y_label=Y_LABEL,
    )
    for scheduler in SCHEDULER_ORDER:
        for n in db_sizes:
            result = run_experiment(
                ExperimentConfig(
                    n_complex_objects=n,
                    clustering=clustering,
                    scheduler=scheduler,
                    window_size=window_size,
                )
            )
            figure.add_point(scheduler, n, result.avg_seek)
    return figure


# ---------------------------------------------------------------------------
# Figure 11: window size = 1
# ---------------------------------------------------------------------------


def figure_11(db_sizes: Sequence[int] = DB_SIZES) -> List[FigureResult]:
    """Scheduling algorithm vs database size at window = 1 (Fig. 11A–C)."""
    panels: List[FigureResult] = []
    for letter, clustering in PANELS:
        figure = _scheduler_sweep(
            f"Figure 11{letter}",
            f"window=1, {clustering} clustering",
            window_size=1,
            db_sizes=db_sizes,
            clustering=clustering,
        )
        bf = figure.ys("breadth-first")
        df = figure.ys("depth-first")
        el = figure.ys("elevator")
        if letter == "A":
            # "seek distance is independent of database size — shown by
            # the flat lines in Figure 11A"
            for name in SCHEDULER_ORDER:
                figure.check(
                    f"{name} flat in database size", roughly_flat(figure.ys(name))
                )
            # "Breadth-first scheduling performs poorly for inter-object
            # clustering because of cluster layout."
            figure.check("breadth-first worst", dominates(df, bf) and dominates(el, bf))
        elif letter == "C":
            # "the elevator scheduler uniformly decreases average seek
            # distance by approximately 10%"
            figure.check(
                "elevator ~10% below depth-first",
                all(0.80 <= e / d <= 0.97 for e, d in zip(el, df) if d),
            )
            figure.check(
                "depth-first == breadth-first at window 1 (unclustered)",
                all(abs(d - b) / d < 0.05 for d, b in zip(df, bf)),
            )
        else:
            # Intra-object at window 1: all three nearly coincide (the
            # per-tree locality dwarfs scheduler differences).
            figure.check(
                "schedulers within 10% of each other",
                all(
                    max(a, b, c) <= 1.10 * min(a, b, c)
                    for a, b, c in zip(bf, df, el)
                ),
            )
        panels.append(figure)
    return panels


# ---------------------------------------------------------------------------
# Figure 13: window size = 50
# ---------------------------------------------------------------------------


def figure_13(db_sizes: Sequence[int] = DB_SIZES) -> List[FigureResult]:
    """Scheduling algorithm vs database size at window = 50 (Fig. 13A–C)."""
    panels: List[FigureResult] = []
    for letter, clustering in PANELS:
        figure = _scheduler_sweep(
            f"Figure 13{letter}",
            f"window=50, {clustering} clustering",
            window_size=50,
            db_sizes=db_sizes,
            clustering=clustering,
        )
        bf = figure.ys("breadth-first")
        df = figure.ys("depth-first")
        el = figure.ys("elevator")
        # "Regardless of how the data is clustered, average seek
        # distance is smallest for elevator scheduling."
        figure.check(
            "elevator smallest", dominates(el, df) and dominates(el, bf)
        )
        figure.check(
            "elevator far below depth-first (>2x)",
            all(e <= d / 2 for e, d in zip(el, df)),
        )
        panels.append(figure)
    return panels


def depth_first_window_invariance(
    db_size: int = 2000, windows: Sequence[int] = (1, 50)
) -> FigureResult:
    """Depth-first == object-at-a-time regardless of window size (§6.2)."""
    figure = FigureResult(
        figure_id="Section 6.2",
        title="depth-first scheduling is window-invariant",
        x_label="window size",
        y_label=Y_LABEL,
    )
    for clustering in ("inter-object", "unclustered"):
        for window in windows:
            result = run_experiment(
                ExperimentConfig(
                    n_complex_objects=db_size,
                    clustering=clustering,
                    scheduler="depth-first",
                    window_size=window,
                )
            )
            figure.add_point(clustering, window, result.avg_seek)
        ys = figure.ys(clustering)
        figure.check(
            f"{clustering}: identical seek at every window",
            all(abs(y - ys[0]) < 1e-9 for y in ys),
        )
    return figure


# ---------------------------------------------------------------------------
# Figure 14: window size sweep, elevator scheduling
# ---------------------------------------------------------------------------


def figure_14(
    windows: Sequence[int] = WINDOWS, db_size: int = 4000
) -> FigureResult:
    """Window size vs seek distance, elevator, DB = 4000 (Fig. 14)."""
    figure = FigureResult(
        figure_id="Figure 14",
        title=f"database={db_size}, elevator scheduling",
        x_label="window size (complex objects)",
        y_label=Y_LABEL,
    )
    for _letter, clustering in PANELS:
        for window in windows:
            result = run_experiment(
                ExperimentConfig(
                    n_complex_objects=db_size,
                    clustering=clustering,
                    scheduler="elevator",
                    window_size=window,
                )
            )
            figure.add_point(clustering, window, result.avg_seek)
        ys = figure.ys(clustering)
        figure.check(
            f"{clustering}: seek decreases with window",
            monotone_decreasing(ys, slack=0.05),
        )
        if len(ys) >= 3 and ys[0] > ys[1]:
            # "The point of diminishing returns occurs prior to a
            # window of 50": the first step captures most of the win.
            first_gain = ys[0] - ys[1]
            rest_gain = max(ys[1] - ys[-1], 0.0)
            figure.check(
                f"{clustering}: diminishing returns after window {windows[1]}",
                first_gain >= 3 * rest_gain,
            )
    return figure


# ---------------------------------------------------------------------------
# Section 6.3.3: buffer-pin bound
# ---------------------------------------------------------------------------


def buffer_pin_bound(
    windows: Sequence[int] = (1, 10, 50), db_size: int = 2000
) -> FigureResult:
    """Peak pinned pages vs the paper's 6*(W-1)+7 bound (§6.3.3)."""
    figure = FigureResult(
        figure_id="Section 6.3.3",
        title="buffer pages pinned by partially assembled objects",
        x_label="window size",
        y_label="pages",
    )
    for window in windows:
        result = run_experiment(
            ExperimentConfig(
                n_complex_objects=db_size,
                clustering="inter-object",
                scheduler="elevator",
                window_size=window,
            )
        )
        bound = 6 * (window - 1) + 7
        figure.add_point("peak pinned (measured)", window, result.peak_pinned_pages)
        figure.add_point("paper bound 6(W-1)+7", window, bound)
        figure.check(
            f"window {window}: peak {result.peak_pinned_pages} <= bound {bound}",
            result.peak_pinned_pages <= bound,
        )
    return figure


# ---------------------------------------------------------------------------
# Figure 15: shared sub-objects
# ---------------------------------------------------------------------------


def figure_15(
    db_sizes: Sequence[int] = DB_SIZES,
    sharing: float = 0.25,
    buffer_capacity: int = 512,
    large_window: int = 50,
) -> FigureResult:
    """Databases with 25% sharing, inter-object clustering (Fig. 15).

    Run with a restricted buffer (the regime where keeping shared pages
    pinned matters).  The buffer must still fit the window's pin bound
    of 6*(large_window-1)+7 pages (Section 6.3.3) — a window the buffer
    cannot hold is a misconfiguration, not a measurement.  Series:
    depth-first (object-at-a-time) vs elevator at windows 1 and
    ``large_window``, all using sharing statistics; the notes record
    the total-read reduction against a statistics-off run, the paper's
    "not apparent in Figure 15" observation.
    """
    pin_bound = 6 * (large_window - 1) + 7
    if buffer_capacity <= pin_bound:
        raise ValueError(
            f"buffer of {buffer_capacity} frames cannot hold a window "
            f"of {large_window} (pin bound {pin_bound})"
        )
    figure = FigureResult(
        figure_id="Figure 15",
        title=f"degree of sharing = {sharing:.0%}, inter-object clustering",
        x_label="complex objects",
        y_label=Y_LABEL,
    )
    big = f"elevator window={large_window}"
    series = (
        ("depth-first", "depth-first", 1, True),
        ("elevator window=1", "elevator", 1, True),
        (big, "elevator", large_window, True),
    )
    for label, scheduler, window, stats_on in series:
        for n in db_sizes:
            result = run_experiment(
                ExperimentConfig(
                    n_complex_objects=n,
                    clustering="inter-object",
                    scheduler=scheduler,
                    window_size=window,
                    sharing=sharing,
                    buffer_capacity=buffer_capacity,
                    use_sharing_statistics=stats_on,
                )
            )
            figure.add_point(label, n, result.avg_seek)

    largest = max(db_sizes)
    with_stats = run_experiment(
        ExperimentConfig(
            n_complex_objects=largest,
            clustering="inter-object",
            scheduler="elevator",
            window_size=large_window,
            sharing=sharing,
            buffer_capacity=buffer_capacity,
            use_sharing_statistics=True,
        )
    )
    without_stats = run_experiment(
        ExperimentConfig(
            n_complex_objects=largest,
            clustering="inter-object",
            scheduler="elevator",
            window_size=large_window,
            sharing=sharing,
            buffer_capacity=buffer_capacity,
            use_sharing_statistics=False,
        )
    )
    figure.notes.append(
        f"total reads at {largest} objects: {with_stats.reads} with sharing "
        f"statistics vs {without_stats.reads} without "
        f"({with_stats.shared_links} references satisfied without a fetch)"
    )
    df = figure.ys("depth-first")
    e1 = figure.ys("elevator window=1")
    e_big = figure.ys(big)
    figure.check("elevator (both windows) below depth-first",
                 dominates(e1, df) and dominates(e_big, df))
    figure.check("large window below window 1", dominates(e_big, e1))
    figure.check(
        "sharing statistics reduce total reads",
        with_stats.reads < without_stats.reads,
    )
    return figure


# ---------------------------------------------------------------------------
# Figure 16: predicates and selectivity
# ---------------------------------------------------------------------------


def figure_16(
    selectivities: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5),
    db_size: int = 4000,
) -> FigureResult:
    """Selective assembly under varying predicate selectivity (Fig. 16)."""
    figure = FigureResult(
        figure_id="Figure 16",
        title=f"predicates and selectivities, database={db_size}",
        x_label="percentage selectivity",
        y_label=Y_LABEL,
    )
    series = (
        ("depth-first", "depth-first", 1),
        ("elevator window=1", "elevator", 1),
        ("elevator window=50", "elevator", 50),
    )
    emitted_ok = True
    fetch_elimination_ok = True
    reads_by_selectivity: List[int] = []
    for label, scheduler, window in series:
        for selectivity in selectivities:
            result = run_experiment(
                ExperimentConfig(
                    n_complex_objects=db_size,
                    clustering="inter-object",
                    scheduler=scheduler,
                    window_size=window,
                    selectivity=selectivity,
                )
            )
            figure.add_point(label, selectivity * 100, result.avg_seek)
            expected = selectivity * db_size
            if abs(result.emitted - expected) > max(40, 0.15 * expected):
                emitted_ok = False
            # "Object fetches other than those needed to test the
            # predicate or completely assemble complex objects
            # satisfying the predicate are eliminated": a rejected
            # object costs exactly 2 fetches (root + predicate node),
            # an accepted one 7.
            if result.fetches != result.emitted * 7 + result.aborted * 2:
                fetch_elimination_ok = False
            if label == "elevator window=50":
                reads_by_selectivity.append(result.reads)
    figure.notes.append(
        "window=50 total reads by selectivity: "
        + ", ".join(
            f"{int(s * 100)}%:{r}"
            for s, r in zip(selectivities, reads_by_selectivity)
        )
    )
    figure.check(
        "emitted counts track predicate selectivity", emitted_ok
    )
    figure.check(
        "rejected objects cost exactly the predicate-path fetches",
        fetch_elimination_ok,
    )
    # "The reason, fewer reads are needed for assembling fewer objects."
    figure.check(
        "fewer satisfying objects => fewer reads (window 50)",
        all(
            earlier <= later
            for earlier, later in zip(
                reads_by_selectivity, reads_by_selectivity[1:]
            )
        ),
    )
    df = figure.ys("depth-first")
    e50 = figure.ys("elevator window=50")
    figure.check(
        "elevator window=50 below depth-first at every selectivity",
        dominates(e50, df),
    )
    return figure


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------------


def ablation_scheduler_overhead(
    db_size: int = 2000, window: int = 50
) -> FigureResult:
    """Footnote 5: the only CPU overhead is the scheduling structure."""
    figure = FigureResult(
        figure_id="Ablation A-1",
        title="scheduling-structure operations per object fetch",
        x_label="window size",
        y_label="structure ops / fetch",
    )
    ok = True
    for scheduler in SCHEDULER_ORDER:
        result = run_experiment(
            ExperimentConfig(
                n_complex_objects=db_size,
                clustering="inter-object",
                scheduler=scheduler,
                window_size=window,
            )
        )
        per_fetch = result.scheduler_ops / max(result.fetches, 1)
        figure.add_point(scheduler, window, round(per_fetch, 3))
        ok = ok and per_fetch < 8.0
    figure.check(
        "every scheduler costs O(1) structure ops per fetch", ok
    )
    return figure


def ablation_buffer_capacity(
    capacities: Sequence[Optional[int]] = (2048, 1024, 512, 384),
    db_size: int = 4000,
    sharing: float = 0.25,
) -> FigureResult:
    """Section 7 future work: restricted buffers force re-reads."""
    figure = FigureResult(
        figure_id="Ablation A-2",
        title=f"restricted buffer, elevator window=50, sharing={sharing:.0%}",
        x_label="buffer capacity (frames)",
        y_label="page reads",
    )
    reads: List[int] = []
    for capacity in capacities:
        result = run_experiment(
            ExperimentConfig(
                n_complex_objects=db_size,
                clustering="inter-object",
                scheduler="elevator",
                window_size=50,
                sharing=sharing,
                buffer_capacity=capacity,
            )
        )
        figure.add_point("total reads", capacity or 0, result.reads)
        figure.add_point("re-reads", capacity or 0, result.re_reads)
        reads.append(result.reads)
    figure.check(
        "smaller buffers never reduce reads",
        all(b >= a for a, b in zip(reads, reads[1:])),
    )
    return figure


def ablation_sharing_degree(
    degrees: Sequence[float] = (0.05, 0.10, 0.25, 0.50),
    db_size: int = 2000,
) -> FigureResult:
    """Section 6.4: results at 25% sharing are 'typical of the other
    benchmarks with differing degrees of sharing'."""
    figure = FigureResult(
        figure_id="Ablation A-3",
        title="sharing-degree sweep, elevator window=50",
        x_label="degree of sharing",
        y_label="object fetches",
    )
    ok = True
    for degree in degrees:
        database = get_database(db_size, sharing=degree)
        profile = measure_sharing(
            database.complex_objects, database.shared_pool
        )
        result = run_experiment(
            ExperimentConfig(
                n_complex_objects=db_size,
                clustering="inter-object",
                scheduler="elevator",
                window_size=50,
                sharing=degree,
            )
        )
        figure.add_point("fetches", degree, result.fetches)
        figure.add_point("links (saved fetches)", degree, result.shared_links)
        # Oracle: links == duplicate references to shared components.
        ok = ok and result.shared_links == profile.duplicate_references
    figure.check(
        "saved fetches equal the sharing profile's duplicate references", ok
    )
    return figure


def ablation_adaptive_scheduler(
    db_size: int = 2000,
    selectivities: Sequence[float] = (0.1, 0.3, 0.5),
) -> FigureResult:
    """Section 7: the elevator 'modified to account for predicates,
    sharing and the buffer size' vs the plain elevator."""
    figure = FigureResult(
        figure_id="Ablation A-4",
        title="adaptive vs plain elevator on selective assembly, window=50",
        x_label="percentage selectivity",
        y_label=Y_LABEL,
    )
    adaptive_wins = True
    for scheduler in ("elevator", "adaptive"):
        for selectivity in selectivities:
            result = run_experiment(
                ExperimentConfig(
                    n_complex_objects=db_size,
                    clustering="inter-object",
                    scheduler=scheduler,
                    window_size=50,
                    selectivity=selectivity,
                )
            )
            figure.add_point(scheduler, selectivity * 100, result.avg_seek)
    elevator_ys = figure.ys("elevator")
    adaptive_ys = figure.ys("adaptive")
    figure.check(
        "adaptive never worse than plain elevator",
        dominates(adaptive_ys, elevator_ys, margin=1.05),
    )
    figure.check(
        "adaptive strictly better somewhere",
        any(a < e * 0.95 for a, e in zip(adaptive_ys, elevator_ys)),
    )
    return figure


def ablation_parallel_contention(
    db_size: int = 2000,
    partition_counts: Sequence[int] = (1, 2, 4, 8),
    window: int = 48,
) -> FigureResult:
    """Section 7: independent per-operator queues vs a device server.

    'Each assumes sole control of the device … the exclusive control
    assumption no longer holds.'  The device server re-merges all
    partitions into one queue and restores single-operator seeks.
    """
    from repro.bench.harness import build_layout
    from repro.core.parallel import DeviceServerAssembly, InterleavedAssemblies
    from repro.workloads.acob import make_template as acob_template

    figure = FigureResult(
        figure_id="Ablation A-5",
        title="parallel assembly: independent queues vs device server",
        x_label="partitions",
        y_label=Y_LABEL,
    )
    config = ExperimentConfig(
        n_complex_objects=db_size,
        clustering="inter-object",
        scheduler="elevator",
        window_size=window,
    )
    independent: List[float] = []
    for k in partition_counts:
        db, layout = build_layout(config)
        op = InterleavedAssemblies(
            layout.root_order, layout.store, acob_template(db),
            n_partitions=k, window_size=window,
        )
        emitted = sum(1 for _ in op.rows())
        assert emitted == db_size
        seek = layout.store.disk.stats.avg_seek_per_read
        figure.add_point("independent queues", k, seek)
        independent.append(seek)

        db, layout = build_layout(config)
        server = DeviceServerAssembly(
            layout.root_order, layout.store, acob_template(db),
            n_partitions=k, window_size=window,
        )
        emitted = sum(1 for _ in server.rows())
        assert emitted == db_size
        figure.add_point(
            "device server", k, layout.store.disk.stats.avg_seek_per_read
        )
    server_ys = figure.ys("device server")
    figure.check(
        "independent queues degrade with partitions",
        independent[-1] > independent[0] * 1.5,
    )
    figure.check(
        "device server flat in partitions",
        roughly_flat(server_ys, tolerance=0.15),
    )
    figure.check(
        "device server beats independent queues at max partitions",
        server_ys[-1] < independent[-1],
    )
    return figure


def ablation_window_tuning(
    buffer_capacity: int = 256, db_size: int = 2000
) -> FigureResult:
    """Section 7: 'for a given buffer size the window size can be
    tuned so that performance is maximized.'"""
    from repro.core.tuning import max_window_for_buffer, tune_window

    figure = FigureResult(
        figure_id="Ablation A-6",
        title=f"window tuning under a {buffer_capacity}-frame buffer",
        x_label="window size",
        y_label=Y_LABEL,
    )

    def run(window: int) -> float:
        return run_experiment(
            ExperimentConfig(
                n_complex_objects=db_size,
                clustering="inter-object",
                scheduler="elevator",
                window_size=window,
                buffer_capacity=buffer_capacity,
            )
        ).avg_seek

    result = tune_window(
        run,
        buffer_capacity=buffer_capacity,
        candidates=(1, 5, 10, 20, 30, 40),
    )
    for window, seek in result.probes:
        figure.add_point("avg seek", window, seek)
    ceiling = max_window_for_buffer(buffer_capacity)
    figure.notes.append(
        f"analytic window ceiling for {buffer_capacity} frames: {ceiling}; "
        f"tuned best: window {result.best_window} "
        f"at {result.best_avg_seek:.1f} pages/read"
    )
    figure.check(
        "every probed window fits the pin bound",
        all(w <= ceiling for w, _ in result.probes),
    )
    figure.check(
        "largest feasible window is best (seeks fall with window)",
        result.best_window == max(w for w, _ in result.probes),
    )
    return figure


def ablation_multi_device(
    device_counts: Sequence[int] = (1, 2, 4, 7),
    db_size: int = 1000,
    window_per_device: int = 50,
) -> FigureResult:
    """Section 7: striping over devices with per-device request queues.

    "If this technique is combined with parallelism through
    partitioning and asynchronous I/O … we expect that the assembly
    operator will retrieve large sets of complex objects with scalable
    performance."  Devices work concurrently, so the wall-clock proxy
    is the **maximum per-device seek total** (the critical path), with
    the window scaled to keep per-device queue depth constant.
    """
    from repro.cluster.layout import layout_database as lay
    from repro.cluster.policies import InterObjectClustering
    from repro.core.assembly import Assembly as Asm
    from repro.core.multidevice import MultiDeviceScheduler
    from repro.storage.buffer import BufferManager
    from repro.storage.multidisk import MultiDeviceDisk
    from repro.storage.store import ObjectStore
    from repro.volcano.iterator import ListSource
    from repro.workloads.acob import generate_acob
    from repro.workloads.acob import make_template as acob_template

    figure = FigureResult(
        figure_id="Ablation A-7",
        title="multi-device striping, per-device elevator queues",
        x_label="devices",
        y_label="max per-device seek total (pages, critical path)",
    )
    criticals: List[float] = []
    for n_devices in device_counts:
        db = generate_acob(db_size, seed=2)
        disk = MultiDeviceDisk(
            n_devices=n_devices,
            pages_per_device=(7 * 512) // n_devices + 600,
        )
        store = ObjectStore(disk, BufferManager(disk))
        layout = lay(
            db.complex_objects,
            store,
            InterObjectClustering(
                cluster_pages=512, disk_order=db.type_ids_depth_first()
            ),
            shared=db.shared_pool,
        )
        operator = Asm(
            ListSource(layout.root_order),
            store,
            acob_template(db),
            window_size=window_per_device * n_devices,
            scheduler=MultiDeviceScheduler(disk),
        )
        emitted = sum(1 for _ in operator.rows())
        assert emitted == db_size
        critical = max(s.read_seek_total for s in disk.device_stats)
        total = sum(s.read_seek_total for s in disk.device_stats)
        figure.add_point("critical path (max device)", n_devices, critical)
        figure.add_point("aggregate (sum devices)", n_devices, total)
        criticals.append(critical)
    figure.check(
        "critical path shrinks with devices",
        all(b < a for a, b in zip(criticals, criticals[1:])),
    )
    figure.check(
        "max devices cut the critical path at least in half",
        criticals[-1] <= criticals[0] / 2,
    )
    return figure


def ablation_hypermodel_generality(
    n_documents: int = 400,
    windows: Sequence[int] = (1, 25, 100),
) -> FigureResult:
    """The headline claims re-checked on a very different workload.

    Section 6 names the HyperModel Benchmark as the kind of
    object-oriented workload the system targets; this driver assembles
    fan-out-5 documents (31 components each, shared annotations) and
    checks that the paper's conclusions are not artifacts of the ACOB
    binary trees: elevator beats depth-first, seeks fall with window
    size, and the shared-component table saves exactly the duplicate
    annotation references.
    """
    from repro.cluster.layout import layout_database as lay
    from repro.cluster.policies import InterObjectClustering
    from repro.core.assembly import Assembly as Asm
    from repro.storage.buffer import BufferManager
    from repro.storage.disk import SimulatedDisk
    from repro.storage.store import ObjectStore
    from repro.volcano.iterator import ListSource
    from repro.workloads.hypermodel import (
        generate_hypermodel,
        hypermodel_template,
    )
    from repro.workloads.sharing import measure_sharing

    figure = FigureResult(
        figure_id="Ablation A-8",
        title=f"HyperModel documents ({n_documents} docs x 31 components)",
        x_label="window size",
        y_label=Y_LABEL,
    )
    db = generate_hypermodel(
        n_documents, annotation_probability=0.6, seed=17
    )
    profile = measure_sharing(db.complex_objects, db.shared_pool)

    def run(scheduler: str, window: int):
        disk = SimulatedDisk()
        store = ObjectStore(disk, BufferManager(disk))
        layout = lay(
            db.complex_objects,
            store,
            InterObjectClustering(cluster_pages=2048),
            shared=db.shared_pool,
        )
        operator = Asm(
            ListSource(layout.root_order),
            store,
            hypermodel_template(),
            window_size=window,
            scheduler=scheduler,
        )
        emitted = sum(1 for _ in operator.rows())
        assert emitted == n_documents
        return disk.stats.avg_seek_per_read, operator.stats

    links_ok = True
    for scheduler in ("depth-first", "elevator"):
        for window in windows:
            seek, stats = run(scheduler, window)
            figure.add_point(scheduler, window, seek)
            links_ok = links_ok and (
                stats.shared_links == profile.duplicate_references
            )
    df = figure.ys("depth-first")
    elevator = figure.ys("elevator")
    figure.check(
        "elevator beats depth-first at every window > 1",
        all(e < d for e, d in list(zip(elevator, df))[1:]),
    )
    figure.check(
        "elevator seeks fall with window",
        monotone_decreasing(elevator, slack=0.05),
    )
    figure.check(
        "depth-first window-invariant on documents too",
        roughly_flat(df, tolerance=0.01),
    )
    figure.check(
        "annotation links equal duplicate references exactly", links_ok
    )
    return figure


def ablation_cost_model(
    db_size: int = 1000,
    windows: Sequence[int] = (1, 50),
) -> FigureResult:
    """A-9: do the conclusions survive a full service-time model?

    The paper measures pure seek distance but cites "The Access Time
    Myth" [23]: settle, rotation, and transfer dominate short seeks.
    This ablation re-prices every read under a period-realistic cost
    model and checks that the scheduler ordering (elevator wins with a
    window) is not an artifact of the seek-only metric — while the
    *magnitude* of the win legitimately shrinks.
    """
    from repro.cluster.layout import layout_database as lay
    from repro.cluster.policies import InterObjectClustering
    from repro.core.assembly import Assembly as Asm
    from repro.storage.buffer import BufferManager
    from repro.storage.costmodel import CostedDisk
    from repro.storage.store import ObjectStore
    from repro.volcano.iterator import ListSource
    from repro.workloads.acob import generate_acob
    from repro.workloads.acob import make_template as acob_template

    figure = FigureResult(
        figure_id="Ablation A-9",
        title="scheduler ranking under a full service-time model",
        x_label="window size",
        y_label="avg service time per read (ms)",
    )
    db = generate_acob(db_size, seed=2)

    def run(scheduler: str, window: int):
        disk = CostedDisk()
        store = ObjectStore(disk, BufferManager(disk))
        layout = lay(
            db.complex_objects,
            store,
            InterObjectClustering(
                cluster_pages=512, disk_order=db.type_ids_depth_first()
            ),
            shared=db.shared_pool,
        )
        operator = Asm(
            ListSource(layout.root_order),
            store,
            acob_template(db),
            window_size=window,
            scheduler=scheduler,
        )
        emitted = sum(1 for _ in operator.rows())
        assert emitted == db_size
        return disk.avg_service_time_per_read, disk.stats.avg_seek_per_read

    ratios = {}
    for scheduler in ("depth-first", "elevator"):
        for window in windows:
            service, seek = run(scheduler, window)
            figure.add_point(scheduler, window, round(service, 2))
            ratios[(scheduler, window)] = (service, seek)
    df_service, df_seek = ratios[("depth-first", windows[0])]
    el_service, el_seek = ratios[("elevator", windows[-1])]
    figure.notes.append(
        f"seek-only improvement {df_seek / el_seek:.0f}x shrinks to "
        f"{df_service / el_service:.1f}x under the full model "
        f"(rotation + transfer are scheduler-independent)"
    )
    figure.check(
        "elevator with a window still wins on service time",
        el_service < df_service,
    )
    figure.check(
        "the win is smaller than the seek-only metric suggests",
        (df_service / el_service) < (df_seek / el_seek),
    )
    return figure


#: Registry for the CLI: name -> zero-argument driver.
ALL_FIGURES = {
    "fig11": figure_11,
    "fig13": figure_13,
    "fig14": figure_14,
    "fig15": figure_15,
    "fig16": figure_16,
    "buffer-bound": buffer_pin_bound,
    "df-invariance": depth_first_window_invariance,
    "ablation-scheduler": ablation_scheduler_overhead,
    "ablation-buffer": ablation_buffer_capacity,
    "ablation-sharing": ablation_sharing_degree,
    "ablation-adaptive": ablation_adaptive_scheduler,
    "ablation-parallel": ablation_parallel_contention,
    "ablation-tuning": ablation_window_tuning,
    "ablation-multidevice": ablation_multi_device,
    "ablation-hypermodel": ablation_hypermodel_generality,
    "ablation-costmodel": ablation_cost_model,
}


def _register_baselines() -> None:
    # Imported here to keep module load cheap and avoid cycles.
    from repro.bench.baselines import baseline_tid_scan

    ALL_FIGURES["baseline-tidscan"] = baseline_tid_scan


def _register_service() -> None:
    # Imported here to keep module load cheap and avoid cycles.
    from repro.bench.service import figure_service

    ALL_FIGURES["service"] = figure_service


def _register_batch() -> None:
    # Imported here to keep module load cheap and avoid cycles.
    from repro.bench.batch import figure_batch

    ALL_FIGURES["batch"] = figure_batch


def _register_elapsed() -> None:
    # Imported here to keep module load cheap and avoid cycles.
    from repro.bench.elapsed import figure_elapsed

    ALL_FIGURES["elapsed"] = figure_elapsed


def _register_robustness() -> None:
    # Imported here to keep module load cheap and avoid cycles.
    from repro.bench.robustness import figure_robustness

    ALL_FIGURES["robustness"] = figure_robustness


def _register_fabric() -> None:
    # Imported here to keep module load cheap and avoid cycles.
    from repro.bench.fabric import figure_fabric

    ALL_FIGURES["fabric"] = figure_fabric


def _register_reorg() -> None:
    # Imported here to keep module load cheap and avoid cycles.
    from repro.bench.reorg import figure_reorg

    ALL_FIGURES["reorg"] = figure_reorg


def _register_perf() -> None:
    # Imported here to keep module load cheap and avoid cycles.
    # NOTE: perf reports wall-clock throughput — keep it OUT of the CI
    # bench-regression family list; it is gated by perf_floor instead.
    from repro.bench.perf import figure_perf

    ALL_FIGURES["perf"] = figure_perf


def _register_volcano() -> None:
    # Imported here to keep module load cheap and avoid cycles.
    from repro.bench.volcano import figure_volcano

    ALL_FIGURES["volcano"] = figure_volcano


_register_baselines()
_register_service()
_register_batch()
_register_elapsed()
_register_robustness()
_register_fabric()
_register_reorg()
_register_perf()
_register_volcano()

#: One-line summaries for ``python -m repro.bench --list``.
DESCRIPTIONS = {
    "fig11": "scheduler vs database size at window 1 (Fig. 11A-C)",
    "fig13": "scheduler vs database size at window 100 (Fig. 13A-C)",
    "fig14": "seek distance vs window size (Fig. 14)",
    "fig15": "clustering policies head to head (Fig. 15)",
    "fig16": "assembly vs pointer-chasing baseline (Fig. 16)",
    "buffer-bound": "Section 6.3.3 pin bound: measured vs formula",
    "df-invariance": "depth-first is window-invariant (Section 6.3)",
    "ablation-scheduler": "scheduler choice ablation",
    "ablation-buffer": "buffer capacity ablation",
    "ablation-sharing": "shared-component degree ablation",
    "ablation-adaptive": "adaptive scheduler ablation",
    "ablation-parallel": "parallel assembly contention ablation",
    "ablation-tuning": "window auto-tuning ablation",
    "ablation-multidevice": "multi-device declustering ablation",
    "ablation-hypermodel": "hypermodel generality ablation",
    "ablation-costmodel": "cost model calibration ablation",
    "baseline-tidscan": "TID-scan baseline comparison",
    "service": "device-server service figures S-1..S-4",
    "batch": "batched scheduler figures B-1..B-3",
    "elapsed": "event-driven elapsed-time figures E-1..E-3",
    "robustness": "fault-injection robustness figures R-1..R-2",
    "fabric": "sharded fabric figures F-1..F-3 (load, hedging, shedding)",
    "reorg": "online reorganization figures G-1..G-3 (shifting hot set)",
    "perf": "raw simulator throughput P-1 (wall clock; perf_floor gate)",
    "volcano": "composable assembly figures V-1..V-3 (plans, pushdown, exchange)",
}
