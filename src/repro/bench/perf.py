"""Perf figure P-1: raw simulator throughput on a fixed workload mix.

Every other figure family reports *simulated* quantities (seeks,
service milliseconds, event-clock latency) that are bit-identical run
to run.  This family measures the one thing those figures deliberately
ignore: how many simulated pages and assembled objects the simulator
itself pushes through per wall-clock second.  It exists so raw-speed
regressions (an accidentally quadratic maintenance loop, a hot-path
allocation) are caught by CI instead of silently doubling benchmark
wall time.

The mix is fixed and representative of the four execution styles:

* **plain** — synchronous elevator assembly, inter-object clustering
  (the paper's Section 6 hot loop);
* **batch** — batched elevator assembly over an unclustered layout
  (exercises ``pop_batch`` coalescing and ``fix_many``);
* **piped** — the event-driven pipelined engine over a declustered
  multi-device layout (Section 7);
* **fabric** — the sharded service fabric draining an open-loop
  backlog (replicas, routing, admission).

Wall-clock numbers are machine-dependent, so this family is **never**
part of the bit-identity regression gate: the archived
``results/ci_baseline.json`` series must not contain P-1, and the CI
job that runs it compares against a ``perf_floor`` entry with large
headroom, failing only on gross slowdowns.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.harness import ExperimentConfig, run_experiment
from repro.bench.report import FigureResult

#: Per-scale workload parameters.  ``full`` is the documented mix
#: (docs/perf.md); ``smoke`` is the CI-sized version of the same four
#: workloads, small enough to run in a few seconds on a cold runner.
SCALES: Dict[str, Dict[str, Tuple]] = {
    "full": {
        "plain": (1000, "inter-object", 100, 1),
        "batch": (1000, "unclustered", 100, 8),
        "piped": (400, 4, 25, 256, 2, 4),
        "fabric": (48, 2, 60),
    },
    "smoke": {
        "plain": (300, "inter-object", 50, 1),
        "batch": (300, "unclustered", 50, 8),
        "piped": (200, 4, 25, 128, 2, 4),
        "fabric": (48, 2, 24),
    },
}

#: Workload execution order (also the P-1 x axis).
WORKLOADS = ("plain", "batch", "piped", "fabric")


@dataclass
class PerfSample:
    """Throughput of one workload of the mix.

    ``seconds`` is the best wall-clock time over the configured
    repeats; ``pages`` and ``ops`` are simulated pages read and
    completed operations (assembled objects or served requests) of a
    single pass, which are deterministic per scale.
    """

    workload: str
    pages: int
    ops: int
    seconds: float
    pages_per_sec: float
    ops_per_sec: float


def _run_plain(params: Tuple) -> Tuple[int, int]:
    """One synchronous (or batched) assembly; returns (pages, ops)."""
    db_size, clustering, window, batch_pages = params
    result = run_experiment(
        ExperimentConfig(
            n_complex_objects=db_size,
            clustering=clustering,
            scheduler="elevator",
            window_size=window,
            batch_pages=batch_pages,
        )
    )
    return result.pages_read, result.emitted


def _run_piped(params: Tuple) -> Tuple[int, int]:
    """One pipelined multi-device run; returns (pages, ops)."""
    from repro.bench.elapsed import _pipelined_run

    db_size, n_devices, window_per_device, cluster_pages, depth, batch = params
    engine, _stats, emitted = _pipelined_run(
        db_size,
        n_devices,
        window_per_device,
        cluster_pages,
        issue_depth=depth,
        batch_pages=batch,
    )
    return engine.disk.stats.pages_read, emitted


def _run_fabric(params: Tuple) -> Tuple[int, int]:
    """One fabric backlog drain; returns (pages, ops)."""
    from repro.bench.fabric import _build
    from repro.fabric import open_loop_workload
    from repro.workloads.acob import generate_acob

    db_size, n_shards, requests = params
    db = generate_acob(db_size, seed=2)
    fabric = _build(db, n_shards=n_shards)
    specs = open_loop_workload(fabric, [0.0] * requests, seed=11)
    report = fabric.run(specs)
    pages = sum(
        replica.store.disk.stats.pages_read
        for shard in fabric.shards
        for replica in shard.replicas
    )
    return pages, len(report.served)


#: Workload name -> runner; every runner returns ``(pages, ops)``.
_RUNNERS: Dict[str, Callable[[Tuple], Tuple[int, int]]] = {
    "plain": _run_plain,
    "batch": _run_plain,
    "piped": _run_piped,
    "fabric": _run_fabric,
}


def run_perf_mix(scale: str = "full", repeats: int = 3) -> List[PerfSample]:
    """Time the fixed mix; best-of-``repeats`` wall clock per workload.

    The first repeat may build database/layout caches the later ones
    reuse — exactly like a warm benchmarking process — so best-of
    timing reports the steady-state hot path.
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r} (want one of {list(SCALES)})")
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    samples: List[PerfSample] = []
    for workload in WORKLOADS:
        params = SCALES[scale][workload]
        runner = _RUNNERS[workload]
        best = float("inf")
        pages = ops = 0
        for _ in range(repeats):
            start = time.perf_counter()
            pages, ops = runner(params)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
        best = max(best, 1e-9)
        samples.append(
            PerfSample(
                workload=workload,
                pages=pages,
                ops=ops,
                seconds=round(best, 4),
                pages_per_sec=round(pages / best, 1),
                ops_per_sec=round(ops / best, 1),
            )
        )
    return samples


def figure_perf(scale: str = "full", repeats: int = 3) -> FigureResult:
    """P-1: pages/sec and ops/sec of the fixed mix (wall clock).

    Checks are sanity-only (every workload completed, throughput
    positive) — absolute speed is machine-dependent and is gated
    separately by the CI ``perf_floor`` with wide headroom, never by a
    shape check that could flake on a slow runner.
    """
    figure = FigureResult(
        figure_id="Perf P-1",
        title=f"simulator throughput, fixed {scale} mix (wall clock)",
        x_label="workload (0=plain 1=batch 2=piped 3=fabric)",
        y_label="per wall-clock second",
    )
    samples = run_perf_mix(scale=scale, repeats=repeats)
    for index, sample in enumerate(samples):
        figure.add_point("pages per second", index, sample.pages_per_sec)
        figure.add_point("ops per second", index, sample.ops_per_sec)
        figure.notes.append(
            f"{sample.workload}: {sample.pages} pages / {sample.ops} ops "
            f"in {sample.seconds:.3f}s best-of-{repeats} -> "
            f"{sample.pages_per_sec:.0f} pages/s, "
            f"{sample.ops_per_sec:.0f} ops/s"
        )
    figure.notes.append(
        "wall-clock figure: excluded from the bit-identity regression "
        "gate; CI compares against results/ci_baseline.json perf_floor"
    )
    figure.check(
        "every workload read pages and completed operations",
        all(s.pages > 0 and s.ops > 0 for s in samples),
    )
    figure.check(
        "every workload reports positive finite throughput",
        all(
            0 < s.pages_per_sec < float("inf")
            and 0 < s.ops_per_sec < float("inf")
            for s in samples
        ),
    )
    return figure


def check_floor(
    samples: Sequence[PerfSample], baseline_path: Union[str, Path], scale: str
) -> Tuple[bool, List[str]]:
    """Compare samples against the baseline's ``perf_floor`` entry.

    Returns ``(ok, messages)``.  The floor is deliberately generous
    (>=30% headroom below expected throughput when recorded) so only
    gross regressions trip it; a missing ``perf_floor`` key or a floor
    recorded for a different scale produces a message but passes.
    """
    document = json.loads(Path(baseline_path).read_text())
    floor = document.get("perf_floor")
    messages: List[str] = []
    if not floor:
        messages.append(
            f"{baseline_path}: no perf_floor entry; nothing to enforce"
        )
        return True, messages
    if floor.get("scale") != scale:
        messages.append(
            f"perf_floor was recorded at scale {floor.get('scale')!r}, "
            f"this run used {scale!r}; floor not enforced"
        )
        return True, messages
    ok = True
    floors: Dict[str, float] = floor.get("pages_per_sec", {})
    by_name = {sample.workload: sample for sample in samples}
    for workload, minimum in sorted(floors.items()):
        sample = by_name.get(workload)
        if sample is None:
            messages.append(f"{workload}: floor {minimum} but workload not run")
            ok = False
            continue
        verdict = "ok" if sample.pages_per_sec >= minimum else "BELOW FLOOR"
        messages.append(
            f"{workload}: {sample.pages_per_sec:.0f} pages/s "
            f"(floor {minimum:.0f}) {verdict}"
        )
        ok = ok and sample.pages_per_sec >= minimum
    return ok, messages


def profile_mix(
    scale: str, top: int = 40
) -> Tuple[cProfile.Profile, str]:
    """Run one pass of the mix under cProfile; returns (profile, text).

    ``text`` is the pstats top-``top`` functions by cumulative time.
    Profiling inflates wall time several-fold, so the pass is not
    timed — use it to see *where* the time goes, not how much.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    run_perf_mix(scale=scale, repeats=1)
    profiler.disable()
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats(
        "cumulative"
    ).print_stats(top)
    return profiler, buffer.getvalue()


def _render_table(samples: Sequence[PerfSample]) -> str:
    """Fixed-width throughput table for the CLI."""
    lines = [
        f"{'workload':<8} {'pages':>7} {'ops':>6} {'best_s':>8} "
        f"{'pages/s':>10} {'ops/s':>9}"
    ]
    for sample in samples:
        lines.append(
            f"{sample.workload:<8} {sample.pages:>7} {sample.ops:>6} "
            f"{sample.seconds:>8.3f} {sample.pages_per_sec:>10.0f} "
            f"{sample.ops_per_sec:>9.0f}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: run the fixed mix, optionally gate against a floor.

    Exit status is 0 unless ``--check`` finds a workload below its
    archived ``perf_floor`` (gross-regression gate).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf",
        description="Measure raw simulator throughput on the fixed "
        "workload mix (wall clock; see docs/perf.md).",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="full",
        help="workload sizes: 'full' (documented mix) or 'smoke' (CI)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timing repeats per workload; best-of is reported (default 3)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write the samples as a JSON document to FILE",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="enforce the perf_floor entry of an archived baseline "
        "JSON (results/ci_baseline.json in CI); exit 1 below floor",
    )
    parser.add_argument(
        "--profile-out",
        metavar="FILE",
        help="also run one pass under cProfile and write the pstats "
        "top-functions report to FILE",
    )
    args = parser.parse_args(argv)

    samples = run_perf_mix(scale=args.scale, repeats=args.repeats)
    print(_render_table(samples))

    if args.json:
        target = Path(args.json)
        if str(target.parent) and not target.parent.exists():
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(
                {
                    "scale": args.scale,
                    "repeats": args.repeats,
                    "samples": [asdict(sample) for sample in samples],
                },
                indent=2,
                sort_keys=True,
            )
        )
        print(f"wrote {target}")

    if args.profile_out:
        _profiler, text = profile_mix(args.scale)
        target = Path(args.profile_out)
        if str(target.parent) and not target.parent.exists():
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
        print(f"wrote profile report to {target}")

    if args.check:
        ok, messages = check_floor(samples, args.check, args.scale)
        for message in messages:
            print(message)
        if not ok:
            print("perf floor check FAILED")
            return 1
        print("perf floor check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
