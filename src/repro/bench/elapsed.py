"""Elapsed-time figures E-1..E-3: what overlapped I/O buys.

Every earlier figure charges the disk as if reads happen one at a time
— the right model for the paper's single spindle, but a *sum* over
reads once data is declustered over K devices.  Section 7's sketch
("asynchronous I/O … we expect scalable performance") is about elapsed
time: devices serve their queues concurrently, so the cost of a run is
the **longest device timeline plus exposed CPU**, which the
event-driven engine (:mod:`repro.storage.events`) now measures:

* **E-1** — elapsed milliseconds vs device count, pipelined assembly
  over a declustered layout, against the synchronous sum of per-device
  service time (what the one-read-at-a-time loop would pay for the
  same reads).  The paper's scalability expectation is the check:
  elapsed at 4 devices beats 1 device by more than 1.5x.
* **E-2** — elapsed vs issue-ahead depth at 4 devices with a per-
  reference CPU cost: depth 1 exposes resolution work between
  completions; depth 2 hides it behind in-flight reads.  Deeper
  issue-ahead stops paying (and can mildly regress — early pops
  perturb the per-device elevator sweeps), which the slack in the
  non-increasing check acknowledges.
* **E-3** — per-device utilization of the E-1 run at max devices
  (balance of the declustered layout), plus the engine's ground-truth
  anchor: a single device at issue depth 1 and batch 1 reproduces the
  synchronous :class:`~repro.storage.costmodel.CostedDisk` service-
  time total *bit-for-bit* (also property-tested in the suite).

All drivers accept size overrides so the test suite can run them at
reduced scale; defaults match the other Section 6 figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import get_database
from repro.bench.report import FigureResult, monotone_decreasing
from repro.cluster.layout import (
    LayoutSnapshot,
    layout_database,
    restore_layout,
    snapshot_layout,
)
from repro.cluster.policies import InterObjectClustering
from repro.core.assembly import Assembly
from repro.core.multidevice import (
    MultiDeviceScheduler,
    PipelinedAssembly,
    PipelineStats,
)
from repro.core.schedulers import make_scheduler
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import CostedDisk, CostModel
from repro.storage.events import AsyncIOEngine
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource
from repro.workloads.acob import make_template

#: Device counts swept by E-1 (1 = the synchronous baseline geometry).
DEVICE_COUNTS = (1, 2, 4)
#: Issue-ahead depths swept by E-2.
ISSUE_DEPTHS = (1, 2, 4)
#: Per-reference CPU cost (ms) that E-2 overlaps with in-flight reads.
CPU_MS_PER_REF = 0.2

#: Layout snapshots keyed by ``(db_size, cluster_pages, geometry)``.
#: Geometry is part of the key because placement goes through
#: ``disk.allocate`` — a multi-device disk stripes extents round-robin,
#: so the page images differ per device count.
_LAYOUT_SNAPSHOTS: Dict[Tuple, LayoutSnapshot] = {}
_LAYOUT_CACHE_LIMIT = 8


def _acob_layout(
    db, db_size: int, cluster_pages: int, geometry, store: ObjectStore
):
    """Lay out (or restore from snapshot) the declustered ACOB database.

    ``store`` must be freshly constructed and ``geometry`` must
    identify the disk's allocation behaviour (device count for
    multi-device disks).  The first call per key runs the real load
    phase and captures a snapshot; later calls restore it,
    bit-identical, without re-running placement and encoding.
    """
    key = (db_size, cluster_pages, geometry)
    snapshot = _LAYOUT_SNAPSHOTS.get(key)
    if snapshot is not None:
        return restore_layout(snapshot, store)
    layout = layout_database(
        db.complex_objects,
        store,
        InterObjectClustering(
            cluster_pages=cluster_pages,
            disk_order=db.type_ids_depth_first(),
        ),
        shared=db.shared_pool,
    )
    _LAYOUT_SNAPSHOTS[key] = snapshot_layout(layout)
    while len(_LAYOUT_SNAPSHOTS) > _LAYOUT_CACHE_LIMIT:
        _LAYOUT_SNAPSHOTS.pop(next(iter(_LAYOUT_SNAPSHOTS)))
    return layout


def _pipelined_run(
    db_size: int,
    n_devices: int,
    window_per_device: int,
    cluster_pages: int,
    issue_depth: int,
    batch_pages: int,
    cpu_ms_per_ref: float = 0.0,
) -> Tuple[AsyncIOEngine, PipelineStats, int]:
    """One pipelined assembly over a declustered ACOB layout."""
    db = get_database(db_size, seed=2)
    disk = MultiDeviceDisk(
        n_devices=n_devices,
        pages_per_device=(7 * cluster_pages) // n_devices + cluster_pages + 88,
    )
    store = ObjectStore(disk, BufferManager(disk))
    layout = _acob_layout(
        db, db_size, cluster_pages, ("multi", n_devices), store
    )
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        make_template(db),
        window_size=window_per_device * n_devices,
        scheduler=MultiDeviceScheduler(disk),
    )
    engine = AsyncIOEngine(disk, CostModel())
    pipeline = PipelinedAssembly(
        operator,
        engine,
        issue_depth=issue_depth,
        batch_pages=batch_pages,
        cpu_ms_per_ref=cpu_ms_per_ref,
    )
    emitted = pipeline.run()
    return engine, pipeline.stats, len(emitted)


def _synchronous_run(db_size: int, window: int, cluster_pages: int):
    """The synchronous single-spindle reference: a costed elevator run."""
    db = get_database(db_size, seed=2)
    disk = CostedDisk(n_pages=7 * cluster_pages + cluster_pages + 88)
    store = ObjectStore(disk, BufferManager(disk))
    layout = _acob_layout(db, db_size, cluster_pages, "costed", store)
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        make_template(db),
        window_size=window,
        scheduler=make_scheduler(
            "elevator",
            head_fn=lambda: disk.head_position,
            resident_fn=store.buffer.is_resident,
        ),
    )
    emitted = operator.execute()
    return disk, len(emitted)


def _costed_pipelined_run(db_size: int, window: int, cluster_pages: int):
    """The same layout driven by the engine at depth 1 / batch 1."""
    db = get_database(db_size, seed=2)
    disk = CostedDisk(n_pages=7 * cluster_pages + cluster_pages + 88)
    store = ObjectStore(disk, BufferManager(disk))
    layout = _acob_layout(db, db_size, cluster_pages, "costed", store)
    operator = Assembly(
        ListSource(layout.root_order),
        store,
        make_template(db),
        window_size=window,
        scheduler=make_scheduler(
            "elevator",
            head_fn=lambda: disk.head_position,
            resident_fn=store.buffer.is_resident,
        ),
    )
    engine = AsyncIOEngine(disk, disk.cost_model)
    pipeline = PipelinedAssembly(
        operator, engine, issue_depth=1, batch_pages=1
    )
    emitted = pipeline.run()
    return engine, disk, len(emitted)


def figure_elapsed(
    db_size: int = 1000,
    window_per_device: int = 50,
    cluster_pages: int = 512,
    device_counts: Sequence[int] = DEVICE_COUNTS,
    issue_depths: Sequence[int] = ISSUE_DEPTHS,
    batch_pages: int = 4,
    cpu_ms_per_ref: float = CPU_MS_PER_REF,
) -> List[FigureResult]:
    """Figures E-1..E-3: elapsed time under the event-driven engine."""

    # -- E-1: elapsed time vs device count ---------------------------------
    e1 = FigureResult(
        figure_id="Figure E-1",
        title=f"elapsed time vs devices, pipelined, window={window_per_device}/device",
        x_label="devices",
        y_label="elapsed milliseconds (event clock)",
    )
    elapsed_by_devices: List[float] = []
    utilizations_at_max: List[float] = []
    emitted_ok = True
    for n_devices in device_counts:
        engine, _stats, emitted = _pipelined_run(
            db_size,
            n_devices,
            window_per_device,
            cluster_pages,
            issue_depth=2,
            batch_pages=batch_pages,
        )
        emitted_ok = emitted_ok and emitted == db_size
        e1.add_point("pipelined elapsed (ms)", n_devices, engine.elapsed)
        e1.add_point(
            "synchronous sum of device service (ms)",
            n_devices,
            engine.busy_time(),
        )
        elapsed_by_devices.append(engine.elapsed)
        if n_devices == max(device_counts):
            utilizations_at_max = engine.utilizations()
    e1.check("every run assembles the full database", emitted_ok)
    e1.check(
        "elapsed time falls monotonically with devices",
        monotone_decreasing(elapsed_by_devices),
    )
    speedup = (
        elapsed_by_devices[0] / elapsed_by_devices[-1]
        if elapsed_by_devices[-1] > 0
        else float("inf")
    )
    e1.check(
        f"max devices beat one device by >1.5x (measured {speedup:.2f}x)",
        speedup > 1.5,
    )
    single = e1.series["pipelined elapsed (ms)"][0][1]
    single_sum = e1.series["synchronous sum of device service (ms)"][0][1]
    e1.check(
        "one device cannot overlap: elapsed equals summed service",
        single == single_sum,
    )

    # -- E-2: elapsed time vs issue-ahead depth ----------------------------
    n_devices = max(device_counts)
    e2 = FigureResult(
        figure_id="Figure E-2",
        title=(
            f"elapsed time vs issue depth, {n_devices} devices, "
            f"{cpu_ms_per_ref} ms CPU per reference"
        ),
        x_label="issue-ahead depth (requests per device)",
        y_label="elapsed milliseconds (event clock)",
    )
    elapsed_by_depth: List[float] = []
    for depth in issue_depths:
        engine, _stats, emitted = _pipelined_run(
            db_size,
            n_devices,
            window_per_device,
            cluster_pages,
            issue_depth=depth,
            batch_pages=batch_pages,
            cpu_ms_per_ref=cpu_ms_per_ref,
        )
        e2.add_point("pipelined elapsed (ms)", depth, engine.elapsed)
        elapsed_by_depth.append(engine.elapsed)
        if emitted != db_size:
            e2.check(f"depth {depth} assembles the full database", False)
    e2.check(
        "issue depth 2 hides CPU that depth 1 exposes",
        elapsed_by_depth[1] < elapsed_by_depth[0],
    )
    e2.check(
        "deeper issue-ahead never regresses past 5%",
        monotone_decreasing(elapsed_by_depth, slack=0.05),
    )

    # -- E-3: device utilization + the engine's ground-truth anchor --------
    e3 = FigureResult(
        figure_id="Figure E-3",
        title=f"device utilization at {n_devices} devices (E-1 run)",
        x_label="device",
        y_label="busy fraction of elapsed time",
    )
    for device, utilization in enumerate(utilizations_at_max):
        e3.add_point("utilization", device, utilization)
    e3.check(
        "no device exceeds full utilization",
        all(u <= 1.0 + 1e-9 for u in utilizations_at_max),
    )
    e3.check(
        "declustering keeps every device at least 40% busy",
        all(u >= 0.40 for u in utilizations_at_max),
    )
    sync_disk, sync_emitted = _synchronous_run(
        db_size, window_per_device, cluster_pages
    )
    engine, piped_disk, piped_emitted = _costed_pipelined_run(
        db_size, window_per_device, cluster_pages
    )
    e3.check(
        "single device at depth 1 reproduces the synchronous service "
        "time bit-for-bit",
        engine.elapsed == sync_disk.service_time_total
        and piped_disk.service_time_total == sync_disk.service_time_total
        and piped_emitted == sync_emitted == db_size,
    )
    e3.notes.append(
        f"synchronous service time {sync_disk.service_time_total:.3f} ms; "
        f"event-driven elapsed {engine.elapsed:.3f} ms (exact match "
        f"required)"
    )
    return [e1, e2, e3]
