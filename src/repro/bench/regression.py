"""Regression comparison between benchmark runs.

``python -m repro.bench --json baseline.json`` archives a run; this
module compares a later run against it (programmatically or via
``python -m repro.bench.regression baseline.json current.json``, the
CI gate), flagging:

* figures or series that appeared/disappeared,
* data points whose y value drifted beyond a relative tolerance,
* shape checks that regressed from passing to failing.

The simulated disk is deterministic, so on an unchanged tree the diff
is empty; any drift localizes the change to a figure and series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.bench.export import load_json


@dataclass
class RegressionReport:
    """Differences between a baseline and a current run."""

    missing_figures: List[str] = field(default_factory=list)
    new_figures: List[str] = field(default_factory=list)
    missing_series: List[str] = field(default_factory=list)
    drifted_points: List[str] = field(default_factory=list)
    regressed_checks: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No differences at all?"""
        return not (
            self.missing_figures
            or self.new_figures
            or self.missing_series
            or self.drifted_points
            or self.regressed_checks
        )

    def describe(self) -> str:
        """Human-readable summary."""
        if self.clean:
            return "no regressions: runs are equivalent"
        lines: List[str] = []
        for label, items in (
            ("figures missing from current run", self.missing_figures),
            ("figures new in current run", self.new_figures),
            ("series missing from current run", self.missing_series),
            ("points drifted beyond tolerance", self.drifted_points),
            ("shape checks regressed", self.regressed_checks),
        ):
            if items:
                lines.append(f"{label}:")
                lines.extend(f"  {item}" for item in items)
        return "\n".join(lines)


def _index_figures(document: dict) -> Dict[str, dict]:
    return {
        figure["figure_id"]: figure for figure in document["figures"]
    }


def compare_documents(
    baseline: dict, current: dict, tolerance: float = 0.05
) -> RegressionReport:
    """Diff two result documents (as loaded by ``export.load_json``)."""
    report = RegressionReport()
    old = _index_figures(baseline)
    new = _index_figures(current)

    report.missing_figures = sorted(set(old) - set(new))
    report.new_figures = sorted(set(new) - set(old))

    for figure_id in sorted(set(old) & set(new)):
        old_fig, new_fig = old[figure_id], new[figure_id]
        old_series = old_fig["series"]
        new_series = new_fig["series"]
        for name in old_series:
            if name not in new_series:
                report.missing_series.append(f"{figure_id} / {name}")
                continue
            new_points = {x: y for x, y in new_series[name]}
            for x, old_y in old_series[name]:
                if x not in new_points:
                    report.drifted_points.append(
                        f"{figure_id} / {name} @ x={x}: point removed"
                    )
                    continue
                new_y = new_points[x]
                scale = max(abs(old_y), 1e-9)
                if abs(new_y - old_y) / scale > tolerance:
                    report.drifted_points.append(
                        f"{figure_id} / {name} @ x={x}: "
                        f"{old_y} -> {new_y}"
                    )
        old_violations = set(old_fig.get("violations", []))
        for violation in new_fig.get("violations", []):
            if violation not in old_violations:
                report.regressed_checks.append(
                    f"{figure_id}: {violation}"
                )
    return report


def compare_files(
    baseline_path: Union[str, Path],
    current_path: Union[str, Path],
    tolerance: float = 0.05,
) -> RegressionReport:
    """Diff two JSON exports on disk."""
    return compare_documents(
        load_json(baseline_path), load_json(current_path), tolerance
    )


def timing_deltas(
    baseline: dict, current: dict, threshold: float = 0.25
) -> List[str]:
    """Warn-only wall-clock drift between two runs' ``timings=``.

    Returns one line per driver whose harness wall time moved by more
    than ``threshold`` (relative) in either direction.  Timings are
    machine-dependent, so these lines are informational — they are
    printed by the CLI but **never** affect the gate's exit status.
    """
    old = baseline.get("timings") or {}
    new = current.get("timings") or {}
    lines: List[str] = []
    for name in sorted(set(old) & set(new)):
        old_s, new_s = old[name], new[name]
        if old_s <= 0:
            continue
        drift = (new_s - old_s) / old_s
        if abs(drift) > threshold:
            lines.append(
                f"  {name}: {old_s:.1f}s -> {new_s:.1f}s ({drift:+.0%})"
            )
    return lines


def main(argv: Union[Sequence[str], None] = None) -> int:
    """CLI: compare a current export against an archived baseline.

    Exit status 0 when the runs are equivalent, 1 on any regression —
    which is exactly what a CI step wants.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regression",
        description="Compare two 'python -m repro.bench --json' exports.",
    )
    parser.add_argument("baseline", help="archived baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative y drift allowed per point (default 0.05)",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_json(args.baseline)
        current = load_json(args.current)
    except FileNotFoundError as exc:
        parser.error(f"cannot read results file: {exc.filename}")
    report = compare_documents(baseline, current, args.tolerance)
    print(report.describe())
    drift = timing_deltas(baseline, current)
    if drift:
        print(
            "wall-clock timing drift (warn-only, machine-dependent, "
            "never gates):"
        )
        for line in drift:
            print(line)
    return 0 if report.clean else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
