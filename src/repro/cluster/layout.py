"""Layout engine: write a generated database onto the simulated disk.

``layout_database`` is the load phase of every experiment: a
:class:`~repro.cluster.policies.ClusteringPolicy` chooses a page for
each object, the objects are written there, and the disk/buffer
statistics are reset so measurement starts clean — mirroring the
paper's separation of database creation from benchmark runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.policies import ClusteringPolicy, Placement
from repro.objects.model import ComplexObjectDef, ObjectDef, validate_database
from repro.storage.disk import Extent
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore


@dataclass
class LayoutSnapshot:
    """Frozen post-layout state, sufficient to clone a laid-out database.

    Layouts are deterministic, so benchmarks that revisit a parameter
    point can capture the result once (:func:`snapshot_layout`) and
    restore it onto a fresh disk/store (:func:`restore_layout`) instead
    of re-running placement and encoding.  Held values are immutable or
    copied on restore, so snapshots never leak state between runs.
    """

    pages: Dict[int, bytes]
    next_free: int
    directory: Dict
    decoded: Dict
    policy_name: str
    roots: List[Oid]
    root_order: List[Oid]
    extents: Dict[str, Extent]
    object_count: int


def snapshot_layout(layout: "LayoutResult") -> LayoutSnapshot:
    """Capture the post-layout disk image and bookkeeping of ``layout``.

    Dirty buffer frames are flushed first: online reorganization
    (:mod:`repro.cluster.reorg`) migrates objects through the buffer,
    so without the flush a snapshot taken after migrations would dump
    pre-migration page images while the directory already points at the
    new addresses.  Right after :func:`layout_database` the buffer is
    clean and the flush writes nothing, so pre-reorg snapshots are
    byte-for-byte what they always were.
    """
    store = layout.store
    store.buffer.flush_all()
    pages, next_free = store.disk.dump_state()
    return LayoutSnapshot(
        pages=pages,
        next_free=next_free,
        directory=store.directory.dump(),
        decoded=store.dump_decoded(),
        policy_name=layout.policy_name,
        roots=list(layout.roots),
        root_order=list(layout.root_order),
        extents=dict(layout.extents),
        object_count=layout.object_count,
    )


def restore_layout(
    snapshot: LayoutSnapshot, store: ObjectStore
) -> "LayoutResult":
    """Reconstitute a :class:`LayoutResult` from ``snapshot`` onto ``store``.

    ``store`` (and its disk/buffer) must be freshly constructed — the
    state matches what :func:`layout_database` leaves behind, which
    resets head position and all statistics.  The restored layout is
    bit-identical to a rebuild of the same parameter point.
    """
    store.disk.load_state(snapshot.pages, snapshot.next_free)
    store.directory.load(snapshot.directory)
    store.load_decoded(snapshot.decoded)
    return LayoutResult(
        store=store,
        policy_name=snapshot.policy_name,
        roots=list(snapshot.roots),
        root_order=list(snapshot.root_order),
        extents=dict(snapshot.extents),
        object_count=snapshot.object_count,
    )


@dataclass
class LayoutResult:
    """A database resident on disk, ready to be assembled.

    ``root_order`` is the order the assembly operator's *input* yields
    root OIDs — a seeded random permutation by default, modelling an
    unordered OID set coming from an index or unclustered scan (if the
    input arrived in physical order there would be nothing for the
    scheduler to do).
    """

    store: ObjectStore
    policy_name: str
    roots: List[Oid]
    root_order: List[Oid]
    extents: Dict[str, Extent] = field(default_factory=dict)
    object_count: int = 0

    def pages_spanned(self) -> int:
        """Total pages across all extents the layout claimed."""
        return sum(extent.length for extent in self.extents.values())


def layout_database(
    database: Sequence[ComplexObjectDef],
    store: ObjectStore,
    policy: ClusteringPolicy,
    shared: Optional[Dict[Oid, ObjectDef]] = None,
    seed: int = 0,
    shuffle_roots: bool = True,
    validate: bool = True,
) -> LayoutResult:
    """Place ``database`` on ``store`` under ``policy`` and reset stats.

    ``seed`` drives both the policy's internal randomness (slot
    shuffles) and the root-order permutation, so experiments are
    reproducible run to run.
    """
    shared = shared or {}
    if validate:
        validate_database(database, shared)
    rng = random.Random(seed)
    placement: Placement = policy.place(database, shared, store, rng)

    lookup: Dict[Oid, ObjectDef] = {}
    for cobj in database:
        lookup.update(cobj.objects)
    lookup.update(shared)

    # Group placements by page so each page is built and written once.
    by_page: Dict[int, List] = {}
    page_order: List[int] = []
    for oid, page_id in placement.pages:
        if page_id not in by_page:
            by_page[page_id] = []
            page_order.append(page_id)
        by_page[page_id].append((oid, lookup[oid].to_record()))
    for page_id in page_order:
        store.store_page(page_id, by_page[page_id])

    roots = [cobj.root for cobj in database]
    root_order = list(roots)
    if shuffle_roots:
        rng.shuffle(root_order)

    store.disk.reset_stats()
    store.buffer.drop_clean()
    store.buffer.reset_stats()

    return LayoutResult(
        store=store,
        policy_name=policy.name,
        roots=roots,
        root_order=root_order,
        extents=dict(placement.extents),
        object_count=len(placement.pages),
    )
