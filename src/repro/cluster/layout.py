"""Layout engine: write a generated database onto the simulated disk.

``layout_database`` is the load phase of every experiment: a
:class:`~repro.cluster.policies.ClusteringPolicy` chooses a page for
each object, the objects are written there, and the disk/buffer
statistics are reset so measurement starts clean — mirroring the
paper's separation of database creation from benchmark runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.policies import ClusteringPolicy, Placement
from repro.objects.model import ComplexObjectDef, ObjectDef, validate_database
from repro.storage.disk import Extent
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore


@dataclass
class LayoutResult:
    """A database resident on disk, ready to be assembled.

    ``root_order`` is the order the assembly operator's *input* yields
    root OIDs — a seeded random permutation by default, modelling an
    unordered OID set coming from an index or unclustered scan (if the
    input arrived in physical order there would be nothing for the
    scheduler to do).
    """

    store: ObjectStore
    policy_name: str
    roots: List[Oid]
    root_order: List[Oid]
    extents: Dict[str, Extent] = field(default_factory=dict)
    object_count: int = 0

    def pages_spanned(self) -> int:
        """Total pages across all extents the layout claimed."""
        return sum(extent.length for extent in self.extents.values())


def layout_database(
    database: Sequence[ComplexObjectDef],
    store: ObjectStore,
    policy: ClusteringPolicy,
    shared: Optional[Dict[Oid, ObjectDef]] = None,
    seed: int = 0,
    shuffle_roots: bool = True,
    validate: bool = True,
) -> LayoutResult:
    """Place ``database`` on ``store`` under ``policy`` and reset stats.

    ``seed`` drives both the policy's internal randomness (slot
    shuffles) and the root-order permutation, so experiments are
    reproducible run to run.
    """
    shared = shared or {}
    if validate:
        validate_database(database, shared)
    rng = random.Random(seed)
    placement: Placement = policy.place(database, shared, store, rng)

    lookup: Dict[Oid, ObjectDef] = {}
    for cobj in database:
        lookup.update(cobj.objects)
    lookup.update(shared)

    # Group placements by page so each page is built and written once.
    by_page: Dict[int, List] = {}
    page_order: List[int] = []
    for oid, page_id in placement.pages:
        if page_id not in by_page:
            by_page[page_id] = []
            page_order.append(page_id)
        by_page[page_id].append((oid, lookup[oid].to_record()))
    for page_id in page_order:
        store.store_page(page_id, by_page[page_id])

    roots = [cobj.root for cobj in database]
    root_order = list(roots)
    if shuffle_roots:
        rng.shuffle(root_order)

    store.disk.reset_stats()
    store.buffer.drop_clean()
    store.buffer.reset_stats()

    return LayoutResult(
        store=store,
        policy_name=policy.name,
        roots=roots,
        root_order=root_order,
        extents=dict(placement.extents),
        object_count=len(placement.pages),
    )
