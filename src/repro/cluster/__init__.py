"""Clustering policies and the layout engine (paper Section 6.1)."""

from repro.cluster.analysis import (
    ExtentFill,
    LayoutProfile,
    describe_profile,
    profile_layout,
)
from repro.cluster.layout import (
    LayoutResult,
    LayoutSnapshot,
    layout_database,
    restore_layout,
    snapshot_layout,
)
from repro.cluster.policies import (
    DEFAULT_CLUSTER_PAGES,
    POLICIES,
    ClusteringPolicy,
    InterObjectClustering,
    IntraObjectClustering,
    Placement,
    Unclustered,
)
from repro.cluster.reorg import (
    AffinitySketch,
    DeviceIdleTracker,
    Migration,
    MigrationPlan,
    Reorganizer,
    ReorgPlanner,
    ReorgPolicy,
    ReorgRound,
)

__all__ = [
    "DEFAULT_CLUSTER_PAGES",
    "POLICIES",
    "AffinitySketch",
    "ClusteringPolicy",
    "DeviceIdleTracker",
    "ExtentFill",
    "InterObjectClustering",
    "IntraObjectClustering",
    "LayoutProfile",
    "LayoutResult",
    "LayoutSnapshot",
    "Migration",
    "MigrationPlan",
    "Placement",
    "Reorganizer",
    "ReorgPlanner",
    "ReorgPolicy",
    "ReorgRound",
    "Unclustered",
    "describe_profile",
    "layout_database",
    "profile_layout",
    "restore_layout",
    "snapshot_layout",
]
