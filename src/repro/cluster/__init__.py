"""Clustering policies and the layout engine (paper Section 6.1)."""

from repro.cluster.analysis import (
    ExtentFill,
    LayoutProfile,
    describe_profile,
    profile_layout,
)
from repro.cluster.layout import LayoutResult, layout_database
from repro.cluster.policies import (
    DEFAULT_CLUSTER_PAGES,
    POLICIES,
    ClusteringPolicy,
    InterObjectClustering,
    IntraObjectClustering,
    Placement,
    Unclustered,
)

__all__ = [
    "DEFAULT_CLUSTER_PAGES",
    "POLICIES",
    "ClusteringPolicy",
    "ExtentFill",
    "InterObjectClustering",
    "LayoutProfile",
    "describe_profile",
    "profile_layout",
    "IntraObjectClustering",
    "LayoutResult",
    "Placement",
    "Unclustered",
    "layout_database",
]
