"""Online adaptive re-clustering from observed access traces.

The paper fixes three *static* clusterings and lets the assembly
window/scheduler machinery compensate for bad placement.  Darmont et
al. (PAPERS.md: "Dynamic Clustering in OODBs: An Advocacy for
Simplicity") argue the opposite side of the trade: once the access
pattern drifts, a simple statistics-driven *online* reorganization
beats any frozen layout.  This module is that reorganizer, built from
ingredients earlier PRs landed:

* :class:`AffinitySketch` — a decayed pairwise co-access sketch fed
  from the device server's reference-resolution stream.  Objects
  resolved for the same client request accrue affinity — including
  members of *different* complex objects a recurring query touches
  together, which no structural clustering can see; per-round decay
  forgets yesterday's hot set.
* :class:`ReorgPlanner` — greedy agglomeration of hot co-accessed
  objects into page-sized clusters (Darmont's advocacy for simplicity:
  no graph partitioning, just sorted edges).
* :class:`DeviceIdleTracker` — a cost-model clock over the physical
  read stream (via :meth:`~repro.storage.disk.SimulatedDisk.
  add_io_observer`), keeping per-device busy intervals so migration
  I/O can be placed — and *proven*, interval against interval — inside
  idle windows.
* :class:`Reorganizer` — prices each migration batch through
  :class:`~repro.storage.costmodel.CostModel`, executes it through
  :meth:`~repro.storage.store.ObjectStore.migrate` (buffer-coherent,
  target-insert-before-source-delete), and records the new extents on
  the bound :class:`~repro.cluster.layout.LayoutResult`.

Safety contract (property-tested in ``tests/cluster``): with no policy
attached nothing here runs and the service is bit-identical to before;
with a policy attached every assembled object is byte-equal to the
unreorganized run — migrations move bytes, never change them.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.errors import ServiceStateError, TransientReadError
from repro.storage.costmodel import CostModel
from repro.storage.disk import Extent
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore

#: Canonical (unordered) pair key of two OIDs.
PairKey = Tuple[Oid, Oid]


def _pair(a: Oid, b: Oid) -> PairKey:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class ReorgPolicy:
    """Knobs of the background reorganizer (all deterministic).

    The defaults are sized for service workloads of hundreds of
    objects per round; tests shrink ``min_observations`` /
    ``min_weight`` to force migrations at toy scale.
    """

    #: multiplicative affinity decay applied once per reorg round.
    decay: float = 0.5
    #: edges lighter than this never seed or grow a cluster.
    min_weight: float = 2.0
    #: objects moved per round at most (migration I/O budget).
    max_migrations_per_round: int = 128
    #: reference resolutions observed before the first round may run.
    min_observations: int = 64
    #: live co-access groups tracked (older groups fall off an LRU).
    group_capacity: int = 512
    #: co-access horizon within one group: a reference pairs with at
    #: most this many preceding references of the same context, so one
    #: giant query costs O(window) per observation, not O(query).
    affinity_window: int = 64
    #: decayed edge weights below this are pruned (bounded memory).
    prune_epsilon: float = 0.05
    #: transient read faults absorbed per migrated page before the
    #: round aborts (maintenance I/O retries for itself; client retry
    #: budgets belong to client requests).
    migration_retries: int = 8
    #: run a round automatically when the service drains (else only
    #: explicit ``reorganize()`` calls do).
    auto: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.decay <= 1.0:
            raise ServiceStateError("decay must be in (0, 1]")
        if self.min_weight <= 0:
            raise ServiceStateError("min_weight must be positive")
        if self.max_migrations_per_round <= 0:
            raise ServiceStateError(
                "max_migrations_per_round must be positive"
            )
        if self.group_capacity <= 0:
            raise ServiceStateError("group_capacity must be positive")
        if self.affinity_window < 2:
            raise ServiceStateError("affinity_window must be at least 2")
        if self.migration_retries < 0:
            raise ServiceStateError(
                "migration_retries must be non-negative"
            )


class AffinitySketch:
    """Decayed pairwise co-access statistics over observed references.

    ``observe(group_key, oid)`` is called once per reference the device
    server resolves; the group key identifies one co-access *context* —
    the client request the reference was fetched for — so objects
    repeatedly touched by the same recurring query gain affinity even
    when they belong to different complex objects, which is precisely
    what no structural (static) clustering can see.  Within a context,
    a reference pairs with at most the last ``affinity_window``
    references, bounding one observation at O(window).  Per-round
    :meth:`decay` ages every weight (by ``policy.decay``) and prunes
    the dust, so the sketch tracks the *current* hot set in bounded
    memory.  All iteration orders are insertion orders and all
    tie-breaks are OID-lexicographic — the sketch is deterministic.
    """

    def __init__(self, policy: ReorgPolicy) -> None:
        self._policy = policy
        self._weights: Dict[PairKey, float] = {}
        self._heat: Dict[Oid, float] = {}
        self._groups: "OrderedDict[Hashable, List[Oid]]" = OrderedDict()
        #: references observed since construction (never decayed).
        self.observations = 0

    def __len__(self) -> int:
        return len(self._weights)

    def observe(self, group_key: Hashable, oid: Oid) -> None:
        """Record that ``oid`` was resolved for the group's object."""
        self.observations += 1
        self._heat[oid] = self._heat.get(oid, 0.0) + 1.0
        group = self._groups.get(group_key)
        if group is None:
            while len(self._groups) >= self._policy.group_capacity:
                self._groups.popitem(last=False)
            group = []
            self._groups[group_key] = group
        else:
            self._groups.move_to_end(group_key)
        window = self._policy.affinity_window
        recent = group[-window:]
        if oid in recent:
            return
        weights = self._weights
        for other in recent:
            key = _pair(oid, other)
            weights[key] = weights.get(key, 0.0) + 1.0
        group.append(oid)
        if len(group) > window:
            del group[: len(group) - window]

    def heat_of(self, oid: Oid) -> float:
        """Decayed access count of one object."""
        return self._heat.get(oid, 0.0)

    def decay(self) -> None:
        """Age every statistic by one round; prune negligible entries."""
        factor = self._policy.decay
        epsilon = self._policy.prune_epsilon
        self._weights = {
            key: aged
            for key, weight in self._weights.items()
            if (aged := weight * factor) >= epsilon
        }
        self._heat = {
            oid: aged
            for oid, heat in self._heat.items()
            if (aged := heat * factor) >= epsilon
        }

    def hot_edges(self) -> List[Tuple[PairKey, float]]:
        """Edges at or above ``min_weight``, heaviest first.

        Ties break on the OID pair itself, so two sketches fed the same
        stream plan the same migrations.
        """
        threshold = self._policy.min_weight
        edges = [
            (key, weight)
            for key, weight in self._weights.items()
            if weight >= threshold
        ]
        edges.sort(key=lambda item: (-item[1], item[0]))
        return edges


class ReorgPlanner:
    """Greedy clustering of hot co-accessed objects into page groups.

    Sorted-edge agglomeration (heaviest affinity first): an edge joins
    its endpoints into one cluster when the merged cluster still fits
    one page.  Clusters whose members already share a single physical
    page are dropped — migrating them buys nothing — and the rest are
    ordered by total affinity so the migration budget goes to the
    hottest structures first.
    """

    def __init__(self, policy: ReorgPolicy) -> None:
        self._policy = policy

    def plan(
        self,
        sketch: AffinitySketch,
        page_of: Callable[[Oid], int],
        objects_per_page: int,
    ) -> List[List[Oid]]:
        """Page-sized clusters worth migrating, hottest first."""
        cluster_of: Dict[Oid, int] = {}
        members: Dict[int, List[Oid]] = {}
        weight_of: Dict[int, float] = {}
        next_id = 0
        for (a, b), weight in sketch.hot_edges():
            ca = cluster_of.get(a)
            cb = cluster_of.get(b)
            if ca is None and cb is None:
                if objects_per_page < 2:
                    continue
                cluster_of[a] = cluster_of[b] = next_id
                members[next_id] = [a, b]
                weight_of[next_id] = weight
                next_id += 1
            elif ca is None or cb is None:
                target, newcomer = (cb, a) if ca is None else (ca, b)
                if len(members[target]) < objects_per_page:
                    cluster_of[newcomer] = target
                    members[target].append(newcomer)
                    weight_of[target] += weight
            elif ca != cb:
                low, high = (ca, cb) if ca < cb else (cb, ca)
                if len(members[low]) + len(members[high]) <= objects_per_page:
                    for oid in members[high]:
                        cluster_of[oid] = low
                    members[low].extend(members.pop(high))
                    weight_of[low] += weight_of.pop(high) + weight
            else:
                weight_of[ca] += weight

        planned: List[Tuple[float, int, List[Oid]]] = []
        budget = self._policy.max_migrations_per_round
        for cluster_id, oids in members.items():
            if len(oids) < 2 or len(oids) > budget:
                continue
            if len({page_of(oid) for oid in oids}) <= 1:
                continue  # already co-located: nothing to gain
            planned.append((-weight_of[cluster_id], cluster_id, sorted(oids)))
        planned.sort()

        clusters: List[List[Oid]] = []
        migrations = 0
        for _neg_weight, _cluster_id, oids in planned:
            if migrations + len(oids) > budget:
                break
            clusters.append(oids)
            migrations += len(oids)
        return clusters


@dataclass(frozen=True)
class Migration:
    """One planned object move."""

    oid: Oid
    from_page: int
    to_page: int


@dataclass
class MigrationPlan:
    """A priced batch of migrations onto one fresh extent."""

    migrations: List[Migration] = field(default_factory=list)
    clusters: int = 0
    #: objects planned around because their source page was pinned.
    skipped_pinned: int = 0
    extent: Optional[Extent] = None
    #: cost-model milliseconds the batch's page visits are expected to
    #: take (source and target pages in execution order).
    priced_ms: float = 0.0

    def __bool__(self) -> bool:
        return bool(self.migrations)


@dataclass
class ReorgRound:
    """What one executed reorganization round did and cost."""

    migrations: int = 0
    clusters: int = 0
    #: objects whose source page was pinned and were left in place.
    skipped_pinned: int = 0
    extent: Optional[Extent] = None
    #: cost-model estimate of the batch (from :class:`MigrationPlan`).
    priced_ms: float = 0.0
    #: physical read seeks / pages the migration actually performed.
    seek_delta: int = 0
    pages_read_delta: int = 0
    #: distinct pages written to (sources tombstoned + targets filled).
    pages_touched: int = 0
    #: the round stopped early: a page kept faulting past the policy's
    #: ``migration_retries`` budget.  Completed migrations stand (each
    #: is individually transactional); the rest wait for a later round.
    aborted: bool = False


class DeviceIdleTracker:
    """Per-device busy intervals on a cost-model clock.

    Attaches to the disk's additive read-observer tap (the same tap the
    observability layer uses — strictly observational) and prices every
    physical read with the cost model, appending one ``[start, end)``
    interval per read to the owning device's timeline.  Each device's
    clock advances read-by-read, so the timeline is exactly the busy
    schedule an event-driven engine would have produced for the same
    read sequence.

    While the :class:`Reorganizer` holds :meth:`migration_guard`, reads
    land in a separate per-device *migration* ledger instead.  A
    migration interval starts at the device's current ``busy_until``
    watermark — the detected idle window — which is what makes the
    no-overlap property (:meth:`overlaps`) checkable rather than merely
    asserted.
    """

    def __init__(
        self, disk, cost_model: Optional[CostModel] = None
    ) -> None:
        self._disk = disk
        self.cost_model = cost_model or CostModel()
        if isinstance(disk, MultiDeviceDisk):
            self._n_devices = disk.n_devices
            self._pages_per_device: Optional[int] = disk.pages_per_device
        else:
            self._n_devices = 1
            self._pages_per_device = None
        self._busy_until = [0.0] * self._n_devices
        self.busy_intervals: List[List[Tuple[float, float]]] = [
            [] for _ in range(self._n_devices)
        ]
        self.migration_intervals: List[List[Tuple[float, float]]] = [
            [] for _ in range(self._n_devices)
        ]
        self._migrating = False
        self._observer = disk.add_io_observer(self._observe)

    def detach(self) -> None:
        """Stop watching the disk (idempotent)."""
        self._disk.remove_io_observer(self._observer)

    @property
    def n_devices(self) -> int:
        """Devices tracked (1 on a single-spindle disk)."""
        return self._n_devices

    def device_of(self, page_id: int) -> int:
        """Which device timeline a page belongs to."""
        if self._pages_per_device is None:
            return 0
        return page_id // self._pages_per_device

    def busy_until(self, device: int) -> float:
        """The device's idle watermark: end of its last priced I/O."""
        return self._busy_until[device]

    def _observe(self, start_page: int, distance: int, n_pages: int) -> None:
        device = self.device_of(start_page)
        duration = self.cost_model.run_service_time(distance, n_pages)
        begin = self._busy_until[device]
        interval = (begin, begin + duration)
        if self._migrating:
            self.migration_intervals[device].append(interval)
        else:
            self.busy_intervals[device].append(interval)
        self._busy_until[device] = interval[1]

    @contextmanager
    def migration_guard(self) -> Iterator[None]:
        """Route reads to the migration ledger while held."""
        self._migrating = True
        try:
            yield
        finally:
            self._migrating = False

    def overlaps(self) -> List[Tuple[int, Tuple[float, float], Tuple[float, float]]]:
        """Every (device, busy, migration) interval pair that overlaps.

        Empty by construction — migration I/O starts at the device's
        idle watermark — and the property suite asserts exactly that.
        """
        violations = []
        for device in range(self._n_devices):
            for busy in self.busy_intervals[device]:
                for migration in self.migration_intervals[device]:
                    if busy[0] < migration[1] and migration[0] < busy[1]:
                        violations.append((device, busy, migration))
        return violations


class Reorganizer:
    """Background page reorganizer over one object store.

    The device server feeds :meth:`observe` from its resolution stream;
    when the service drains (the idle window — no pending references,
    no in-flight batches), :meth:`run_round` plans, prices, and
    executes one migration batch.  Execution is conservative:

    * only runs when ``idle_check`` (the server's ``pending_total() ==
      0``) agrees the pool is quiescent — pooled references carry page
      ids as scheduling keys, and migrating under a live sweep would
      let them go stale;
    * skips any object whose source *page* is currently pinned (a
      partially assembled object may still hold it);
    * targets a single fresh extent per round, allocated contiguously,
      so one round's hot clusters land physically adjacent — the seek
      win is between clusters as much as within them.
    """

    def __init__(
        self,
        store: ObjectStore,
        policy: Optional[ReorgPolicy] = None,
        cost_model: Optional[CostModel] = None,
        idle_check: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.store = store
        self.policy = policy or ReorgPolicy()
        self.sketch = AffinitySketch(self.policy)
        self.planner = ReorgPlanner(self.policy)
        self.tracker = DeviceIdleTracker(store.disk, cost_model)
        self._idle_check = idle_check
        self._layout = None
        self._objects_per_page = store.objects_per_page()
        #: lifetime totals, folded into ServiceMetrics by the service.
        self.rounds = 0
        self.migrations_total = 0

    def bind_layout(self, layout) -> "Reorganizer":
        """Record migration extents on a :class:`~repro.cluster.layout.
        LayoutResult` (optional; benches bind it for bookkeeping)."""
        self._layout = layout
        return self

    # -- statistics ingestion -------------------------------------------------

    def observe(self, group_key: Hashable, oid: Oid) -> None:
        """One resolved reference: ``oid`` fetched for ``group_key``."""
        self.sketch.observe(group_key, oid)

    def ready(self) -> bool:
        """Enough observations for a round to be worth planning?"""
        return self.sketch.observations >= self.policy.min_observations

    # -- planning -------------------------------------------------------------

    def plan_round(self) -> MigrationPlan:
        """Plan (and price) the next migration batch without executing.

        Pinned source pages are planned around here, not at execution
        time, so the plan that is priced is the plan that runs.
        """
        clusters = self.planner.plan(
            self.sketch, self.store.page_of, self._objects_per_page
        )
        plan = MigrationPlan()
        if not clusters:
            return plan
        buffer = self.store.buffer
        movable: List[List[Tuple[Oid, int]]] = []
        skipped = 0
        for cluster in clusters:
            kept: List[Tuple[Oid, int]] = []
            for oid in cluster:
                source = self.store.page_of(oid)
                if buffer.pin_count(source) > 0:
                    skipped += 1
                    continue
                kept.append((oid, source))
            if len(kept) >= 2 and len({page for _o, page in kept}) > 1:
                movable.append(kept)
        plan.skipped_pinned = skipped
        if not movable:
            return plan
        extent = self.store.disk.allocate(len(movable))
        plan.extent = extent
        plan.clusters = len(movable)
        for index, kept in enumerate(movable):
            target = extent.page_at(index)
            for oid, source in kept:
                plan.migrations.append(Migration(oid, source, target))
        # Execute in source-page sweep order: one elevator pass over the
        # scattered sources instead of a source→target zigzag per
        # object.  Target pages all sit in the round's one fresh extent
        # and stay buffer-resident once materialized, so the batch's
        # head travel is dominated by the single source sweep.
        plan.migrations.sort(
            key=lambda m: (m.from_page, m.to_page, m.oid)
        )
        plan.priced_ms = self._price(plan.migrations)
        return plan

    def _price(self, migrations: List[Migration]) -> float:
        """Cost-model milliseconds for the batch's expected reads.

        Each distinct page faults at most once per batch: sources are
        visited in one sweep (consecutive migrations reuse a page still
        buffered), and a target page stays resident after its first
        materialization — the batch working set (current source plus
        the round's few targets) fits any buffer that can assemble.
        """
        cost = 0.0
        position: Optional[int] = None
        seen = set()
        model = self.tracker.cost_model
        for migration in migrations:
            for page in (migration.from_page, migration.to_page):
                if page in seen:
                    continue
                seen.add(page)
                distance = 0 if position is None else abs(page - position)
                cost += model.run_service_time(distance, 1)
                position = page
        return cost

    # -- execution ------------------------------------------------------------

    @dataclass
    class _Skip:
        """Why :meth:`run_round` did nothing (diagnostics)."""

        reason: str

    def run_round(self, force: bool = False) -> ReorgRound:
        """Plan and execute one migration batch inside the idle window.

        Returns an empty :class:`ReorgRound` (zero migrations) when the
        sketch is not :meth:`ready` (unless ``force``), the pool is not
        idle, or the planner finds nothing worth moving.  The sketch
        decays once per *executed* planning pass, so hot sets age with
        reorganization activity, not with wall time.
        """
        round_report = ReorgRound()
        if not force and not self.ready():
            return round_report
        if self._idle_check is not None and not self._idle_check():
            return round_report
        plan = self.plan_round()
        round_report.skipped_pinned = plan.skipped_pinned
        self.sketch.decay()
        if not plan:
            return round_report
        self.rounds += 1
        stats = self.store.disk.stats
        seek_before = stats.read_seek_total
        pages_before = stats.pages_read
        touched = set()
        with self.tracker.migration_guard():
            for migration in plan.migrations:
                if not self._execute(migration):
                    round_report.aborted = True
                    break
                touched.add(migration.from_page)
                touched.add(migration.to_page)
                round_report.migrations += 1
        stats = self.store.disk.stats
        round_report.clusters = plan.clusters
        round_report.extent = plan.extent
        round_report.priced_ms = plan.priced_ms
        round_report.seek_delta = stats.read_seek_total - seek_before
        round_report.pages_read_delta = stats.pages_read - pages_before
        round_report.pages_touched = len(touched)
        self.migrations_total += round_report.migrations
        if self._layout is not None and plan.extent is not None:
            self._layout.extents[f"reorg-{self.rounds}"] = plan.extent
        return round_report

    def _execute(self, migration: Migration) -> bool:
        """Run one migration, absorbing transient read faults.

        Both pages are warmed with retried buffer fixes first, so
        :meth:`~repro.storage.store.ObjectStore.migrate` mutates only
        buffer-resident pages — a fault can then never strike between
        the target insert and the source delete (the buffer holds at
        least two frames on any configuration that can assemble).
        Returns ``False`` when a page keeps faulting past the policy's
        ``migration_retries`` budget; the object stays at its old
        address and the round aborts.
        """
        for page_id in (migration.from_page, migration.to_page):
            if not self._warm(page_id):
                return False
        self.store.migrate(migration.oid, migration.to_page)
        return True

    def _warm(self, page_id: int) -> bool:
        """Fix ``page_id`` once, retrying transient read faults."""
        for _attempt in range(self.policy.migration_retries + 1):
            try:
                with self.store.buffer.fixed(page_id):
                    return True
            except TransientReadError:
                continue
        return False
