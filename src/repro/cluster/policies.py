"""Clustering policies: unclustered, inter-object, intra-object.

Section 6.1 of the paper defines three data-placement policies (their
Figures 8–10):

* **Unclustered** — "produced by randomly placing parts of each complex
  object on the disk".
* **Inter-object clustering** — "places objects of the same type, or
  class, together … there is no implied order within a cluster".
  Figure 12 adds the physical detail the experiments depend on: each
  cluster extent is *larger than any database size used in the
  benchmarks* (so seek distance is independent of database size) and
  the clusters are *not* physically placed in the order breadth-first
  scheduling visits them — the artifact behind Figure 11A.
* **Intra-object clustering** — parts of one composite object are
  placed together (the common form used by ORION/O2-style systems).

A policy maps every object of a generated database to a physical page;
:mod:`repro.cluster.layout` then writes the objects there.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExtentError, StorageError
from repro.objects.model import ComplexObjectDef, ObjectDef
from repro.storage.disk import Extent
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore, PagePlanner

#: Default pages per type cluster for inter-object clustering.  Large
#: enough for the paper's largest database (4000 complex objects means
#: 4000 objects per type level-0 cluster = 445 pages at 9 per page) —
#: "the cluster size is larger than any database size used in the
#: benchmarks" (Section 6.3.1).
DEFAULT_CLUSTER_PAGES = 512


@dataclass
class Placement:
    """A policy's output: page assignment plus the extents it claimed."""

    #: page id for every object, in the order objects should be written.
    pages: List[Tuple[Oid, int]] = field(default_factory=list)
    #: named extents (cluster name -> extent) for introspection/tests.
    extents: Dict[str, Extent] = field(default_factory=dict)


def _all_objects(
    database: Sequence[ComplexObjectDef],
    shared: Dict[Oid, ObjectDef],
) -> List[ObjectDef]:
    objects: List[ObjectDef] = []
    for cobj in database:
        objects.extend(cobj.objects.values())
    objects.extend(shared.values())
    return objects


class ClusteringPolicy(ABC):
    """Assigns every object of a database to a physical page."""

    #: short name used in benchmark tables.
    name: str = "abstract"

    @abstractmethod
    def place(
        self,
        database: Sequence[ComplexObjectDef],
        shared: Dict[Oid, ObjectDef],
        store: ObjectStore,
        rng: random.Random,
    ) -> Placement:
        """Claim extents from ``store.disk`` and assign pages."""


class Unclustered(ClusteringPolicy):
    """Random placement over one extent sized to the database (Figure 8)."""

    name = "unclustered"

    def __init__(self, slack_pages: int = 0) -> None:
        if slack_pages < 0:
            raise ExtentError("slack_pages must be non-negative")
        self._slack = slack_pages

    def place(
        self,
        database: Sequence[ComplexObjectDef],
        shared: Dict[Oid, ObjectDef],
        store: ObjectStore,
        rng: random.Random,
    ) -> Placement:
        objects = _all_objects(database, shared)
        per_page = store.objects_per_page()
        pages_needed = -(-len(objects) // per_page) + self._slack
        extent = store.disk.allocate(max(pages_needed, 1))
        planner = PagePlanner(store, extent)
        slots = planner.slots_in_order()
        rng.shuffle(slots)
        if len(slots) < len(objects):
            raise StorageError("unclustered extent too small")
        placement = Placement(extents={"all": extent})
        for obj, page_id in zip(objects, slots):
            planner.claim(page_id)
            placement.pages.append((obj.oid, page_id))
        return placement


class InterObjectClustering(ClusteringPolicy):
    """One sparse extent per object type, shuffled on disk (Figures 9, 12).

    ``cluster_pages`` fixes every cluster's extent size independent of
    the database size.  ``disk_order`` lists type ids in the physical
    order clusters appear on disk; when omitted, type-id order is used.
    The ACOB workload passes a depth-first-friendly order so that
    depth-first traversal sweeps the disk forward while breadth-first
    zigzags — reproducing the Figure 11A artifact the paper describes.
    """

    name = "inter-object"

    def __init__(
        self,
        cluster_pages: int = DEFAULT_CLUSTER_PAGES,
        disk_order: Optional[Sequence[int]] = None,
    ) -> None:
        if cluster_pages <= 0:
            raise ExtentError("cluster_pages must be positive")
        self._cluster_pages = cluster_pages
        self._disk_order = list(disk_order) if disk_order is not None else None

    def place(
        self,
        database: Sequence[ComplexObjectDef],
        shared: Dict[Oid, ObjectDef],
        store: ObjectStore,
        rng: random.Random,
    ) -> Placement:
        objects = _all_objects(database, shared)
        by_type: Dict[int, List[ObjectDef]] = {}
        for obj in objects:
            by_type.setdefault(obj.oid.type_id, []).append(obj)

        order = self._disk_order
        if order is None:
            order = sorted(by_type)
        else:
            missing = set(by_type) - set(order)
            if missing:
                raise StorageError(
                    f"disk_order misses type ids {sorted(missing)}"
                )

        placement = Placement()
        planners: Dict[int, PagePlanner] = {}
        for type_id in order:
            extent = store.disk.allocate(self._cluster_pages)
            placement.extents[f"type-{type_id}"] = extent
            planners[type_id] = PagePlanner(store, extent)

        for type_id, members in by_type.items():
            planner = planners[type_id]
            slots = planner.slots_in_order()
            if len(slots) < len(members):
                raise StorageError(
                    f"cluster for type {type_id} too small: "
                    f"{len(members)} objects, {len(slots)} slots"
                )
            rng.shuffle(slots)
            for obj, page_id in zip(members, slots):
                planner.claim(page_id)
                placement.pages.append((obj.oid, page_id))
        return placement


class IntraObjectClustering(ClusteringPolicy):
    """Each complex object's parts packed contiguously (Figure 10).

    Complex objects are laid out in creation order; within one complex
    object, parts follow the depth-first reference order (the order a
    naive traversal touches them).  Shared components, which by
    definition belong to no single composite, are packed into a
    trailing region.
    """

    name = "intra-object"

    def place(
        self,
        database: Sequence[ComplexObjectDef],
        shared: Dict[Oid, ObjectDef],
        store: ObjectStore,
        rng: random.Random,
    ) -> Placement:
        objects = _all_objects(database, shared)
        per_page = store.objects_per_page()
        pages_needed = -(-len(objects) // per_page)
        extent = store.disk.allocate(max(pages_needed, 1))
        planner = PagePlanner(store, extent)
        placement = Placement(extents={"all": extent})
        for cobj in database:
            ordered = cobj.traverse_depth_first()
            reached = {obj.oid for obj in ordered}
            # Components unreachable from the root (partially assembled
            # inputs, fragments) still belong to the composite's region.
            ordered.extend(
                obj for oid, obj in cobj.objects.items() if oid not in reached
            )
            for obj in ordered:
                page_id = planner.next_sequential()
                planner.claim(page_id)
                placement.pages.append((obj.oid, page_id))
        for oid, obj in shared.items():
            page_id = planner.next_sequential()
            planner.claim(page_id)
            placement.pages.append((oid, page_id))
        return placement


#: The three paper policies keyed by their benchmark-table names.
POLICIES = {
    Unclustered.name: Unclustered,
    InterObjectClustering.name: InterObjectClustering,
    IntraObjectClustering.name: IntraObjectClustering,
}
