"""Layout diagnostics: measuring what a clustering policy produced.

Figures 8–12 of the paper are claims about physical layout; this module
turns those claims into numbers a test or a report can check:

* per-extent **fill** (objects stored / capacity) — Figure 12's point
  that inter-object clusters are sparse ("the shaded regions contain
  data and the unshaded area is unused");
* per-complex-object **span** (pages between its first and last
  component) — intra-object clustering's tightness, unclustered's
  scatter;
* **reference locality** — the average on-disk distance an
  inter-object reference crosses, the quantity scheduling ultimately
  fights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cluster.layout import LayoutResult
from repro.objects.model import ComplexObjectDef
from repro.storage.oid import Oid


@dataclass(frozen=True)
class ExtentFill:
    """Occupancy of one named extent."""

    name: str
    pages: int
    capacity_objects: int
    stored_objects: int

    @property
    def fill_factor(self) -> float:
        """Stored / capacity (0.0 for an empty extent)."""
        if self.capacity_objects == 0:
            return 0.0
        return self.stored_objects / self.capacity_objects


@dataclass(frozen=True)
class LayoutProfile:
    """Aggregate physical measurements of one layout."""

    extents: Sequence[ExtentFill]
    #: per-complex-object page span (max page - min page).
    spans: Sequence[int]
    #: on-disk page distance of every intra-complex-object reference.
    reference_distances: Sequence[int]

    @property
    def mean_span(self) -> float:
        """Average complex-object span in pages."""
        if not self.spans:
            return 0.0
        return sum(self.spans) / len(self.spans)

    @property
    def mean_reference_distance(self) -> float:
        """Average pages a parent→child reference crosses."""
        if not self.reference_distances:
            return 0.0
        return sum(self.reference_distances) / len(self.reference_distances)

    @property
    def overall_fill(self) -> float:
        """Stored objects / total capacity across all extents."""
        capacity = sum(e.capacity_objects for e in self.extents)
        stored = sum(e.stored_objects for e in self.extents)
        if capacity == 0:
            return 0.0
        return stored / capacity


def profile_layout(
    layout: LayoutResult,
    database: Sequence[ComplexObjectDef],
) -> LayoutProfile:
    """Measure a layout against the database it placed."""
    store = layout.store
    per_page = store.objects_per_page()

    page_of: Dict[Oid, int] = {}
    extent_counts: Dict[str, int] = {name: 0 for name in layout.extents}
    for cobj in database:
        for oid in cobj.objects:
            page = store.page_of(oid)
            page_of[oid] = page
            for name, extent in layout.extents.items():
                if page in extent:
                    extent_counts[name] += 1
                    break

    extents = [
        ExtentFill(
            name=name,
            pages=extent.length,
            capacity_objects=extent.length * per_page,
            stored_objects=extent_counts[name],
        )
        for name, extent in layout.extents.items()
    ]

    spans: List[int] = []
    distances: List[int] = []
    for cobj in database:
        pages = [page_of[oid] for oid in cobj.objects]
        spans.append(max(pages) - min(pages))
        for obj in cobj.objects.values():
            for target in obj.referenced_oids():
                if target in cobj.objects:
                    distances.append(
                        abs(page_of[target] - page_of[obj.oid])
                    )

    return LayoutProfile(
        extents=extents, spans=spans, reference_distances=distances
    )


def describe_profile(profile: LayoutProfile) -> str:
    """Render a profile as a small report."""
    lines = [
        f"extents: {len(profile.extents)}, "
        f"overall fill {profile.overall_fill:.1%}",
        f"mean complex-object span: {profile.mean_span:.1f} pages",
        f"mean reference distance: "
        f"{profile.mean_reference_distance:.1f} pages",
    ]
    for extent in profile.extents:
        lines.append(
            f"  {extent.name}: {extent.stored_objects}/"
            f"{extent.capacity_objects} objects over {extent.pages} pages "
            f"({extent.fill_factor:.1%})"
        )
    return "\n".join(lines)
