"""The ``Database`` façade: everything wired together.

A downstream user should not have to assemble the disk, buffer, store,
layout engine, optimizer, and assembly operator by hand.  ``Database``
owns one simulated disk and object store, a type registry, the loaded
complex objects, and a query entry point:

    db = Database(buffer_capacity=512)
    builder = db.builder()
    ... define types, build complex objects ...
    db.load(builder, clustering="inter-object")

    template = ...                      # or a workload's template
    results = db.query(template).where_component(
        "residence", in_oregon
    ).run()

``run`` goes through the optimizer (predicate pushdown, scheduler and
window selection); ``assemble`` offers direct, fully-manual control
when an experiment needs it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.cluster.layout import LayoutResult, layout_database
from repro.cluster.policies import (
    POLICIES,
    ClusteringPolicy,
    InterObjectClustering,
)
from repro.core.assembled import AssembledComplexObject
from repro.core.assembly import Assembly
from repro.core.template import Template
from repro.errors import PlanError, ReproError
from repro.objects.builder import GraphBuilder
from repro.objects.model import ComplexObjectDef, ObjectDef, TypeRegistry
from repro.query.logical import ComplexObjectQuery, retrieve
from repro.query.optimizer import OptimizedPlan, Optimizer
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource


class BoundQuery:
    """A :class:`ComplexObjectQuery` bound to a database.

    Thin wrapper adding ``run`` / ``plan`` / ``explain`` that route
    through the database's optimizer; the refinement methods mirror the
    logical query's and stay chainable.
    """

    def __init__(self, database: "Database", query: ComplexObjectQuery) -> None:
        self._database = database
        self._query = query

    # -- chainable refinements ------------------------------------------------

    def over(self, roots: Sequence[Oid]) -> "BoundQuery":
        """Restrict to an explicit root set."""
        return BoundQuery(self._database, self._query.over(roots))

    def where_component(self, label: str, predicate) -> "BoundQuery":
        """Predicate on one template component (pushed into assembly)."""
        return BoundQuery(
            self._database, self._query.where_component(label, predicate)
        )

    def where(self, predicate) -> "BoundQuery":
        """Residual predicate over the assembled complex object."""
        return BoundQuery(self._database, self._query.where(predicate))

    def select(self, projection) -> "BoundQuery":
        """Project each qualifying complex object."""
        return BoundQuery(self._database, self._query.select(projection))

    # -- execution ----------------------------------------------------------------

    @property
    def logical(self) -> ComplexObjectQuery:
        """The underlying logical query."""
        return self._query

    def plan(self) -> OptimizedPlan:
        """Optimize without executing."""
        return self._database.optimize(self._query)

    def explain(self) -> str:
        """The physical plan and optimizer choices, as text."""
        return self.plan().explain()

    def run(self) -> List:
        """Optimize and execute; returns the materialized results."""
        return self.plan().execute()


class Database:
    """One simulated disk, one store, one catalog, many queries."""

    def __init__(
        self,
        buffer_capacity: Optional[int] = None,
        window_ceiling: int = 50,
    ) -> None:
        self.disk = SimulatedDisk()
        self.buffer = BufferManager(self.disk, capacity=buffer_capacity)
        self.store = ObjectStore(self.disk, self.buffer)
        self.registry = TypeRegistry()
        self._optimizer = Optimizer(
            buffer_capacity=buffer_capacity, window_ceiling=window_ceiling
        )
        self._layout: Optional[LayoutResult] = None

    # -- schema and data ------------------------------------------------------

    def builder(self) -> GraphBuilder:
        """A graph builder bound to this database's type registry."""
        return GraphBuilder(self.registry)

    def load(
        self,
        source: Union[GraphBuilder, Sequence[ComplexObjectDef]],
        clustering: Union[str, ClusteringPolicy] = "inter-object",
        shared: Optional[Dict[Oid, ObjectDef]] = None,
        seed: int = 0,
        **policy_kwargs,
    ) -> LayoutResult:
        """Place complex objects on disk under a clustering policy.

        ``source`` is either a validated :class:`GraphBuilder` (its
        complex objects and shared pool are taken) or an explicit list
        of complex objects (+ optional ``shared`` pool).  A database
        loads once; reloading is an error, as on-disk OIDs are
        immutable.
        """
        if self._layout is not None:
            raise ReproError("database already loaded")
        if isinstance(source, GraphBuilder):
            source.validate()
            complex_objects = source.complex_objects
            shared = source.shared_objects
        else:
            complex_objects = list(source)
            shared = shared or {}
        if isinstance(clustering, str):
            try:
                policy = POLICIES[clustering](**policy_kwargs)
            except KeyError:
                raise ReproError(
                    f"unknown clustering {clustering!r}; "
                    f"choose from {sorted(POLICIES)}"
                ) from None
        else:
            policy = clustering
        self._layout = layout_database(
            complex_objects,
            self.store,
            policy,
            shared=shared,
            seed=seed,
        )
        return self._layout

    @property
    def layout(self) -> LayoutResult:
        """The load result (roots, extents); raises if not loaded."""
        if self._layout is None:
            raise ReproError("database has not been loaded")
        return self._layout

    @property
    def roots(self) -> List[Oid]:
        """Root OIDs in the canonical (shuffled) input order."""
        return list(self.layout.root_order)

    # -- querying ---------------------------------------------------------------

    def query(self, template: Template) -> BoundQuery:
        """Start a query retrieving complex objects of ``template``."""
        return BoundQuery(self, retrieve(template))

    def optimize(self, query: ComplexObjectQuery) -> OptimizedPlan:
        """Compile a logical query against this database."""
        default_roots = (
            list(self._layout.root_order) if self._layout is not None else None
        )
        return self._optimizer.optimize(
            query, self.store, default_roots=default_roots
        )

    def assemble(
        self,
        template: Template,
        roots: Optional[Sequence[Oid]] = None,
        **assembly_kwargs,
    ) -> Assembly:
        """Manual-control assembly operator over this database."""
        chosen = list(roots) if roots is not None else self.roots
        return Assembly(
            ListSource(chosen), self.store, template, **assembly_kwargs
        )

    # -- persistence -----------------------------------------------------------------

    def save(self, path) -> None:
        """Snapshot the loaded database to ``path`` (+ ``path``.roots).

        The store snapshot (:mod:`repro.storage.snapshot`) carries the
        pages and OID directory; the sidecar carries the root list in
        canonical input order so :meth:`open` can restore queryability.
        """
        from pathlib import Path

        from repro.storage.snapshot import save_store

        if self._layout is None:
            raise ReproError("nothing to save: database has not been loaded")
        save_store(self.store, path)
        sidecar = Path(str(path) + ".roots")
        sidecar.write_bytes(
            b"".join(oid.encode() for oid in self._layout.root_order)
        )

    @classmethod
    def open(
        cls,
        path,
        buffer_capacity: Optional[int] = None,
        window_ceiling: int = 50,
    ) -> "Database":
        """Reopen a database saved with :meth:`save`.

        The reopened database is immediately queryable; the type
        registry starts empty (schemas are code, not snapshot state —
        re-define types if you intend to build more objects).
        """
        from pathlib import Path

        from repro.cluster.layout import LayoutResult
        from repro.storage.oid import OID_SIZE
        from repro.storage.snapshot import load_store

        database = cls(
            buffer_capacity=buffer_capacity, window_ceiling=window_ceiling
        )
        store = load_store(path, buffer_capacity=buffer_capacity)
        database.disk = store.disk
        database.buffer = store.buffer
        database.store = store

        sidecar = Path(str(path) + ".roots").read_bytes()
        if len(sidecar) % OID_SIZE:
            raise ReproError("corrupt roots sidecar")
        roots = [
            Oid.decode(sidecar[i : i + OID_SIZE])
            for i in range(0, len(sidecar), OID_SIZE)
        ]
        database._layout = LayoutResult(
            store=store,
            policy_name="snapshot",
            roots=list(roots),
            root_order=list(roots),
            extents={},
            object_count=len(store.directory),
        )
        return database

    # -- measurement ---------------------------------------------------------------

    def reset_measurement(self) -> None:
        """Zero disk/buffer statistics (e.g. between two queries)."""
        self.disk.reset_stats()
        self.buffer.drop_clean()
        self.buffer.reset_stats()

    @property
    def avg_seek_per_read(self) -> float:
        """The paper's metric since the last reset."""
        return self.disk.stats.avg_seek_per_read

    def __repr__(self) -> str:
        loaded = (
            f"{self.layout.object_count} objects"
            if self._layout is not None
            else "empty"
        )
        return f"Database({loaded}, buffer={self.buffer.capacity})"
