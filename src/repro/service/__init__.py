"""The assembly service: a multi-client device server (paper, §7).

The paper observes that elevator scheduling "depends on exclusive
control of the physical device" and that concurrent assembly operators
break that assumption; its sketched fix is "a server-per-device
architecture … each server would maintain a queue of requests and would
fetch objects on behalf of one or more assembly operators."  This
package builds that server out into a small service:

* :mod:`repro.service.device_server` — the device server itself: many
  live client queries, one global elevator sweep per physical device,
  per-query fairness with a starvation bound.
* :mod:`repro.service.admission` — admission control: the paper's
  ``(N-1)*(W-1)+N`` pin bound prices each request; requests queue or
  shrink their window when the buffer budget is exhausted.
* :mod:`repro.service.cache` — an LRU cache of assembled complex
  objects keyed by (root OID, template fingerprint), invalidated by
  object-store writes.
* :mod:`repro.service.metrics` — per-request and service-wide counters.
* :mod:`repro.service.server` — the synchronous façade:
  ``submit`` / ``poll`` / ``result``.
"""

from repro.service.admission import AdmissionController, AdmissionTicket
from repro.service.cache import AssembledObjectCache, CacheStats
from repro.service.device_server import (
    ClientQuery,
    DeviceServer,
    OverlapReport,
)
from repro.service.metrics import RequestMetrics, ServiceMetrics
from repro.service.server import AssemblyService, RequestStatus

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "AssembledObjectCache",
    "AssemblyService",
    "CacheStats",
    "ClientQuery",
    "DeviceServer",
    "OverlapReport",
    "RequestMetrics",
    "RequestStatus",
    "ServiceMetrics",
]
