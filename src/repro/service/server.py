"""The assembly service façade: ``submit`` / ``poll`` / ``result``.

:class:`AssemblyService` is the synchronous front of the §7 device
server.  A client submits an assembly request — a set of root OIDs, a
template, a window size — and gets a request id; the service multiplexes
every admitted request's references into the device server's global
elevator sweep, serves repeat roots from the result cache without
touching the disk at all, and enforces the admission controller's
buffer budget by shrinking, queueing, or rejecting requests.

The execution model is cooperative and deterministic: :meth:`step`
advances the whole service by one reference resolution, :meth:`run`
drives it until idle, and :meth:`result` blocks (by stepping) until one
request finishes.  The service clock is the device server's resolution
counter, so identical request sequences produce identical metrics on
the simulated disk.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, List, Optional

from repro.core.assembled import AssembledComplexObject
from repro.core.template import Template
from repro.core.trace import AssemblyTracer
from repro.errors import ServiceOverloadError, ServiceStateError
from repro.obs.spans import Span, SpanRecorder
from repro.service.admission import AdmissionController, AdmissionTicket
from repro.service.cache import AssembledObjectCache
from repro.service.device_server import ClientQuery, DeviceServer
from repro.service.metrics import RequestMetrics, ServiceMetrics
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore


class RequestStatus(Enum):
    """Lifecycle of one submitted request."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"


class _Request:
    """Service-side state of one submitted request."""

    def __init__(
        self,
        request_id: int,
        template: Template,
        fingerprint: str,
        metrics: RequestMetrics,
    ) -> None:
        self.request_id = request_id
        self.template = template
        self.fingerprint = fingerprint
        self.metrics = metrics
        self.status = RequestStatus.QUEUED
        self.results: List[AssembledComplexObject] = []
        self.pending_roots: List[Oid] = []
        self.ticket: Optional[AdmissionTicket] = None
        self.query: Optional[ClientQuery] = None
        self.tracer: Optional[AssemblyTracer] = None
        self.assembly_kwargs: Dict[str, object] = {}
        self.cache_results: bool = True
        self.span: Optional[Span] = None
        self.wait_span: Optional[Span] = None


class AssemblyService:
    """Serves concurrent assembly requests against one object store.

    Parameters
    ----------
    store:
        The shared (already laid out) object store.
    budget_pages:
        Admission budget in pinnable pages.  Defaults to the store
        buffer's capacity when that is bounded, else unlimited.
    cache_capacity:
        Result-cache size in complex objects; ``0`` disables caching.
    starvation_bound:
        Device-server fairness bound (see :class:`DeviceServer`).
    max_waiting / min_window:
        Admission wait-queue capacity and smallest shrunk window.
    span_recorder:
        Optional :class:`~repro.obs.spans.SpanRecorder` tracing every
        request's life (``request`` → ``queue-wait`` → ``assembly`` →
        per-slot/fetch spans) on the service clock.  The recorder is
        bound to the device server's resolution counter and shared with
        every query's operator; recording is strictly observational —
        results and :class:`ServiceMetrics` are bit-identical with or
        without it.  Export the trace with :meth:`export_trace`.
    batch_pages:
        Distinct pages per device-server scheduler batch (see
        :class:`DeviceServer`); 1 keeps the paper's unbatched sweep.
    reorg_policy:
        Optional :class:`~repro.cluster.reorg.ReorgPolicy` enabling
        online reorganization.  The device server feeds the affinity
        sketch from its resolution stream; whenever :meth:`run` drains
        the service (the pool-idle window) a migration round may
        execute, with its activity folded into ``metrics``
        (``reorg_rounds``, ``reorg_migrations``, ``reorg_io_ms``,
        ``reorg_cache_invalidations``).  ``None`` (default) leaves the
        service bit-identical to one built before this feature.
    """

    def __init__(
        self,
        store: ObjectStore,
        budget_pages: Optional[int] = None,
        cache_capacity: int = 256,
        starvation_bound: Optional[int] = 64,
        max_waiting: int = 16,
        min_window: int = 1,
        span_recorder: Optional[SpanRecorder] = None,
        batch_pages: int = 1,
        reorg_policy=None,
    ) -> None:
        self.store = store
        if budget_pages is None:
            budget_pages = store.buffer.capacity
        self.spans = span_recorder
        self.server = DeviceServer(
            store,
            starvation_bound=starvation_bound,
            batch_pages=batch_pages,
            spans=span_recorder,
            reorg_policy=reorg_policy,
        )
        if span_recorder is not None:
            span_recorder.bind_clock(lambda: float(self.server.resolutions))
        self.admission = AdmissionController(
            budget_pages=budget_pages,
            max_waiting=max_waiting,
            min_window=min_window,
            buffer=store.buffer,
        )
        self.cache: Optional[AssembledObjectCache] = None
        if cache_capacity > 0:
            self.cache = AssembledObjectCache(cache_capacity)
            self.cache.wire(store)
        self.metrics = ServiceMetrics()
        self._requests: Dict[int, _Request] = {}
        self._tickets: Dict[int, _Request] = {}
        self._next_request_id = 0

    # -- submission ----------------------------------------------------------

    @property
    def clock(self) -> int:
        """The service clock: global references resolved so far."""
        return self.server.resolutions

    def submit(
        self,
        roots: Iterable[Oid],
        template: Template,
        window_size: int = 8,
        priority: bool = False,
        use_cache: bool = True,
        **assembly_kwargs,
    ) -> int:
        """Accept one assembly request; returns its request id.

        Roots already in the result cache are answered immediately (no
        admission, no disk); the rest go through admission control and,
        once granted, into the device server.  Raises
        :class:`~repro.errors.ServiceOverloadError` when the budget is
        exhausted and the wait queue is full.
        """
        template = template.finalize()
        fingerprint = template.fingerprint()
        request_id = self._next_request_id
        self._next_request_id += 1
        metrics = self.metrics.open_request(request_id, self.clock)
        request = _Request(request_id, template, fingerprint, metrics)
        request.assembly_kwargs = dict(assembly_kwargs)
        request.cache_results = use_cache and self.cache is not None
        self._requests[request_id] = request
        if self.spans is not None:
            request.span = self.spans.begin(
                "request", kind="request", request_id=request_id
            )

        for root in roots:
            cached = None
            if use_cache and self.cache is not None:
                cached = self.cache.get(root, fingerprint)
                if cached is not None:
                    self.metrics.cache_hits += 1
                    metrics.cache_hits += 1
                else:
                    self.metrics.cache_misses += 1
            if cached is not None:
                request.results.append(cached)
            else:
                request.pending_roots.append(root)

        if not request.pending_roots:
            self._finish(request)
            return request_id

        # Admission may raise ServiceOverloadError: the request is then
        # dropped entirely (load shedding), not left half-registered.
        try:
            ticket = self.admission.submit(
                request_id, window_size, template, priority=priority
            )
        except ServiceOverloadError:
            del self._requests[request_id]
            del self.metrics.per_request[request_id]
            self.metrics.requests_submitted -= 1
            self.metrics.requests_rejected += 1
            if self.spans is not None and request.span is not None:
                self.spans.end(request.span, outcome="rejected")
                request.span = None
            raise
        request.ticket = ticket
        if ticket.waiting:
            self.metrics.requests_queued += 1
            if self.spans is not None:
                request.wait_span = self.spans.begin(
                    "queue-wait", parent=request.span, kind="queue-wait"
                )
            return request_id
        self._start(request)
        return request_id

    def _start(self, request: _Request) -> None:
        assert request.ticket is not None and not request.ticket.waiting
        request.tracer = AssemblyTracer()
        if self.spans is not None:
            if request.wait_span is not None:
                self.spans.end(request.wait_span)
                request.wait_span = None
            request.assembly_kwargs.setdefault("parent_span", request.span)
        request.query = self.server.register(
            request.pending_roots,
            request.template,
            window_size=request.ticket.window_size,
            tracer=request.tracer,
            **request.assembly_kwargs,
        )
        request.status = RequestStatus.RUNNING
        request.metrics.started_at = self.clock
        request.metrics.window_size = request.ticket.window_size
        request.metrics.shrunk = request.ticket.shrunk
        if request.ticket.shrunk:
            self.metrics.requests_shrunk += 1
        self._collect(request)

    # -- progress ------------------------------------------------------------

    def step(self) -> bool:
        """Advance the service by one global resolution.

        Returns ``False`` when nothing is left to do: no pending
        references, no running queries, no admissible waiters.
        """
        advanced = self.server.step()
        finished_any = False
        for request in list(self._requests.values()):
            if request.status is RequestStatus.RUNNING:
                self._collect(request)
                if request.query is not None and request.query.finished:
                    self._finish(request)
                    finished_any = True
        return advanced or finished_any

    def run(self) -> None:
        """Step until every submitted request is done.

        With a ``reorg_policy`` attached, the drained service is the
        detected idle window: one reorganization round may run here,
        after the last request completed and before control returns to
        the client.  Without a policy this is exactly the old loop.
        """
        while self.step():
            pass
        stuck = [
            r.request_id
            for r in self._requests.values()
            if r.status
            not in (RequestStatus.DONE, RequestStatus.CANCELLED)
        ]
        if stuck:
            raise ServiceStateError(
                f"service idle with unfinished requests {stuck}"
            )
        reorg = self.server.reorg
        if reorg is not None and reorg.policy.auto:
            self._run_reorg_round()

    def reorganize(self, force: bool = True):
        """Run one reorganization round now; returns its report.

        Raises :class:`ServiceStateError` when the service was built
        without a ``reorg_policy``.  ``force`` (default) runs the round
        even below the policy's observation threshold — the operator
        asked for it explicitly.
        """
        if self.server.reorg is None:
            raise ServiceStateError(
                "reorganize() needs a service built with reorg_policy="
            )
        return self._run_reorg_round(force=force)

    def _run_reorg_round(self, force: bool = False):
        """Execute one round and fold its activity into the metrics.

        Cache invalidations are measured as the invalidation-counter
        delta across the round: migrations notify the store's write
        hooks, which is the same per-OID invalidation path ordinary
        writes take, so the delta is exactly the assemblies dropped
        because a member moved.
        """
        reorg = self.server.reorg
        assert reorg is not None
        invalidations_before = (
            self.cache.stats.invalidations if self.cache is not None else 0
        )
        report = reorg.run_round(force=force)
        self.metrics.reorg_rounds = reorg.rounds
        self.metrics.reorg_migrations += report.migrations
        self.metrics.reorg_pages_written += report.pages_touched
        self.metrics.reorg_io_ms += report.priced_ms
        if self.cache is not None:
            self.metrics.reorg_cache_invalidations += (
                self.cache.stats.invalidations - invalidations_before
            )
        return report

    def _collect(self, request: _Request) -> None:
        if request.query is None:
            return
        for assembled in request.query.take_results():
            request.results.append(assembled)
            # Degraded objects are never cached: a later fault-free run
            # must be able to produce the complete structure.
            if (
                request.cache_results
                and self.cache is not None
                and not assembled.degraded
            ):
                self.cache.put(request.fingerprint, assembled)

    def _finish(self, request: _Request) -> None:
        if request.query is not None:
            self._collect(request)
            stats = request.query.stats
            self.metrics.objects_emitted += stats.emitted
            self.metrics.objects_aborted += stats.aborted
            self.metrics.objects_degraded += stats.degraded_emitted
            self.metrics.fault_retries += stats.fault_retries
            self.metrics.fault_aborts += stats.fault_skipped
            request.metrics.fault_retries = stats.fault_retries
            request.metrics.degraded = stats.degraded_emitted
            self.server.deregister(request.query.query_id)
        if request.tracer is not None:
            request.metrics.absorb_trace(request.tracer)
        request.status = RequestStatus.DONE
        request.metrics.completed_at = self.clock
        self.metrics.requests_completed += 1
        self.metrics.close_request(request.metrics)
        if self.spans is not None and request.span is not None:
            self.spans.end(
                request.span,
                outcome="done",
                emitted=request.metrics.emitted,
                cache_hits=request.metrics.cache_hits,
            )
            request.span = None
        if request.ticket is not None:
            for started in self.admission.release(request.ticket):
                self._start(self._requests[started.request_id])
            request.ticket = None

    # -- client API ----------------------------------------------------------

    def cancel(self, request_id: int) -> bool:
        """Abandon an unfinished request; ``True`` if it was live.

        A queued request leaves the admission wait lane; a running one
        is deregistered from the device server (its pending references
        retracted) and its granted budget released, which may start
        waiting requests.  Partial results are discarded — the caller
        asked for none.  Cancelling a finished (or already cancelled)
        request returns ``False`` and changes nothing; this is what
        makes hedged requests race-free: whichever copy finishes first
        wins, and cancelling the loser is always safe.
        """
        request = self._request(request_id)
        if request.status in (RequestStatus.DONE, RequestStatus.CANCELLED):
            return False
        if request.status is RequestStatus.RUNNING:
            assert request.query is not None
            self.server.deregister(request.query.query_id)
            request.query = None
        if request.ticket is not None:
            if request.ticket.waiting:
                self.admission.cancel_waiting(request.ticket)
            else:
                for started in self.admission.release(request.ticket):
                    self._start(self._requests[started.request_id])
            request.ticket = None
        request.status = RequestStatus.CANCELLED
        self.metrics.requests_cancelled += 1
        if self.spans is not None:
            if request.wait_span is not None:
                self.spans.end(request.wait_span, outcome="cancelled")
                request.wait_span = None
            if request.span is not None:
                self.spans.end(request.span, outcome="cancelled")
                request.span = None
        return True

    def poll(self, request_id: int) -> RequestStatus:
        """Current lifecycle state of one request."""
        return self._request(request_id).status

    def result(self, request_id: int) -> List[AssembledComplexObject]:
        """Drive the service until ``request_id`` finishes; its objects.

        Cache-served objects come first, then assembled ones in
        completion order.  Aborted (predicate-rejected) objects are
        simply absent, as with the bare assembly operator.
        """
        request = self._request(request_id)
        if request.status is RequestStatus.CANCELLED:
            raise ServiceStateError(
                f"request {request_id} was cancelled; it has no result"
            )
        while request.status is not RequestStatus.DONE:
            if not self.step():
                raise ServiceStateError(
                    f"request {request_id} cannot finish: service is idle"
                )
        return list(request.results)

    def request_metrics(self, request_id: int) -> RequestMetrics:
        """Per-request metrics (final once the request is done)."""
        return self._request(request_id).metrics

    def export_trace(self, path: str, fmt: str = "chrome") -> str:
        """Write the recorded span trace to ``path``; returns the path.

        ``fmt`` is ``"chrome"`` (a Chrome ``trace_event`` JSON document
        for ``chrome://tracing`` / Perfetto) or ``"jsonl"`` (the flat
        span log ``python -m repro.obs`` renders, summarizes and
        diffs).  Raises :class:`~repro.errors.ServiceStateError` when
        the service was built without a ``span_recorder``.
        """
        if self.spans is None:
            raise ServiceStateError(
                "export_trace() needs a service built with span_recorder="
            )
        from repro.obs.export import write_chrome_trace, write_jsonl

        if fmt == "chrome":
            return str(write_chrome_trace(self.spans.spans, path))
        if fmt == "jsonl":
            return str(write_jsonl(self.spans.spans, path))
        raise ServiceStateError(
            f"unknown trace format {fmt!r} (want 'chrome' or 'jsonl')"
        )

    def _request(self, request_id: int) -> _Request:
        try:
            return self._requests[request_id]
        except KeyError:
            raise ServiceStateError(
                f"unknown request id {request_id}"
            ) from None
