"""The device server: one global elevator sweep for many live queries.

Section 7 of the paper: "each server would maintain a queue of requests
and would fetch objects on behalf of one or more assembly operators."
Where :class:`repro.core.parallel.DeviceServerAssembly` demonstrated the
idea for K *static* partitions of one root set, this module generalizes
it to a dynamic registry of independent client queries:

* Each registered query is an ordinary :class:`~repro.core.assembly.
  Assembly` operator, with its own window, template and root stream —
  but its scheduler is a :class:`_ProxyScheduler` that forwards every
  unresolved reference into the server's **global** pool.
* The global pool keeps one elevator (SCAN) queue per physical device
  (multi-device aware via :class:`~repro.storage.multidisk.
  MultiDeviceDisk`), so all concurrent queries share a single sweep per
  head — the exclusive-control assumption restored service-wide.
* Fairness: pure SCAN can park on one query's hot region while another
  query's references wait at the far end of the disk.  The server
  counts, per query, how many global resolutions have happened since
  the query was last served; any query starved past
  ``starvation_bound`` preempts the sweep and gets its nearest
  reference served next.  Completed objects are emitted round-robin
  across queries with output pending.

Every tie in the sweep breaks on a global admission sequence number, so
a given registration order replays the exact same fetch sequence —
tests rely on this determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.assembled import AssembledComplexObject
from repro.core.assembly import Assembly
from repro.core.schedulers import (
    ReferenceScheduler,
    SweepPool,
    UnresolvedReference,
)
from repro.core.template import Template
from repro.errors import (
    AssemblyError,
    BufferFullError,
    DeviceDownError,
    FaultError,
    SchedulerError,
    ServiceStateError,
    TransientReadError,
)
from repro.storage.costmodel import CostModel
from repro.storage.events import AsyncIOEngine
from repro.storage.faults import DeviceHealthTracker, RetryPolicy
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource, VolcanoIterator

#: Default starvation bound: a query never waits more than this many
#: global resolutions between services while it has references pending.
DEFAULT_STARVATION_BOUND = 64

#: Sort key of one pooled entry: (page, -rejection, global seq).
_EntryKey = Tuple[int, float, int]


class _ProxyScheduler(ReferenceScheduler):
    """Per-query scheduler that forwards into the server's global pool.

    The owning :class:`~repro.core.assembly.Assembly` believes this is
    its private reference pool; every ``add`` lands in the device
    server's per-device elevator queues tagged with the query id, and
    ``pop`` is forbidden — only the server drains the pool, through
    :meth:`Assembly.resolve_external`.
    """

    name = "device-server-proxy"

    def __init__(self, server: "DeviceServer", query_id: int) -> None:
        super().__init__()
        self._server = server
        self._query_id = query_id

    def add(self, ref: UnresolvedReference) -> None:
        """Forward one reference into the global pool."""
        self.ops += 1
        self._server._enqueue(self._query_id, ref)

    def pop(self) -> UnresolvedReference:
        """Forbidden: the device server owns draining."""
        raise SchedulerError(
            "query references are drained by the device server; "
            "drive the query through DeviceServer.step()"
        )

    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        """Retract this query's references for an aborted object."""
        removed = self._server._retract(self._query_id, owner)
        self.ops += len(removed)
        return removed

    def __len__(self) -> int:
        return self._server.pending_of(self._query_id)


class _DeviceQueue:
    """One device's share of the global pool: a SCAN-ordered SweepPool.

    Entries carry the server's global sequence number as their sort
    tie-break (per-assembly sequence numbers are not unique across
    queries) and are owner-indexed under ``(query_id, owner)``, so
    retracting one query's aborted complex object costs O(k) instead
    of the full-pool rebuild the original list paid.
    """

    def __init__(self, head_fn) -> None:
        self._head_fn = head_fn
        self._pool = SweepPool()
        self._tags: Dict[int, int] = {}  # id(ref) -> query_id
        self._query_count: Dict[int, int] = {}
        self._direction = 1

    def __len__(self) -> int:
        return len(self._pool)

    def add(self, query_id: int, seq: int, ref: UnresolvedReference) -> None:
        """Insert one tagged reference in sweep order."""
        self._pool.add(ref, owner_key=(query_id, ref.owner), seq=seq)
        self._tags[id(ref)] = query_id
        self._query_count[query_id] = self._query_count.get(query_id, 0) + 1

    def _untag(self, ref: UnresolvedReference) -> int:
        query_id = self._tags.pop(id(ref))
        self._query_count[query_id] -= 1
        if self._query_count[query_id] == 0:
            del self._query_count[query_id]
        return query_id

    def pop_next(self) -> Tuple[int, UnresolvedReference]:
        """Pop the SCAN-next entry for this device's head."""
        ref, self._direction = self._pool.pop_next(
            self._head_fn(), self._direction
        )
        return self._untag(ref), ref

    def pop_batch(
        self,
        max_pages: int,
        resident_fn: Optional[Callable[[int], bool]] = None,
    ) -> List[Tuple[int, UnresolvedReference]]:
        """Pop the sweep-next page group plus its contiguous run.

        The batch may mix queries — that is the point: concurrent
        clients whose references share a page (or a run) get them all
        satisfied by one physical read.  A buffer-resident page, if
        any is pending, is served first at zero seek.
        """
        if resident_fn is not None:
            refs = self._pool.take_resident_page(resident_fn)
            if refs:
                return [(self._untag(ref), ref) for ref in refs]
        refs, self._direction = self._pool.pop_batch_next(
            self._head_fn(), self._direction, max_pages
        )
        return [(self._untag(ref), ref) for ref in refs]

    def pop_for_query(self, query_id: int) -> Tuple[int, UnresolvedReference]:
        """Pop the entry of ``query_id`` nearest this device's head.

        The starvation override: instead of the global SCAN-next entry,
        serve the starved query's cheapest pending fetch.  Linear scan —
        the override is rare by construction.
        """
        head = self._head_fn()
        best_ref: Optional[UnresolvedReference] = None
        best_cost: Optional[Tuple[int, int]] = None
        for page, _rej, seq, ref in self._pool.live_entries():
            if self._tags.get(id(ref)) != query_id:
                continue
            cost = (abs(page - head), seq)
            if best_cost is None or cost < best_cost:
                best_ref = ref
                best_cost = cost
        if best_ref is None:
            raise SchedulerError(
                f"query {query_id} has no pending reference on this device"
            )
        self._pool.remove_ref(best_ref)
        return self._untag(best_ref), best_ref

    def retract(self, query_id: int, owner: int) -> List[UnresolvedReference]:
        """Remove every entry of one query's aborted complex object."""
        removed = self._pool.remove_owner((query_id, owner))
        for ref in removed:
            self._untag(ref)
        return removed

    def has_query(self, query_id: int) -> bool:
        """Any pending entry of ``query_id`` on this device?"""
        return self._query_count.get(query_id, 0) > 0


@dataclass
class OverlapReport:
    """What one :meth:`DeviceServer.run_overlapped` execution cost.

    ``elapsed_ms`` is the event clock at quiescence — ``max`` over
    device timelines — against which ``device_busy_ms`` gives each
    device's utilization; their *sum* is what the synchronous
    one-read-at-a-time loop would have paid for the same reads.
    """

    elapsed_ms: float = 0.0
    device_busy_ms: List[float] = field(default_factory=list)
    device_utilization: List[float] = field(default_factory=list)
    #: I/O requests issued (including zero-read completions).
    issued: int = 0
    #: references resolved while the report was collected.
    resolutions: int = 0
    #: batches that overflowed the pin bound and resolved synchronously.
    sync_fallbacks: int = 0
    #: transient faults retried at issue time (on device timelines).
    fault_retries: int = 0
    #: references re-queued because their device was quarantined.
    fault_requeues: int = 0
    #: batches whose issue-time retries ran out and resolved through
    #: the owning operators' synchronous fault handling.
    fault_fallbacks: int = 0
    #: circuit-breaker openings during the run.
    quarantines: int = 0
    #: milliseconds the sweep idled waiting for quarantined devices.
    quarantine_wait_ms: float = 0.0


class ClientQuery:
    """One live client query registered with a device server.

    Wraps the query's :class:`~repro.core.assembly.Assembly` operator
    plus the service-side bookkeeping: output buffer, starvation
    counter, and completion flag.  Handed back by
    :meth:`DeviceServer.register`; results are taken with
    :meth:`take_results` (or via the server's round-robin
    :meth:`DeviceServer.next_result`).
    """

    def __init__(self, query_id: int, assembly: Assembly) -> None:
        self.query_id = query_id
        self.assembly = assembly
        #: completed complex objects not yet taken by the client.
        self.output: List[AssembledComplexObject] = []
        #: global resolutions since this query was last served.
        self.waited = 0
        #: resolutions served to this query (fairness diagnostics).
        self.served = 0
        self.finished = False

    @property
    def stats(self):
        """The underlying operator's :class:`AssemblyStats`."""
        return self.assembly.stats

    def take_results(self) -> List[AssembledComplexObject]:
        """Hand over (and clear) the buffered completed objects."""
        out = self.output
        self.output = []
        return out


class DeviceServer:
    """Multiplexes many client queries over shared storage devices.

    Parameters
    ----------
    store:
        The shared object store.  If its disk is a
        :class:`MultiDeviceDisk`, the server keeps one elevator queue
        per device; otherwise a single queue sweeps the lone head.
    starvation_bound:
        Maximum global resolutions a query with pending references may
        wait between services (per-query fairness).  ``None`` disables
        the bound (pure global SCAN).
    batch_pages:
        Maximum distinct pages per global sweep batch.  1 (default)
        keeps the original one-reference-per-step loop; ≥ 2 makes each
        step serve everything pending on the sweep-next page(s) —
        possibly across queries — behind one coalesced, prefetched
        read, with buffer-resident pages served first at zero seek.
    spans:
        Optional :class:`~repro.obs.spans.SpanRecorder` shared with
        every registered query's operator (unless the caller passes its
        own ``spans=`` to :meth:`register`).  Synchronous sweeps record
        ``scheduler-pop`` spans; :meth:`run_overlapped` hands the
        recorder to its :class:`AsyncIOEngine`, whose ``device-io``
        spans carry exact event-clock stamps.  Strictly observational.
    reorg_policy:
        Optional :class:`~repro.cluster.reorg.ReorgPolicy` enabling the
        online reorganizer.  The server then feeds every resolved
        reference into the reorganizer's affinity sketch, keyed by the
        in-flight complex object it was fetched for; rounds run only
        when the pool is drained (``pending_total() == 0``) so no
        pooled reference's page-id scheduling key can go stale.  With
        the default ``None``, no reorganizer exists and every code path
        is bit-identical to a server built before this feature.
    """

    def __init__(
        self,
        store: ObjectStore,
        starvation_bound: Optional[int] = DEFAULT_STARVATION_BOUND,
        batch_pages: int = 1,
        spans=None,
        reorg_policy=None,
    ) -> None:
        if starvation_bound is not None and starvation_bound <= 0:
            raise ServiceStateError("starvation_bound must be positive")
        if batch_pages <= 0:
            raise ServiceStateError("batch_pages must be positive")
        self.store = store
        self.starvation_bound = starvation_bound
        self.batch_pages = batch_pages
        self.spans = spans
        disk = store.disk
        if isinstance(disk, MultiDeviceDisk):
            self._queues = [
                _DeviceQueue(self._head_fn(disk, device))
                for device in range(disk.n_devices)
            ]
            self._pages_per_device: Optional[int] = disk.pages_per_device
        else:
            self._queues = [_DeviceQueue(lambda: disk.head_position)]
            self._pages_per_device = None
        self._queries: Dict[int, ClientQuery] = {}
        self._pending: Dict[int, int] = {}
        self._next_query_id = 0
        self._seq = 0
        self._emit_turn = 0
        #: total references resolved across all queries (the service clock).
        self.resolutions = 0
        #: coalesced prefetch reads that faulted and fell back to
        #: per-reference fetching (synchronous batched path).
        self.prefetch_fault_fallbacks = 0
        #: per-device circuit breaker, shared with every registered
        #: query's operator (failures recorded on their fetch paths
        #: quarantine the device for the whole sweep).
        self.health = DeviceHealthTracker(len(self._queues))
        if reorg_policy is not None:
            from repro.cluster.reorg import Reorganizer

            self.reorg: Optional[Reorganizer] = Reorganizer(
                store,
                reorg_policy,
                idle_check=lambda: self.pending_total() == 0,
            )
        else:
            self.reorg = None

    @staticmethod
    def _head_fn(disk: MultiDeviceDisk, device: int):
        return lambda: disk.head_of(device)

    # -- registration ---------------------------------------------------------

    def register(
        self,
        roots: Union[VolcanoIterator, Iterable[Oid]],
        template: Template,
        window_size: int = 8,
        **assembly_kwargs,
    ) -> ClientQuery:
        """Admit a new live query; its root references enter the pool.

        ``roots`` may be any Volcano iterator yielding root OIDs (or a
        plain iterable, wrapped in a :class:`ListSource`).  Remaining
        keyword arguments go to :class:`~repro.core.assembly.Assembly`
        unchanged (sharing statistics, selective assembly, …).
        """
        if "scheduler" in assembly_kwargs:
            raise ServiceStateError(
                "device-server queries cannot choose a private scheduler; "
                "the server owns the reference pool"
            )
        query_id = self._next_query_id
        self._next_query_id += 1
        source = (
            roots
            if isinstance(roots, VolcanoIterator)
            else ListSource(list(roots))
        )
        proxy = _ProxyScheduler(self, query_id)
        assembly_kwargs.setdefault("health", self.health)
        if self.spans is not None:
            assembly_kwargs.setdefault("spans", self.spans)
        assembly = Assembly(
            source,
            self.store,
            template,
            window_size=window_size,
            scheduler=proxy,
            **assembly_kwargs,
        )
        query = ClientQuery(query_id, assembly)
        self._queries[query_id] = query
        self._pending[query_id] = 0
        assembly.open()  # fills the window; roots flow into the pool
        self._collect(query)
        return query

    def deregister(self, query_id: int) -> None:
        """Drop a query (finished or cancelled); retracts its references."""
        query = self._queries.pop(query_id, None)
        if query is None:
            return
        if query.assembly.is_open:
            query.assembly.close()  # retracts in-window owners' refs
        self._pending.pop(query_id, None)

    # -- pool maintenance (called by the proxy schedulers) --------------------

    def _device_of(self, page_id: int) -> int:
        if self._pages_per_device is None:
            return 0
        return page_id // self._pages_per_device

    def _enqueue(self, query_id: int, ref: UnresolvedReference) -> None:
        self._seq += 1
        self._queues[self._device_of(ref.page_id)].add(
            query_id, self._seq, ref
        )
        self._pending[query_id] += 1

    def _retract(self, query_id: int, owner: int) -> List[UnresolvedReference]:
        removed: List[UnresolvedReference] = []
        for queue in self._queues:
            removed.extend(queue.retract(query_id, owner))
        if removed:
            self._pending[query_id] -= len(removed)
        return removed

    def pending_of(self, query_id: int) -> int:
        """Pending pool references of one query."""
        return self._pending.get(query_id, 0)

    def pending_total(self) -> int:
        """Pending pool references across all queries."""
        return sum(len(queue) for queue in self._queues)

    def queue_depths(self) -> List[int]:
        """Pending references per device (balance diagnostics)."""
        return [len(queue) for queue in self._queues]

    # -- scheduling ---------------------------------------------------------

    def _starved_query(self) -> Optional[int]:
        if self.starvation_bound is None:
            return None
        worst_id: Optional[int] = None
        worst_wait = self.starvation_bound - 1
        for query_id, query in self._queries.items():
            if query.finished or self._pending[query_id] == 0:
                continue
            if query.waited > worst_wait:
                worst_id = query_id
                worst_wait = query.waited
        return worst_id

    def _fault_now(self) -> float:
        """Current fault-clock time (0.0 with no injector attached)."""
        injector = self.store.disk.fault_injector
        return injector.now if injector is not None else 0.0

    def _deepest_queue(self) -> "_DeviceQueue":
        # Deepest queue first: elevator sweeps pay off in proportion to
        # queue depth (same rule as MultiDeviceScheduler); ties resolve
        # to the lowest device index, deterministically.  Quarantined
        # devices are skipped — unless every pending device is
        # quarantined, in which case the earliest-recovering one is
        # probed anyway (on the synchronous path, only attempts advance
        # the injector's op clock, so probing is what ends an outage).
        now = self._fault_now()
        best_queue = None
        best_depth = 0
        probe_queue = None
        probe_recovery = None
        for device, queue in enumerate(self._queues):
            if len(queue) == 0:
                continue
            if not self.health.available(device, now):
                recovery = self.health.quarantined_until(device)
                if probe_recovery is None or recovery < probe_recovery:
                    probe_queue, probe_recovery = queue, recovery
                continue
            if len(queue) > best_depth:
                best_queue = queue
                best_depth = len(queue)
        if best_queue is None:
            best_queue = probe_queue
        if best_queue is None:
            raise SchedulerError("device server pool is empty")
        return best_queue

    def _pop_next(self) -> Tuple[int, UnresolvedReference]:
        starved = self._starved_query()
        if starved is not None:
            for queue in self._queues:
                if queue.has_query(starved):
                    return queue.pop_for_query(starved)
        return self._deepest_queue().pop_next()

    def _pop_next_batch(self) -> List[Tuple[int, UnresolvedReference]]:
        starved = self._starved_query()
        if starved is not None:
            for queue in self._queues:
                if queue.has_query(starved):
                    return [queue.pop_for_query(starved)]
        return self._deepest_queue().pop_batch(
            self.batch_pages, self.store.buffer.is_resident
        )

    def _prefetch(
        self, batch: List[Tuple[int, UnresolvedReference]]
    ) -> List[int]:
        """Pin the batch's fetch pages with one coalesced read.

        Returns the pinned page ids (to unfix after the batch), or
        ``[]`` when fewer than two distinct pages need the disk or the
        pin bound cannot take the whole batch (per-reference fetching
        still works then, just without coalescing).
        """
        fetch_pages: List[int] = []
        seen = set()
        for query_id, ref in batch:
            query = self._queries[query_id]
            if query.finished or not query.assembly.needs_fetch(ref):
                continue
            page_id = self.store.page_of(ref.oid)
            if page_id not in seen:
                seen.add(page_id)
                fetch_pages.append(page_id)
        if len(fetch_pages) < 2:
            return []
        try:
            self.store.buffer.fix_many(fetch_pages)
        except BufferFullError:
            return []
        except FaultError as exc:
            # A faulted coalesced read falls back to per-reference
            # fetching, where each query's own retry/degradation
            # policy decides; the health tracker hears about it so the
            # sweep can route around a quarantined device.
            self.prefetch_fault_fallbacks += 1
            self.health.record_failure(
                getattr(exc, "device", 0),
                now=self._fault_now(),
                retry_after=getattr(exc, "retry_after", None),
            )
            return []
        return fetch_pages

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Resolve one sweep step globally; ``False`` when idle.

        Pops the sweep-next (or starvation-overridden) reference —
        or, with ``batch_pages`` ≥ 2, everything pending on the
        sweep-next page(s), prefetched with one coalesced read — hands
        each reference to its owning query's operator, and collects
        any complex objects that completed as a result.  When the pool
        is empty but some query is unfinished, stuck deferred
        references are released (the selective-assembly corner the
        core operator handles the same way).
        """
        if self.pending_total() == 0 and not self._release_stuck():
            return False
        if self.batch_pages > 1:
            batch = self._pop_next_batch()
            prefetched = self._prefetch(batch)
        else:
            batch = [self._pop_next()]
            prefetched = []
        pop_span = None
        if self.spans is not None and batch:
            pop_span = self.spans.begin(
                "scheduler-pop",
                kind="scheduler-pop",
                device=self._device_of(batch[0][1].page_id),
                refs=len(batch),
                prefetched=len(prefetched),
            )
        try:
            for query_id, ref in batch:
                self._pending[query_id] -= 1
                query = self._queries[query_id]
                self.resolutions += 1
                for other_id, other in self._queries.items():
                    if other.finished or other_id == query_id:
                        continue
                    if self._pending[other_id] > 0:
                        other.waited += 1
                query.waited = 0
                query.served += 1
                if self.reorg is not None:
                    # One affinity observation per resolved reference,
                    # grouped by the client request it was fetched for —
                    # the co-access context recurring queries share.
                    self.reorg.observe(query_id, ref.oid)
                query.assembly.resolve_external(ref)
                self._collect(query)
        finally:
            for page_id in prefetched:
                self.store.buffer.unfix(page_id)
            if pop_span is not None:
                self.spans.end(pop_span)
        return True

    def _release_stuck(self) -> bool:
        released = False
        for query in self._queries.values():
            if query.finished or self._pending[query.query_id] > 0:
                continue
            if not query.assembly.is_drained():
                query.assembly.release_stuck_deferred()
                released = self._pending[query.query_id] > 0 or released
                self._collect(query)
        return released and self.pending_total() > 0

    def _collect(self, query: ClientQuery) -> None:
        query.output.extend(query.assembly.drain_emitted())
        if (
            not query.finished
            and self._pending[query.query_id] == 0
            and query.assembly.is_drained()
        ):
            query.finished = True
            if query.assembly.is_open:
                query.assembly.close()

    def run(self) -> None:
        """Step until every registered query has finished."""
        while self.step():
            pass
        self._require_all_finished()

    def _require_all_finished(self) -> None:
        unfinished = [
            q.query_id for q in self._queries.values() if not q.finished
        ]
        if unfinished:
            raise AssemblyError(
                f"device server idle with unfinished queries {unfinished} "
                f"(template does not match the data?)"
            )

    # -- overlapped execution ------------------------------------------------

    def run_overlapped(
        self,
        cost_model: Optional[CostModel] = None,
        issue_depth: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> OverlapReport:
        """Drive every query with overlapped per-device I/O.

        The event-driven counterpart of :meth:`run`: each device with
        pending references is kept loaded with up to ``issue_depth``
        outstanding sweep batches (deepest queue first), and the
        earliest completion resolves next — so concurrent clients'
        fetches on different devices genuinely overlap, and the
        service's cost is elapsed time, not the sum of every read.
        Assembled output, like in :meth:`run`, lands in each query's
        buffer.

        The starvation override applies to the synchronous step loop
        only; overlap itself keeps every backlogged device moving, and
        the per-query ``waited`` counters remain maintained for
        diagnostics.
        """
        if issue_depth <= 0:
            raise ServiceStateError("issue_depth must be positive")
        engine = AsyncIOEngine(self.store.disk, cost_model, spans=self.spans)
        resolved_before = self.resolutions
        quarantines_before = self.health.total_quarantines()
        report = OverlapReport()
        while True:
            while True:
                now = engine.clock.now
                best = -1
                best_key: Tuple[int, int] = (0, 0)
                for device, queue in enumerate(self._queues):
                    if len(queue) == 0:
                        continue
                    if engine.in_flight(device) >= issue_depth:
                        continue
                    if not self.health.available(device, now):
                        continue
                    key = (-len(queue), device)
                    if best < 0 or key < best_key:
                        best, best_key = device, key
                if best < 0:
                    break
                self._issue_overlapped(engine, best, retry_policy, report)
            if engine.idle():
                if self.pending_total() > 0:
                    # Every pending device is quarantined: idle the
                    # event clock to the earliest recovery and retry.
                    recovery = self.health.next_recovery(engine.clock.now)
                    if recovery is not None:
                        report.quarantine_wait_ms += (
                            recovery - engine.clock.now
                        )
                        engine.wait_until(recovery)
                        continue
                if not self._release_stuck():
                    break
                continue
            batch, pinned = engine.wait_next().payload
            try:
                self._resolve_overlapped(batch)
            finally:
                for page_id in pinned:
                    self.store.buffer.unfix(page_id)
        self._require_all_finished()
        report.elapsed_ms = engine.elapsed
        report.device_busy_ms = [
            engine.busy_time(d) for d in range(engine.n_devices)
        ]
        report.device_utilization = engine.utilizations()
        report.issued = engine.issues
        report.resolutions = self.resolutions - resolved_before
        report.quarantines = (
            self.health.total_quarantines() - quarantines_before
        )
        return report

    def _issue_overlapped(
        self,
        engine: AsyncIOEngine,
        device: int,
        retry_policy: Optional[RetryPolicy],
        report: OverlapReport,
    ) -> None:
        """Pop one sweep batch on ``device`` and issue it, folding
        fallbacks, retries and requeues into ``report``."""
        queue = self._queues[device]
        if self.batch_pages > 1:
            batch = queue.pop_batch(
                self.batch_pages, self.store.buffer.is_resident
            )
        else:
            batch = [queue.pop_next()]
        for query_id, _ref in batch:
            self._pending[query_id] -= 1
        fetch_pages: List[int] = []
        seen = set()
        for query_id, ref in batch:
            query = self._queries[query_id]
            if query.finished or not query.assembly.needs_fetch(ref):
                continue
            page_id = self.store.page_of(ref.oid)
            if page_id not in seen:
                seen.add(page_id)
                fetch_pages.append(page_id)
        if not fetch_pages:
            engine.issue(device, None, payload=(batch, []))
            return
        try:
            engine.issue(
                device,
                self._fix_with_retry(
                    engine, device, fetch_pages, retry_policy, report
                ),
                payload=(batch, fetch_pages),
            )
        except BufferFullError:
            # Pin bound overflow: resolve synchronously on this
            # device's timeline (reads still priced where they happen).
            report.sync_fallbacks += 1
            engine.issue(
                device,
                lambda: self._resolve_overlapped(batch),
                payload=([], []),
            )
        except DeviceDownError as exc:
            # Quarantine the device and put the whole batch back in
            # the pool; it re-issues once the breaker reopens.
            self.health.record_failure(
                device, now=engine.clock.now, retry_after=exc.retry_after
            )
            report.fault_requeues += len(batch)
            self._requeue(batch)
        except TransientReadError:
            # Issue-time retries ran out: hand the batch to the owning
            # operators' synchronous fault handling (retry policies and
            # degradation modes are per-query there).
            self.health.record_failure(device, now=engine.clock.now)
            report.fault_fallbacks += 1
            engine.issue(
                device,
                lambda: self._resolve_overlapped(batch),
                payload=([], []),
            )

    def _fix_with_retry(
        self,
        engine: AsyncIOEngine,
        device: int,
        fetch_pages: List[int],
        retry_policy: Optional[RetryPolicy],
        report: OverlapReport,
    ):
        """An io_fn pinning ``fetch_pages``, retrying transient faults
        inside the issued request (wasted reads and backoff price on
        the device's timeline)."""
        injector = self.store.disk.fault_injector

        def io_fn():
            attempt = 0
            while True:
                try:
                    result = self.store.buffer.fix_many(fetch_pages)
                except TransientReadError:
                    if retry_policy is None or not retry_policy.should_retry(
                        attempt
                    ):
                        raise
                    backoff = retry_policy.backoff_ms(
                        attempt, engine.cost_model
                    )
                    if injector is not None:
                        injector.charge_backoff(backoff)
                    report.fault_retries += 1
                    attempt += 1
                else:
                    if injector is not None:
                        self.health.record_success(device)
                    return result

        return io_fn

    def _requeue(
        self, batch: List[Tuple[int, UnresolvedReference]]
    ) -> None:
        """Put a popped batch back into the pool (device was down)."""
        for query_id, ref in batch:
            query = self._queries.get(query_id)
            if query is None or query.finished:
                continue
            self._enqueue(query_id, ref)

    def _resolve_overlapped(
        self, batch: List[Tuple[int, UnresolvedReference]]
    ) -> None:
        for query_id, ref in batch:
            query = self._queries[query_id]
            if query.finished:
                # The query completed (or was aborted down to empty)
                # while this batch was in flight; its operator is
                # closed and the reference is necessarily stale.
                continue
            self.resolutions += 1
            for other_id, other in self._queries.items():
                if other.finished or other_id == query_id:
                    continue
                if self._pending[other_id] > 0:
                    other.waited += 1
            query.waited = 0
            query.served += 1
            if self.reorg is not None:
                self.reorg.observe(query_id, ref.oid)
            query.assembly.resolve_external(ref)
            self._collect(query)

    # -- results ------------------------------------------------------------

    def active_queries(self) -> List[ClientQuery]:
        """Registered queries, registration order."""
        return list(self._queries.values())

    def unfinished(self) -> int:
        """Number of registered queries still assembling."""
        return sum(1 for q in self._queries.values() if not q.finished)

    def next_result(self) -> Optional[Tuple[int, AssembledComplexObject]]:
        """Round-robin one completed object across queries with output.

        Returns ``(query_id, complex object)`` or ``None`` when no
        query has buffered output.  Rotation is by query id so no
        client's completions monopolize the emission stream.
        """
        ids = sorted(self._queries)
        if not ids:
            return None
        n = len(ids)
        for offset in range(n):
            query_id = ids[(self._emit_turn + offset) % n]
            query = self._queries[query_id]
            if query.output:
                self._emit_turn = (self._emit_turn + offset + 1) % n
                return query_id, query.output.pop(0)
        return None
