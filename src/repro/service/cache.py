"""LRU cache of assembled complex objects.

The dynamic-clustering literature (Darmont et al.; see PAPERS.md)
motivates keeping *hot* shared structures in memory across requests
instead of re-fetching them per query.  For the assembly service the
natural unit is the finished product: an
:class:`~repro.core.assembled.AssembledComplexObject`, keyed by
``(root OID, template fingerprint)`` — the same root assembled under a
different template (different predicates, different shared borders) is
a different result.

Consistency comes from the object store's write hooks
(:meth:`~repro.storage.store.ObjectStore.add_write_hook`): every write
of an OID invalidates each cached complex object *containing* that
object, not just the entries rooted at it.  A reverse index from member
OID to cache keys makes that O(entries containing the OID).

Cached objects are returned by reference; callers treat assembled
structures as immutable (all of this repository does).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.assembled import AssembledComplexObject
from repro.errors import ServiceStateError
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore

#: Cache key: (root OID, template fingerprint).
CacheKey = Tuple[Oid, str]


@dataclass
class CacheStats:
    """Hit/miss/eviction/invalidation accounting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        lookups = self.hits + self.misses
        if lookups == 0:
            return 0.0
        return self.hits / lookups

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for metric snapshots."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


class _CacheEntry:
    """One cached complex object plus its member-OID set."""

    __slots__ = ("value", "members")

    def __init__(
        self, value: AssembledComplexObject, members: Set[Oid]
    ) -> None:
        self.value = value
        self.members = members


class AssembledObjectCache:
    """Bounded LRU over finished complex objects.

    ``capacity`` counts complex objects, not pages: the service's unit
    of reuse is one assembled result.  ``get`` refreshes recency;
    ``put`` evicts the least recently used entry beyond capacity.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ServiceStateError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, _CacheEntry]" = OrderedDict()
        self._by_member: Dict[Oid, Set[CacheKey]] = {}
        self.stats = CacheStats()
        self._wired_store: Optional[ObjectStore] = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    # -- lookup / insert ------------------------------------------------------

    def get(
        self, root_oid: Oid, fingerprint: str
    ) -> Optional[AssembledComplexObject]:
        """The cached result for this root under this template, if any."""
        entry = self._entries.get((root_oid, fingerprint))
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end((root_oid, fingerprint))
        self.stats.hits += 1
        return entry.value

    def put(
        self, fingerprint: str, assembled: AssembledComplexObject
    ) -> None:
        """Insert (or refresh) one finished complex object."""
        key: CacheKey = (assembled.root_oid, fingerprint)
        existing = self._entries.pop(key, None)
        if existing is not None:
            self._unindex(key, existing)
        members = {obj.oid for obj in assembled.scan()}
        self._entries[key] = _CacheEntry(assembled, members)
        for oid in members:
            self._by_member.setdefault(oid, set()).add(key)
        while len(self._entries) > self.capacity:
            evicted_key, evicted = self._entries.popitem(last=False)
            self._unindex(evicted_key, evicted)
            self.stats.evictions += 1

    def _unindex(self, key: CacheKey, entry: _CacheEntry) -> None:
        for oid in entry.members:
            keys = self._by_member.get(oid)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_member[oid]

    # -- invalidation ---------------------------------------------------------

    def invalidate(self, oid: Oid) -> int:
        """Drop every cached complex object containing ``oid``.

        This is the write hook: a write anywhere inside a cached
        structure makes the whole cached structure stale.  Returns the
        number of entries dropped.
        """
        keys = self._by_member.get(oid)
        if not keys:
            return 0
        dropped = 0
        for key in list(keys):
            entry = self._entries.pop(key, None)
            if entry is None:
                continue
            self._unindex(key, entry)
            dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def clear(self) -> None:
        """Drop everything (stats are kept)."""
        self._entries.clear()
        self._by_member.clear()

    # -- store wiring ---------------------------------------------------------

    def wire(self, store: ObjectStore) -> None:
        """Subscribe to a store's writes (idempotent per store)."""
        if self._wired_store is store:
            return
        self.unwire()
        store.add_write_hook(self.invalidate)
        self._wired_store = store

    def unwire(self) -> None:
        """Stop following the previously wired store's writes."""
        if self._wired_store is not None:
            self._wired_store.remove_write_hook(self.invalidate)
            self._wired_store = None
