"""Per-request and service-wide metrics.

Built on :mod:`repro.core.trace`: every request run by the
:class:`~repro.service.server.AssemblyService` carries an
:class:`~repro.core.trace.AssemblyTracer`, and its
:class:`RequestMetrics` are distilled from the trace (fetches, aborts,
emissions) plus the service clock (queue wait, service time).  The
service clock is the device server's resolution counter — deterministic
on the simulated disk, unlike wall time.

Global counters aggregate what no single request can see: disk seek
totals, buffer faults, cache traffic, and admission outcomes.

Latency, queue-wait and run-time distributions stream through
:class:`~repro.obs.histograms.StreamingHistogram` fields that are fed
on *every* request completion from the deterministic service clock —
independent of whether a span recorder is attached — so
:meth:`ServiceMetrics.snapshot` is bit-identical with observability
off, on, or sampled (the ``tests/obs`` non-interference property).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core import trace
from repro.core.trace import AssemblyTracer
from repro.obs.histograms import StreamingHistogram


@dataclass
class RequestMetrics:
    """One request's life, in service-clock ticks and trace counts."""

    request_id: int
    #: service clock when the request arrived.
    submitted_at: int = 0
    #: service clock when assembly actually started (admission grant).
    started_at: Optional[int] = None
    #: service clock when the last complex object completed.
    completed_at: Optional[int] = None
    #: complex objects served straight from the result cache.
    cache_hits: int = 0
    #: granted window size (after any admission shrink).
    window_size: int = 0
    #: was the window shrunk below what the client asked?
    shrunk: bool = False
    emitted: int = 0
    aborted: int = 0
    fetches: int = 0
    shared_links: int = 0
    #: degraded complex objects emitted (``partial`` fault mode).
    degraded: int = 0
    #: faulted fetches retried on this request's behalf.
    fault_retries: int = 0

    @property
    def queue_wait(self) -> Optional[int]:
        """Ticks spent waiting for admission (None while still queued)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def latency(self) -> Optional[int]:
        """Submit-to-done ticks (None while incomplete)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def run_time(self) -> Optional[int]:
        """Ticks actually assembling: start-to-done (None while open).

        ``latency == queue_wait + run_time`` — the per-phase breakdown
        of where a request's service-clock time went.
        """
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    def absorb_trace(self, tracer: AssemblyTracer) -> None:
        """Fold a finished request's trace into the counters."""
        counts = tracer.counts()
        self.fetches = counts.get(trace.FETCHED, 0)
        self.emitted = counts.get(trace.EMITTED, 0)
        self.aborted = counts.get(trace.ABORTED, 0)
        self.shared_links = counts.get(trace.LINKED_SHARED, 0)

    def as_dict(self) -> Dict[str, object]:
        """Flat view for reports."""
        return {
            "request_id": self.request_id,
            "queue_wait": self.queue_wait,
            "latency": self.latency,
            "run_time": self.run_time,
            "window": self.window_size,
            "shrunk": self.shrunk,
            "cache_hits": self.cache_hits,
            "emitted": self.emitted,
            "aborted": self.aborted,
            "fetches": self.fetches,
            "shared_links": self.shared_links,
            "degraded": self.degraded,
            "fault_retries": self.fault_retries,
        }


@dataclass
class ServiceMetrics:
    """Counters across the whole service lifetime."""

    requests_submitted: int = 0
    requests_completed: int = 0
    requests_rejected: int = 0
    requests_shrunk: int = 0
    requests_queued: int = 0
    #: requests cancelled before completion (hedge losers, client aborts).
    requests_cancelled: int = 0
    #: requests dropped by a fabric load-shedding policy (SLO breach),
    #: as opposed to ``requests_rejected`` (admission wait queue full).
    requests_shed: int = 0
    #: hedge duplicates issued on this service's behalf.
    hedge_fired: int = 0
    #: hedged requests where the duplicate finished first.
    hedge_won: int = 0
    #: total service-clock ticks completed requests spent waiting for
    #: admission (the scalar sum behind ``queue_wait_hist``).
    queue_wait_ticks: int = 0
    objects_emitted: int = 0
    objects_aborted: int = 0
    #: complex objects emitted with faulted subtrees dropped.
    objects_degraded: int = 0
    #: fetches retried after an injected fault, service-wide.
    fault_retries: int = 0
    #: complex objects abandoned because of faults (subset of aborted).
    fault_aborts: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: reorganization rounds the online reorganizer executed.
    reorg_rounds: int = 0
    #: objects migrated onto new pages across those rounds.
    reorg_migrations: int = 0
    #: distinct pages written by migrations (sources + targets).
    reorg_pages_written: int = 0
    #: cached assemblies invalidated because a member object moved.
    reorg_cache_invalidations: int = 0
    #: cost-model milliseconds the migration batches were priced at.
    reorg_io_ms: float = 0.0
    #: event-clock milliseconds of the last overlapped run (None until
    #: the service has run under the event-driven engine).
    elapsed_ms: Optional[float] = None
    #: per-device busy fraction of that run (empty until overlapped).
    device_utilization: List[float] = field(default_factory=list)
    #: streaming latency distribution (service-clock ticks), fed on
    #: every completion — observability-independent by construction.
    latency_hist: StreamingHistogram = field(
        default_factory=StreamingHistogram
    )
    #: streaming queue-wait distribution (ticks before admission).
    queue_wait_hist: StreamingHistogram = field(
        default_factory=StreamingHistogram
    )
    #: streaming run-time distribution (ticks actually assembling).
    run_time_hist: StreamingHistogram = field(
        default_factory=StreamingHistogram
    )
    per_request: Dict[int, RequestMetrics] = field(default_factory=dict)

    def open_request(
        self, request_id: int, submitted_at: int
    ) -> RequestMetrics:
        """Start tracking one request."""
        metrics = RequestMetrics(
            request_id=request_id, submitted_at=submitted_at
        )
        self.per_request[request_id] = metrics
        self.requests_submitted += 1
        return metrics

    def close_request(self, metrics: RequestMetrics) -> None:
        """Fold one completed request into the streaming histograms.

        Called by the service when a request finishes, with clock
        stamps already set.  The histograms see every completion in
        completion order, on the deterministic service clock, so two
        identical executions produce bit-equal histograms whether or
        not any observability is attached.
        """
        if metrics.latency is not None:
            self.latency_hist.record(float(metrics.latency))
        if metrics.queue_wait is not None:
            self.queue_wait_hist.record(float(metrics.queue_wait))
            self.queue_wait_ticks += metrics.queue_wait
        if metrics.run_time is not None:
            self.run_time_hist.record(float(metrics.run_time))

    def record_overlap(self, report) -> None:
        """Fold an :class:`~repro.service.device_server.OverlapReport`
        into the service-wide counters (elapsed time, utilization)."""
        self.elapsed_ms = report.elapsed_ms
        self.device_utilization = list(report.device_utilization)
        self.fault_retries += getattr(report, "fault_retries", 0)

    #: counter fields merge() sums; everything else needs special care.
    _SUMMED_FIELDS = (
        "requests_submitted",
        "requests_completed",
        "requests_rejected",
        "requests_shrunk",
        "requests_queued",
        "requests_cancelled",
        "requests_shed",
        "hedge_fired",
        "hedge_won",
        "queue_wait_ticks",
        "objects_emitted",
        "objects_aborted",
        "objects_degraded",
        "fault_retries",
        "fault_aborts",
        "cache_hits",
        "cache_misses",
        "reorg_rounds",
        "reorg_migrations",
        "reorg_pages_written",
        "reorg_cache_invalidations",
    )

    def merge(self, other: "ServiceMetrics") -> "ServiceMetrics":
        """Fold another service's metrics into this one; returns self.

        This is the fabric's fleet roll-up: counters add, the streaming
        histograms merge bucket-wise (so fleet p90/p99 come from the
        combined distribution, **not** from averaging per-shard
        percentiles), ``elapsed_ms`` takes the max (the fleet is as
        slow as its slowest shard) and device utilizations concatenate.
        Per-request entries are appended under fresh keys — request ids
        are only unique within one service.
        """
        for name in self._SUMMED_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.reorg_io_ms += other.reorg_io_ms
        self.latency_hist.merge(other.latency_hist)
        self.queue_wait_hist.merge(other.queue_wait_hist)
        self.run_time_hist.merge(other.run_time_hist)
        if other.elapsed_ms is not None:
            self.elapsed_ms = (
                other.elapsed_ms
                if self.elapsed_ms is None
                else max(self.elapsed_ms, other.elapsed_ms)
            )
        self.device_utilization.extend(other.device_utilization)
        next_key = max(self.per_request, default=-1) + 1
        for offset, metrics in enumerate(other.per_request.values()):
            self.per_request[next_key + offset] = metrics
        return self

    @classmethod
    def merged(
        cls, parts: "Iterable[ServiceMetrics]"
    ) -> "ServiceMetrics":
        """A fresh fleet aggregate of ``parts`` (the parts are not
        mutated; histograms are merged into new copies)."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    def finished(self) -> List[RequestMetrics]:
        """Metrics of completed requests, by completion time."""
        done = [
            m for m in self.per_request.values() if m.completed_at is not None
        ]
        return sorted(done, key=lambda m: (m.completed_at, m.request_id))

    def latencies(self) -> List[int]:
        """Completed-request latencies in ticks, ascending."""
        return sorted(
            m.latency for m in self.per_request.values()
            if m.latency is not None
        )

    def percentile_latency(self, fraction: float) -> Optional[int]:
        """Latency at ``fraction`` (0–1] of completed requests."""
        ordered = self.latencies()
        if not ordered:
            return None
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def snapshot(self) -> Dict[str, object]:
        """Global counters as a flat dict (per-request detail omitted)."""
        return {
            "requests_submitted": self.requests_submitted,
            "requests_completed": self.requests_completed,
            "requests_rejected": self.requests_rejected,
            "requests_shrunk": self.requests_shrunk,
            "requests_queued": self.requests_queued,
            "requests_cancelled": self.requests_cancelled,
            "requests_shed": self.requests_shed,
            "hedge_fired": self.hedge_fired,
            "hedge_won": self.hedge_won,
            "queue_wait_ticks": self.queue_wait_ticks,
            "objects_emitted": self.objects_emitted,
            "objects_aborted": self.objects_aborted,
            "objects_degraded": self.objects_degraded,
            "fault_retries": self.fault_retries,
            "fault_aborts": self.fault_aborts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "reorg_rounds": self.reorg_rounds,
            "reorg_migrations": self.reorg_migrations,
            "reorg_pages_written": self.reorg_pages_written,
            "reorg_cache_invalidations": self.reorg_cache_invalidations,
            "reorg_io_ms": self.reorg_io_ms,
            "p50_latency": self.percentile_latency(0.50),
            "p95_latency": self.percentile_latency(0.95),
            "p90_latency": self.latency_hist.p90,
            "p99_latency": self.latency_hist.p99,
            "max_latency": self.latency_hist.max,
            "latency_hist": self.latency_hist.snapshot(),
            "queue_wait_hist": self.queue_wait_hist.snapshot(),
            "run_time_hist": self.run_time_hist.snapshot(),
            "elapsed_ms": self.elapsed_ms,
            "device_utilization": list(self.device_utilization),
        }
