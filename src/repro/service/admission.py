"""Admission control: pricing queries by the paper's pin bound.

Section 6.3.3 prices a window of W in-flight complex objects at
``(N-1)*(W-1) + N`` pinned pages (N = template node count; the paper's
7-object template gives ``6*(W-1) + 7``).  The admission controller
treats that bound as each request's worst-case claim on the buffer pool
and keeps the sum of claims within a fixed page budget:

* a request that fits is **admitted** at its asked window size;
* a request that does not fit is **shrunk** — its window is reduced
  (halving, floor ``min_window``) until its bound fits the remaining
  budget;
* when even the minimum window does not fit, the request **waits** in
  a bounded queue with two lanes (priority ahead of FIFO);
* when the wait queue itself is full, the request is **rejected** with
  a typed :class:`~repro.errors.ServiceOverloadError` — load shedding,
  not an infinite backlog.

When the budget is backed by a real bounded
:class:`~repro.storage.buffer.BufferManager`, the controller mirrors
every grant into the buffer's reservation ledger so buffer accounting
and admission accounting cannot drift apart.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.core.template import Template
from repro.core.tuning import pin_bound
from repro.errors import ServiceOverloadError, ServiceStateError
from repro.storage.buffer import BufferManager

#: Wait-queue lanes, in service order.
PRIORITY_LANE = "priority"
FIFO_LANE = "fifo"
LANES = (PRIORITY_LANE, FIFO_LANE)


@dataclass
class AdmissionTicket:
    """The outcome of one admission decision for one request.

    ``window_size`` is the *granted* window (possibly smaller than
    asked); ``pinned_budget`` is the page claim reserved for it, to be
    returned through :meth:`AdmissionController.release` when the
    request finishes.
    """

    request_id: int
    asked_window: int
    window_size: int
    pinned_budget: int
    lane: str = FIFO_LANE
    #: set while the ticket waits in the queue.
    waiting: bool = False

    @property
    def shrunk(self) -> bool:
        """Was the window reduced to fit the budget?"""
        return self.window_size < self.asked_window


class AdmissionController:
    """Keeps concurrent queries' pin claims within a page budget.

    Parameters
    ----------
    budget_pages:
        Total pages grantable at once.  ``None`` means unlimited (every
        request admits immediately at its asked window).
    max_waiting:
        Wait-queue capacity across both lanes; a request arriving with
        the queue full raises :class:`ServiceOverloadError`.
    min_window:
        Smallest window shrinking may produce.  Requests whose bound at
        ``min_window`` exceeds the *total* budget are rejected outright
        — they could never run.
    buffer:
        Optional bounded buffer manager to mirror grants into (via its
        ``reserve``/``unreserve`` ledger).
    """

    def __init__(
        self,
        budget_pages: Optional[int] = None,
        max_waiting: int = 16,
        min_window: int = 1,
        buffer: Optional[BufferManager] = None,
    ) -> None:
        if budget_pages is not None and budget_pages <= 0:
            raise ServiceStateError("budget_pages must be positive")
        if max_waiting < 0:
            raise ServiceStateError("max_waiting cannot be negative")
        if min_window <= 0:
            raise ServiceStateError("min_window must be positive")
        self.budget_pages = budget_pages
        self.max_waiting = max_waiting
        self.min_window = min_window
        self._buffer = buffer
        self._granted = 0
        self._lanes: "dict[str, Deque[tuple[AdmissionTicket, Template]]]" = {
            lane: deque() for lane in LANES
        }
        #: admission outcomes, for metrics: admitted/shrunk/queued/rejected.
        self.admitted = 0
        self.shrunk = 0
        self.queued = 0
        self.rejected = 0
        self.cancelled = 0

    # -- introspection --------------------------------------------------------

    @property
    def granted_pages(self) -> int:
        """Pages currently granted to running requests."""
        return self._granted

    @property
    def free_pages(self) -> Optional[int]:
        """Budget still grantable (``None`` when unlimited)."""
        if self.budget_pages is None:
            return None
        return self.budget_pages - self._granted

    def waiting(self) -> int:
        """Requests parked in the wait queue (both lanes)."""
        return sum(len(lane) for lane in self._lanes.values())

    # -- decisions ------------------------------------------------------------

    def _fits(self, pages: int) -> bool:
        return self.budget_pages is None or (
            self._granted + pages <= self.budget_pages
        )

    def _shrink_to_fit(
        self, asked_window: int, template: Template
    ) -> Optional[tuple[int, int]]:
        """Largest (window, bound) fitting the free budget, else None."""
        window = asked_window
        while window >= self.min_window:
            cost = pin_bound(window, template)
            if self._fits(cost):
                return window, cost
            window = max(
                self.min_window, window // 2
            ) if window > self.min_window else 0
        return None

    def _grant(self, ticket: AdmissionTicket) -> None:
        self._granted += ticket.pinned_budget
        if self._buffer is not None:
            self._buffer.reserve(ticket.pinned_budget)

    def submit(
        self,
        request_id: int,
        window_size: int,
        template: Template,
        priority: bool = False,
    ) -> AdmissionTicket:
        """Decide one incoming request: admit, shrink, queue or reject.

        Returns a ticket; ``ticket.waiting`` tells whether the request
        may run now or must wait for :meth:`release` to free budget.
        """
        if window_size <= 0:
            raise ServiceStateError("window_size must be positive")
        lane = PRIORITY_LANE if priority else FIFO_LANE
        minimum_cost = pin_bound(self.min_window, template)
        if (
            self.budget_pages is not None
            and minimum_cost > self.budget_pages
        ):
            self.rejected += 1
            raise ServiceOverloadError(
                f"request {request_id}: even a window of {self.min_window} "
                f"pins {minimum_cost} pages > budget {self.budget_pages}"
            )
        fitted = self._shrink_to_fit(window_size, template)
        if fitted is not None:
            window, cost = fitted
            ticket = AdmissionTicket(
                request_id=request_id,
                asked_window=window_size,
                window_size=window,
                pinned_budget=cost,
                lane=lane,
            )
            self._grant(ticket)
            self.admitted += 1
            if ticket.shrunk:
                self.shrunk += 1
            return ticket
        if self.waiting() >= self.max_waiting:
            self.rejected += 1
            raise ServiceOverloadError(
                f"request {request_id}: buffer budget exhausted "
                f"({self._granted}/{self.budget_pages} pages granted) and "
                f"wait queue full ({self.max_waiting})"
            )
        ticket = AdmissionTicket(
            request_id=request_id,
            asked_window=window_size,
            window_size=window_size,
            pinned_budget=0,
            lane=lane,
            waiting=True,
        )
        self._lanes[lane].append((ticket, template))
        self.queued += 1
        return ticket

    def cancel_waiting(self, ticket: AdmissionTicket) -> None:
        """Remove a still-waiting ticket from its lane.

        Cancelling a waiting request frees no budget (none was
        granted), so nothing can start as a consequence — unlike
        :meth:`release`.  Raises :class:`ServiceStateError` if the
        ticket is not actually parked in a lane (already admitted
        tickets must go through :meth:`release` instead).
        """
        if not ticket.waiting:
            raise ServiceStateError(
                f"request {ticket.request_id} is not waiting; "
                "release() its granted budget instead"
            )
        queue = self._lanes[ticket.lane]
        for index, (waiting, _template) in enumerate(queue):
            if waiting is ticket:
                del queue[index]
                ticket.waiting = False
                self.cancelled += 1
                return
        raise ServiceStateError(
            f"request {ticket.request_id} not found in the "
            f"{ticket.lane} lane"
        )

    def release(self, ticket: AdmissionTicket) -> List[AdmissionTicket]:
        """Return a finished request's budget; admit waiting requests.

        Waiters are re-examined priority lane first, FIFO within each
        lane; each admitted waiter's ticket flips to ``waiting=False``
        (and may come back shrunk).  Returns the newly admitted
        tickets so the caller can start them.
        """
        if ticket.waiting:
            raise ServiceStateError(
                f"request {ticket.request_id} was never granted budget"
            )
        if ticket.pinned_budget > self._granted:
            raise ServiceStateError(
                f"request {ticket.request_id} releases more than granted"
            )
        self._granted -= ticket.pinned_budget
        if self._buffer is not None:
            self._buffer.unreserve(ticket.pinned_budget)
        ticket.pinned_budget = 0
        return self._drain_waiters()

    def _drain_waiters(self) -> List[AdmissionTicket]:
        started: List[AdmissionTicket] = []
        for lane in LANES:
            queue = self._lanes[lane]
            while queue:
                ticket, template = queue[0]
                fitted = self._shrink_to_fit(ticket.asked_window, template)
                if fitted is None:
                    break  # head-of-line blocks its lane (FIFO order)
                queue.popleft()
                ticket.window_size, ticket.pinned_budget = fitted
                ticket.waiting = False
                self._grant_waiter(ticket)
                started.append(ticket)
        return started

    def _grant_waiter(self, ticket: AdmissionTicket) -> None:
        self._grant(ticket)
        self.admitted += 1
        if ticket.shrunk:
            self.shrunk += 1
